//! Workspace umbrella crate for the MithriLog reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; it re-exports every member crate so examples and integration
//! tests can reach the whole system through one dependency.

#![forbid(unsafe_code)]

pub use mithrilog;
pub use mithrilog_analytics as analytics;
pub use mithrilog_baseline as baseline;
pub use mithrilog_compress as compress;
pub use mithrilog_filter as filter;
pub use mithrilog_ftree as ftree;
pub use mithrilog_index as index;
pub use mithrilog_loggen as loggen;
pub use mithrilog_query as query;
pub use mithrilog_sim as sim;
pub use mithrilog_storage as storage;
pub use mithrilog_tokenizer as tokenizer;
