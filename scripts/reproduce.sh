#!/usr/bin/env bash
# Regenerates every table and figure of the paper, plus the ablations,
# writing outputs to results/. Usage: scripts/reproduce.sh [scale_mb] [seed]
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-8}"
SEED="${2:-42}"
OUT=results
mkdir -p "$OUT"

BINS=(
  table1 table2 table3 table4 table5 table6 table7 table8
  fig13 fig14 fig15 fig16
  ablate_datapath ablate_cuckoo ablate_lzah_newline ablate_index ablate_near_storage
)

echo "building release binaries..."
cargo build --release -p mithrilog-bench --bins

for bin in "${BINS[@]}"; do
  echo "== $bin (scale ${SCALE} MB, seed ${SEED}) =="
  cargo run --release -q -p mithrilog-bench --bin "$bin" -- \
    --scale "$SCALE" --seed "$SEED" > "$OUT/$bin.txt"
done

echo "done; outputs in $OUT/"
