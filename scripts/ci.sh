#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass, in the order CI runs it.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mithrilog recover --self-check (bounded crash-matrix smoke)"
cargo run --release -p mithrilog-cli --quiet -- recover --self-check --points 12

echo "==> parallel determinism (2-thread scan vs sequential reference, faults injected)"
cargo test --test parallel_determinism -q two_thread_scan_matches_sequential_reference

echo "==> parallel_scaling --smoke (bench harness smoke, artifact to target/)"
mkdir -p target/ci
cargo run --release -p mithrilog-bench --quiet --bin parallel_scaling -- \
  --smoke --out target/ci/BENCH_parallel_smoke.json

echo "==> page-cache determinism (cached vs uncached byte-identity under faults)"
cargo test --test scan_cache -q

echo "==> scan_hotpath --smoke (zero-alloc kernel + page-cache bench smoke)"
cargo run --release -p mithrilog-bench --quiet --bin scan_hotpath -- \
  --smoke --out target/ci/BENCH_scan_smoke.json

echo "==> service concurrency (byte-identity under faults, admission, page sharing)"
cargo test --test service_concurrency -q

echo "==> service_load --smoke (concurrent-load bench smoke, artifact to target/)"
cargo run --release -p mithrilog-bench --quiet --bin service_load -- \
  --smoke --out target/ci/BENCH_service_smoke.json

echo "==> mithrilog serve smoke (loopback line protocol: submit, poll, shutdown)"
SERVE_LOG=target/ci/serve_smoke.log
SERVE_OUT=target/ci/serve_stdout.log
cargo run --release -p mithrilog-cli --quiet -- gen bgl2 0.2 "$SERVE_LOG"
cargo run --release -p mithrilog-cli --quiet -- serve "$SERVE_LOG" --port 0 >"$SERVE_OUT" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q '^LISTENING ' "$SERVE_OUT" 2>/dev/null && break
  sleep 0.1
done
SERVE_PORT=$(grep -m1 '^LISTENING ' "$SERVE_OUT" | awk '{print $2}')
[ -n "$SERVE_PORT" ] || { echo "serve never reported LISTENING"; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$SERVE_PORT"
printf 'SUBMIT q=FATAL\r\nSTATS\r\nSHUTDOWN\r\n' >&3
RESPONSE=$(timeout 30 cat <&3)
exec 3<&- 3>&-
echo "$RESPONSE" | grep -q '^OK id=' || { echo "serve smoke: bad SUBMIT response: $RESPONSE"; exit 1; }
echo "$RESPONSE" | grep -q '^submitted=' || { echo "serve smoke: bad STATS response: $RESPONSE"; exit 1; }
wait "$SERVE_PID" || { echo "serve smoke: server exited nonzero"; exit 1; }
trap - EXIT

echo "==> service fault domains (cancellation, deadlines, panic isolation, quarantine)"
cargo test --test service_faults -q

echo "==> chaos soak (bounded smoke: submit/cancel/ingest storm under each fault mode)"
cargo test --test chaos_soak -q

echo "==> service_load --storm (bench-scale fault storm smoke)"
cargo run --release -p mithrilog-bench --quiet --bin service_load -- --storm --smoke

echo "==> segment crash matrix (seal/retention-drop boundaries, every crash point)"
cargo test --test segment_store -q

echo "==> ingest_concurrent --smoke (overlapped vs stop-the-world ingest bench smoke)"
cargo run --release -p mithrilog-bench --quiet --bin ingest_concurrent -- \
  --smoke --out target/ci/BENCH_segment_smoke.json

echo "==> negation bitmaps (pruning byte-identity under faults, sidecar corruption, property)"
cargo test --test negation_bitmaps -q

echo "==> plan_savings --smoke (wave-planner bench smoke: bitmap pruning + batched probes)"
cargo run --release -p mithrilog-bench --quiet --bin plan_savings -- \
  --smoke --out target/ci/BENCH_plan_smoke.json

echo "==> shard determinism (N-shard results byte-identical to 1-shard under every fault mode)"
cargo test --test shard_determinism -q

echo "==> shard_scaling --smoke (multi-device scatter-gather + tenant fairness bench smoke)"
cargo run --release -p mithrilog-bench --quiet --bin shard_scaling -- \
  --smoke --out target/ci/BENCH_shard_smoke.json

echo "==> bench report schema check (every emitted BENCH_*.json parses and carries schema)"
cargo run --release -p mithrilog-bench --quiet --bin check_bench_json -- target/ci

echo "==> ci.sh: all green"
