#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass, in the order CI runs it.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> mithrilog recover --self-check (bounded crash-matrix smoke)"
cargo run --release -p mithrilog-cli --quiet -- recover --self-check --points 12

echo "==> parallel determinism (2-thread scan vs sequential reference, faults injected)"
cargo test --test parallel_determinism -q two_thread_scan_matches_sequential_reference

echo "==> parallel_scaling --smoke (bench harness smoke, artifact to target/)"
mkdir -p target/ci
cargo run --release -p mithrilog-bench --quiet --bin parallel_scaling -- \
  --smoke --out target/ci/BENCH_parallel_smoke.json

echo "==> ci.sh: all green"
