//! The MithriLog in-storage inverted index (paper §6).
//!
//! Design goals straight from the paper: a *small host-memory footprint*
//! during ingest, *saturating storage bandwidth* during query, and enough
//! accuracy to shrink the page set the near-storage filter must scan — not
//! exactness, because "unnecessary data will be filtered out by the
//! filtering engine".
//!
//! Structure (Figure 11):
//!
//! * an **in-memory hash table** whose entries hold a small (16-address)
//!   buffer of data-page ids; tokens are *not* stored, making the structure
//!   probabilistic — multiple tokens may share an entry;
//! * **two hash functions**: each token inserts into whichever of its two
//!   candidate entries currently holds fewer total pages, spreading hot
//!   entries; both candidates are probed at query time;
//! * an **in-storage linked list of height-2 trees** per entry: full
//!   buffers are flushed into 16-entry *leaf nodes* (pooled into leaf
//!   pages), and every 16 leaves are gathered under a *root node* prepended
//!   to the entry's linked list (pooled into index pages). One latency-bound
//!   root visit thus yields 16 × 16 = 256 data-page addresses via parallel
//!   leaf reads — the trick that saturates the device despite linked-list
//!   traversal being latency-bound;
//! * **snapshots** for coarse time-range queries: the in-memory table is
//!   flushed when enough leaf pages have been created, recording a
//!   timestamped data-page watermark.
//!
//! # Example
//!
//! ```
//! use mithrilog_index::{IndexParams, InvertedIndex};
//! use mithrilog_storage::{DevicePerfModel, MemStore, PageId, SimSsd};
//!
//! let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::default());
//! let mut idx = InvertedIndex::new(IndexParams::small());
//! idx.insert_page_tokens(&mut ssd, PageId(7), [b"FATAL".as_slice(), b"ciod:"])?;
//! let pages = idx.lookup(&mut ssd, b"FATAL")?;
//! assert_eq!(pages, vec![PageId(7)]);
//! # Ok::<(), mithrilog_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod index;
mod node;
mod params;
mod plan;
mod wire;

pub use index::{InvertedIndex, Snapshot};
pub use node::{NodeAddr, NodePool};
pub use params::IndexParams;
pub use plan::{BatchProbeReport, ProbedPlan, QueryPlan};
