use mithrilog_storage::{PageId, PageStore, SimSsd, StorageError};

use crate::node::{NodeAddr, NodePool};
use crate::params::IndexParams;
use crate::wire::{get_u64, get_usize, put_u64};

/// One in-memory hash table entry (paper Figure 11): a small buffer of
/// data-page addresses plus the head of the in-storage linked list of trees.
#[derive(Debug, Clone, Default)]
struct MemEntry {
    /// Pending data-page addresses (≤ `buffer_entries`).
    buffer: Vec<u64>,
    /// Leaf nodes awaiting a root (≤ `node_entries`).
    pending_leaves: Vec<NodeAddr>,
    /// Head of the linked list of root nodes (newest first).
    head: Option<NodeAddr>,
    /// Total pages ever pushed — the two-choice insertion counter.
    total_pages: u64,
    /// Most recent page pushed, for consecutive-duplicate suppression.
    last_page: Option<u64>,
}

/// A timestamped flush event enabling coarse time-range queries (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Snapshot {
    /// Timestamp supplied by the caller (e.g. seconds since epoch).
    pub timestamp: u64,
    /// All data pages with id below this watermark were ingested before the
    /// snapshot.
    pub watermark: u64,
}

/// The in-storage inverted index. See the [crate documentation](crate) for
/// the structure.
#[derive(Debug)]
pub struct InvertedIndex {
    params: IndexParams,
    entries: Vec<MemEntry>,
    leaf_pool: NodePool,
    root_pool: NodePool,
    snapshots: Vec<Snapshot>,
    leaf_pages_at_last_snapshot: u64,
    tokens_indexed: u64,
}

const PAGE_BYTES_DEFAULT: usize = 4096;

/// True when an entry is indistinguishable from its default state and can
/// be omitted from a checkpoint.
fn entry_is_empty(e: &MemEntry) -> bool {
    e.buffer.is_empty()
        && e.pending_leaves.is_empty()
        && e.head.is_none()
        && e.total_pages == 0
        && e.last_page.is_none()
}

fn hash_token(token: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in token {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 31;
    h.wrapping_mul(0x94D0_49BB_1331_11EB)
}

impl InvertedIndex {
    /// Creates an empty index with `params`, assuming 4 KB device pages.
    pub fn new(params: IndexParams) -> Self {
        Self::with_page_bytes(params, PAGE_BYTES_DEFAULT)
    }

    /// Creates an empty index for a device with `page_bytes` pages.
    pub fn with_page_bytes(params: IndexParams, page_bytes: usize) -> Self {
        let leaf_bytes = params.node_entries * 8;
        let root_bytes = 16 + params.node_entries * 8;
        InvertedIndex {
            entries: vec![MemEntry::default(); params.entries()],
            leaf_pool: NodePool::new(leaf_bytes, page_bytes),
            root_pool: NodePool::new(root_bytes, page_bytes),
            snapshots: Vec::new(),
            leaf_pages_at_last_snapshot: 0,
            tokens_indexed: 0,
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// Tokens indexed so far (insertion events, after per-page dedup).
    pub fn tokens_indexed(&self) -> u64 {
        self.tokens_indexed
    }

    /// Snapshots taken so far, oldest first.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Approximate in-memory footprint in bytes — the metric the paper
    /// keeps near 256 MB at scale.
    pub fn memory_footprint(&self) -> usize {
        let per_entry = self.params.buffer_entries * 8
            + self.params.node_entries * 8
            + 8  // head
            + 8  // total_pages
            + 8; // last_page
        self.entries.len() * per_entry
    }

    fn candidate_entries(&self, token: &[u8]) -> (usize, usize) {
        let mask = (self.entries.len() - 1) as u64;
        let a = (hash_token(token, 0xCBF2_9CE4_8422_2325) & mask) as usize;
        let b = (hash_token(token, 0x9AE1_6A3B_2F90_404F) & mask) as usize;
        (a, b)
    }

    /// Indexes the distinct tokens of one data page.
    ///
    /// Each token goes to whichever of its two candidate entries holds
    /// fewer total pages (§6.2). Consecutive duplicates of the same page in
    /// one entry are suppressed.
    ///
    /// # Errors
    ///
    /// Propagates device errors from leaf/root flushes.
    pub fn insert_page_tokens<'a, S, I>(
        &mut self,
        ssd: &mut SimSsd<S>,
        page: PageId,
        tokens: I,
    ) -> Result<(), StorageError>
    where
        S: PageStore,
        I: IntoIterator<Item = &'a [u8]>,
    {
        for token in tokens {
            let (a, b) = self.candidate_entries(token);
            let target = if self.entries[b].total_pages < self.entries[a].total_pages {
                b
            } else {
                a
            };
            self.insert_into_entry(ssd, target, page.0)?;
            self.tokens_indexed += 1;
        }
        Ok(())
    }

    fn insert_into_entry<S: PageStore>(
        &mut self,
        ssd: &mut SimSsd<S>,
        idx: usize,
        page: u64,
    ) -> Result<(), StorageError> {
        let entry = &mut self.entries[idx];
        if entry.last_page == Some(page) {
            return Ok(());
        }
        entry.buffer.push(page);
        entry.last_page = Some(page);
        entry.total_pages += 1;
        if entry.buffer.len() >= self.params.buffer_entries {
            self.flush_buffer(ssd, idx)?;
        }
        Ok(())
    }

    /// Writes the entry's buffer out as a leaf node; gathers a root when
    /// enough leaves accumulated.
    fn flush_buffer<S: PageStore>(
        &mut self,
        ssd: &mut SimSsd<S>,
        idx: usize,
    ) -> Result<(), StorageError> {
        let n = self.params.node_entries;
        let buffer = std::mem::take(&mut self.entries[idx].buffer);
        if buffer.is_empty() {
            return Ok(());
        }
        let mut node = vec![0u8; n * 8];
        for (i, slot) in node.chunks_mut(8).enumerate() {
            let v = buffer.get(i).copied().unwrap_or(u64::MAX);
            slot.copy_from_slice(&v.to_le_bytes());
        }
        let leaf = self.leaf_pool.alloc(ssd, &node)?;
        self.entries[idx].pending_leaves.push(leaf);
        if self.entries[idx].pending_leaves.len() >= n {
            self.gather_root(ssd, idx)?;
        }
        Ok(())
    }

    /// Prepends a root node over the entry's pending leaves.
    fn gather_root<S: PageStore>(
        &mut self,
        ssd: &mut SimSsd<S>,
        idx: usize,
    ) -> Result<(), StorageError> {
        let n = self.params.node_entries;
        let leaves = std::mem::take(&mut self.entries[idx].pending_leaves);
        if leaves.is_empty() {
            return Ok(());
        }
        let mut node = vec![0u8; 16 + n * 8];
        node[..8].copy_from_slice(&NodeAddr::raw_or_none(self.entries[idx].head).to_le_bytes());
        node[8..16].copy_from_slice(&(leaves.len() as u64).to_le_bytes());
        for (i, slot) in node[16..].chunks_mut(8).enumerate() {
            let v = leaves.get(i).map_or(u64::MAX, |a| a.to_raw());
            slot.copy_from_slice(&v.to_le_bytes());
        }
        let root = self.root_pool.alloc(ssd, &node)?;
        self.entries[idx].head = Some(root);
        Ok(())
    }

    /// Estimated number of data pages listed for `token`, from the
    /// in-memory two-choice counters alone (no storage access). An upper
    /// bound on the token's own list (entries are shared), available for
    /// cost-based planning before paying any chain latency.
    pub fn estimated_pages(&self, token: &[u8]) -> u64 {
        let (a, b) = self.candidate_entries(token);
        self.entries[a].total_pages.min(self.entries[b].total_pages)
    }

    /// Index pages a full lookup of `token` would read: one dependent root
    /// visit per tree plus one leaf-node read per buffer flush, across both
    /// candidate entries (the probe reads both, §6.2).
    pub fn estimated_lookup_reads(&self, token: &[u8]) -> (u64, u64) {
        let (a, b) = self.candidate_entries(token);
        let mut roots = 0u64;
        let mut leaves = 0u64;
        for idx in if a == b { vec![a] } else { vec![a, b] } {
            let per_leaf = self.params.buffer_entries.max(1) as u64;
            let per_root = per_leaf * self.params.node_entries.max(1) as u64;
            let total = self.entries[idx].total_pages;
            leaves += total / per_leaf;
            roots += total / per_root;
        }
        (roots, leaves)
    }

    /// Returns every data page that *may* contain `token`, in chronological
    /// (ascending page id) order, deduplicated.
    ///
    /// The list is a superset: entries are shared between tokens, so the
    /// downstream filter engine discards the false positives (§6.2).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn lookup<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        token: &[u8],
    ) -> Result<Vec<PageId>, StorageError> {
        let (a, b) = self.candidate_entries(token);
        let mut pages = self.collect_entry(ssd, a)?;
        if b != a {
            pages.extend(self.collect_entry(ssd, b)?);
        }
        pages.sort_unstable();
        pages.dedup();
        Ok(pages.into_iter().map(PageId).collect())
    }

    fn collect_entry<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        idx: usize,
    ) -> Result<Vec<u64>, StorageError> {
        let entry = &self.entries[idx];
        let mut pages: Vec<u64> = entry.buffer.clone();
        for leaf in &entry.pending_leaves {
            pages.extend(self.read_leaf(ssd, *leaf)?);
        }
        // Walk the root chain: each hop is a dependent (latency-exposed)
        // read, each root's leaves are an independent parallel batch.
        let mut cur = entry.head;
        while let Some(root) = cur {
            let node = self.root_pool.read_dependent(ssd, root)?;
            let next = u64::from_le_bytes(node[..8].try_into().expect("8 bytes"));
            let count = u64::from_le_bytes(node[8..16].try_into().expect("8 bytes")) as usize;
            for i in 0..count.min(self.params.node_entries) {
                let raw =
                    u64::from_le_bytes(node[16 + i * 8..24 + i * 8].try_into().expect("8 bytes"));
                if let Some(leaf) = NodeAddr::from_raw(raw) {
                    pages.extend(self.read_leaf(ssd, leaf)?);
                }
            }
            cur = NodeAddr::from_raw(next);
        }
        Ok(pages)
    }

    /// The two candidate entry indices for `token` (batch planner hook).
    pub(crate) fn candidate_entries_for(&self, token: &[u8]) -> (usize, usize) {
        self.candidate_entries(token)
    }

    /// Walks one entry physically (batch planner hook): buffer, pending
    /// leaves, then the root chain — identical to the solo lookup path.
    pub(crate) fn collect_entry_walk<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        idx: usize,
    ) -> Result<Vec<u64>, StorageError> {
        self.collect_entry(ssd, idx)
    }

    fn read_leaf<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        leaf: NodeAddr,
    ) -> Result<Vec<u64>, StorageError> {
        let node = self.leaf_pool.read(ssd, leaf)?;
        Ok(node
            .chunks(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .filter(|&v| v != u64::MAX)
            .collect())
    }

    /// Whether enough leaf pages accumulated since the last snapshot that
    /// the caller should take one (§6.3).
    pub fn should_snapshot(&self) -> bool {
        self.leaf_pool.pages_allocated() - self.leaf_pages_at_last_snapshot
            >= self.params.snapshot_leaf_pages
    }

    /// Flushes the whole in-memory table to storage and records a
    /// timestamped watermark for time-range queries.
    ///
    /// `watermark` is the current data-page frontier (typically
    /// `ssd.page_count()` before the snapshot's own index writes).
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn snapshot<S: PageStore>(
        &mut self,
        ssd: &mut SimSsd<S>,
        timestamp: u64,
        watermark: PageId,
    ) -> Result<(), StorageError> {
        for idx in 0..self.entries.len() {
            if !self.entries[idx].buffer.is_empty() {
                self.flush_buffer(ssd, idx)?;
            }
            if !self.entries[idx].pending_leaves.is_empty() {
                self.gather_root(ssd, idx)?;
            }
        }
        self.snapshots.push(Snapshot {
            timestamp,
            watermark: watermark.0,
        });
        self.leaf_pages_at_last_snapshot = self.leaf_pool.pages_allocated();
        Ok(())
    }

    /// Seals both node pools so no future allocation rewrites a page below
    /// the current device frontier. Called at the start of a durability
    /// commit, before serializing the checkpoint.
    pub fn seal_storage(&mut self) {
        self.leaf_pool.seal();
        self.root_pool.seal();
    }

    /// Serializes the complete in-memory index state (hash-table entries,
    /// node pools, snapshots, counters) into a checkpoint blob.
    ///
    /// Call [`InvertedIndex::seal_storage`] first: the blob captures pool
    /// cursors, and a restored unsealed pool would rewrite committed pages
    /// in place. Restore with [`InvertedIndex::restore_checkpoint`].
    pub fn checkpoint_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::from(self.params.hash_bits));
        put_u64(&mut buf, self.params.buffer_entries as u64);
        put_u64(&mut buf, self.params.node_entries as u64);
        put_u64(&mut buf, self.params.snapshot_leaf_pages);
        put_u64(&mut buf, self.params.probe_budget as u64);
        put_u64(&mut buf, self.tokens_indexed);
        put_u64(&mut buf, self.leaf_pages_at_last_snapshot);
        put_u64(&mut buf, self.snapshots.len() as u64);
        for s in &self.snapshots {
            put_u64(&mut buf, s.timestamp);
            put_u64(&mut buf, s.watermark);
        }
        self.leaf_pool.encode_into(&mut buf);
        self.root_pool.encode_into(&mut buf);
        // Only non-default entries are stored; at realistic scales the vast
        // majority of the hash table is untouched.
        let live: Vec<(usize, &MemEntry)> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !entry_is_empty(e))
            .collect();
        put_u64(&mut buf, live.len() as u64);
        for (idx, e) in live {
            put_u64(&mut buf, idx as u64);
            put_u64(&mut buf, NodeAddr::raw_or_none(e.head));
            put_u64(&mut buf, e.total_pages);
            put_u64(&mut buf, e.last_page.unwrap_or(u64::MAX));
            put_u64(&mut buf, e.buffer.len() as u64);
            for &p in &e.buffer {
                put_u64(&mut buf, p);
            }
            put_u64(&mut buf, e.pending_leaves.len() as u64);
            for &l in &e.pending_leaves {
                put_u64(&mut buf, l.to_raw());
            }
        }
        buf
    }

    /// Rebuilds an index from a checkpoint blob written by
    /// [`InvertedIndex::checkpoint_bytes`].
    ///
    /// Returns `None` when the blob is malformed or was written under
    /// different parameters or page size — the caller falls back to a full
    /// reindex from the data pages.
    pub fn restore_checkpoint(
        params: IndexParams,
        page_bytes: usize,
        bytes: &[u8],
    ) -> Option<Self> {
        let cur = &mut &bytes[..];
        let echo = [
            get_u64(cur)?,
            get_u64(cur)?,
            get_u64(cur)?,
            get_u64(cur)?,
            get_u64(cur)?,
        ];
        let want = [
            u64::from(params.hash_bits),
            params.buffer_entries as u64,
            params.node_entries as u64,
            params.snapshot_leaf_pages,
            params.probe_budget as u64,
        ];
        if echo != want {
            return None;
        }
        let tokens_indexed = get_u64(cur)?;
        let leaf_pages_at_last_snapshot = get_u64(cur)?;
        let snapshot_count = get_usize(cur)?;
        let mut snapshots = Vec::new();
        for _ in 0..snapshot_count {
            snapshots.push(Snapshot {
                timestamp: get_u64(cur)?,
                watermark: get_u64(cur)?,
            });
        }
        let leaf_pool = NodePool::decode_from(cur)?;
        let root_pool = NodePool::decode_from(cur)?;
        if leaf_pool.node_bytes() != params.node_entries * 8
            || root_pool.node_bytes() != 16 + params.node_entries * 8
            || leaf_pool.page_bytes() != page_bytes
            || root_pool.page_bytes() != page_bytes
        {
            return None;
        }
        let mut entries = vec![MemEntry::default(); params.entries()];
        let live = get_usize(cur)?;
        let mut prev_idx = None;
        for _ in 0..live {
            let idx = get_usize(cur)?;
            if idx >= entries.len() || prev_idx.is_some_and(|p| idx <= p) {
                return None;
            }
            prev_idx = Some(idx);
            let entry = &mut entries[idx];
            entry.head = NodeAddr::from_raw(get_u64(cur)?);
            entry.total_pages = get_u64(cur)?;
            entry.last_page = match get_u64(cur)? {
                u64::MAX => None,
                p => Some(p),
            };
            let buffer_len = get_usize(cur)?;
            if buffer_len > params.buffer_entries {
                return None;
            }
            for _ in 0..buffer_len {
                entry.buffer.push(get_u64(cur)?);
            }
            let pending_len = get_usize(cur)?;
            if pending_len > params.node_entries {
                return None;
            }
            for _ in 0..pending_len {
                entry
                    .pending_leaves
                    .push(NodeAddr::from_raw(get_u64(cur)?)?);
            }
        }
        if !cur.is_empty() {
            return None;
        }
        Some(InvertedIndex {
            params,
            entries,
            leaf_pool,
            root_pool,
            snapshots,
            leaf_pages_at_last_snapshot,
            tokens_indexed,
        })
    }

    /// Returns the page-id window `[lo, hi)` that may contain data from the
    /// time interval `[t1, t2]`, based on snapshot watermarks. `None` bounds
    /// mean "unbounded on that side".
    pub fn time_slice(&self, t1: u64, t2: u64) -> (Option<PageId>, Option<PageId>) {
        let lo = self
            .snapshots
            .iter()
            .rev()
            .find(|s| s.timestamp <= t1)
            .map(|s| PageId(s.watermark));
        let hi = self
            .snapshots
            .iter()
            .find(|s| s.timestamp >= t2)
            .map(|s| PageId(s.watermark));
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd() -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(4096), DevicePerfModel::default())
    }

    fn small_index() -> InvertedIndex {
        InvertedIndex::new(IndexParams::small())
    }

    #[test]
    fn single_insert_lookup() {
        let mut ssd = ssd();
        let mut idx = small_index();
        idx.insert_page_tokens(&mut ssd, PageId(42), [b"FATAL".as_slice()])
            .unwrap();
        assert_eq!(idx.lookup(&mut ssd, b"FATAL").unwrap(), vec![PageId(42)]);
        assert_eq!(idx.tokens_indexed(), 1);
    }

    #[test]
    fn absent_token_may_return_empty() {
        let mut ssd = ssd();
        let mut idx = small_index();
        idx.insert_page_tokens(&mut ssd, PageId(1), [b"present".as_slice()])
            .unwrap();
        // A token whose entries were never touched returns nothing.
        // (Collisions could make this non-empty; with one insertion and 256
        // entries the probability is ~1/128, and the hash is deterministic,
        // so this specific pair is stable.)
        assert!(
            idx.lookup(&mut ssd, b"definitely-absent-token")
                .unwrap()
                .len()
                <= 1
        );
    }

    #[test]
    fn lookup_is_a_superset_under_collisions() {
        // Many tokens, few entries: collisions guaranteed. Every page that
        // contained the token must be returned (no false negatives).
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in 0..200u64 {
            let t1 = format!("tok-{}", p % 50);
            let t2 = format!("other-{}", p % 31);
            idx.insert_page_tokens(&mut ssd, PageId(p), [t1.as_bytes(), t2.as_bytes()])
                .unwrap();
        }
        for t in 0..50u64 {
            let token = format!("tok-{t}");
            let got = idx.lookup(&mut ssd, token.as_bytes()).unwrap();
            for p in 0..200u64 {
                if p % 50 == t {
                    assert!(got.contains(&PageId(p)), "page {p} lost for token {token}");
                }
            }
        }
    }

    #[test]
    fn results_are_sorted_and_deduped() {
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in (0..100u64).rev() {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"x".as_slice()])
                .unwrap();
        }
        let got = idx.lookup(&mut ssd, b"x").unwrap();
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(got, sorted);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn consecutive_duplicate_pages_are_suppressed() {
        let mut ssd = ssd();
        let mut idx = small_index();
        // Same page indexed twice in a row for the same token.
        idx.insert_page_tokens(&mut ssd, PageId(5), [b"dup".as_slice()])
            .unwrap();
        idx.insert_page_tokens(&mut ssd, PageId(5), [b"dup".as_slice()])
            .unwrap();
        assert_eq!(idx.lookup(&mut ssd, b"dup").unwrap(), vec![PageId(5)]);
    }

    #[test]
    fn buffer_overflow_spills_to_leaves_and_roots() {
        let mut ssd = ssd();
        let mut idx = small_index(); // buffer 4, node 4 → root after 16 pages
        for p in 0..100u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"hot".as_slice()])
                .unwrap();
        }
        let got = idx.lookup(&mut ssd, b"hot").unwrap();
        assert_eq!(got.len(), 100, "all pages must survive spilling");
        assert_eq!(got[0], PageId(0));
        assert_eq!(got[99], PageId(99));
        // Ledger must show dependent root-chain visits.
        assert!(ssd.ledger().dependent_visits > 0);
    }

    #[test]
    fn two_choice_insertion_balances_hot_entries() {
        let mut ssd = ssd();
        let mut idx = small_index();
        // One very hot token: its two candidate entries should share load
        // roughly evenly thanks to the lesser-loaded choice rule.
        for p in 0..400u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"hot".as_slice()])
                .unwrap();
        }
        let (a, b) = idx.candidate_entries(b"hot");
        assert_ne!(a, b, "test token must have distinct candidates");
        let ta = idx.entries[a].total_pages;
        let tb = idx.entries[b].total_pages;
        assert!(ta > 0 && tb > 0, "both entries used: {ta} vs {tb}");
        let ratio = ta.max(tb) as f64 / ta.min(tb) as f64;
        assert!(ratio < 1.5, "imbalance {ta} vs {tb}");
    }

    #[test]
    fn snapshot_flushes_and_preserves_lookups() {
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in 0..10u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        idx.snapshot(&mut ssd, 1000, PageId(10)).unwrap();
        // Buffers now empty but lookups unchanged.
        let got = idx.lookup(&mut ssd, b"t").unwrap();
        assert_eq!(got.len(), 10);
        // More inserts after the snapshot still work.
        for p in 10..20u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        assert_eq!(idx.lookup(&mut ssd, b"t").unwrap().len(), 20);
        assert_eq!(idx.snapshots().len(), 1);
    }

    #[test]
    fn time_slice_brackets_with_watermarks() {
        let mut ssd = ssd();
        let mut idx = small_index();
        idx.snapshot(&mut ssd, 100, PageId(10)).unwrap();
        idx.snapshot(&mut ssd, 200, PageId(25)).unwrap();
        idx.snapshot(&mut ssd, 300, PageId(60)).unwrap();
        let (lo, hi) = idx.time_slice(150, 250);
        assert_eq!(lo, Some(PageId(10)));
        assert_eq!(hi, Some(PageId(60)));
        let (lo, hi) = idx.time_slice(50, 99);
        assert_eq!(lo, None);
        assert_eq!(hi, Some(PageId(10)));
        let (lo, hi) = idx.time_slice(301, 400);
        assert_eq!(lo, Some(PageId(60)));
        assert_eq!(hi, None);
    }

    #[test]
    fn memory_footprint_scales_with_entries() {
        let small = InvertedIndex::new(IndexParams::small()).memory_footprint();
        let default = InvertedIndex::new(IndexParams::default()).memory_footprint();
        assert!(default > small * 100);
        // Paper-scale footprint lands in the hundreds of MB as published.
        let paper = IndexParams::paper_scale();
        let approx = paper.entries() * (paper.buffer_entries * 8 + paper.node_entries * 8 + 24);
        assert!(approx > 200_000_000 && approx < 400_000_000, "{approx}");
    }

    #[test]
    fn checkpoint_round_trips_and_preserves_lookups() {
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in 0..120u64 {
            let tok = format!("tok-{}", p % 13);
            idx.insert_page_tokens(&mut ssd, PageId(p), [tok.as_bytes(), b"hot".as_slice()])
                .unwrap();
        }
        idx.snapshot(&mut ssd, 500, PageId(60)).unwrap();
        for p in 120..150u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"hot".as_slice()])
                .unwrap();
        }
        idx.seal_storage();
        let blob = idx.checkpoint_bytes();
        let restored =
            InvertedIndex::restore_checkpoint(*idx.params(), 4096, &blob).expect("valid blob");
        assert_eq!(restored.tokens_indexed(), idx.tokens_indexed());
        assert_eq!(restored.snapshots(), idx.snapshots());
        for t in 0..13u64 {
            let token = format!("tok-{t}");
            assert_eq!(
                restored.lookup(&mut ssd, token.as_bytes()).unwrap(),
                idx.lookup(&mut ssd, token.as_bytes()).unwrap(),
                "lookup diverged for {token}"
            );
        }
        assert_eq!(
            restored.lookup(&mut ssd, b"hot").unwrap(),
            idx.lookup(&mut ssd, b"hot").unwrap()
        );
    }

    #[test]
    fn restored_index_keeps_ingesting_without_touching_old_pages() {
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in 0..40u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        idx.seal_storage();
        let blob = idx.checkpoint_bytes();
        let frontier = ssd.page_count();
        let before: Vec<Vec<u8>> = (0..frontier)
            .map(|p| ssd.read(PageId(p)).unwrap().to_vec())
            .collect();
        let mut restored =
            InvertedIndex::restore_checkpoint(*idx.params(), 4096, &blob).expect("valid blob");
        for p in 40..120u64 {
            restored
                .insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        assert_eq!(restored.lookup(&mut ssd, b"t").unwrap().len(), 120);
        for (p, old) in before.iter().enumerate() {
            assert_eq!(
                &ssd.read(PageId(p as u64)).unwrap(),
                old,
                "sealed page {p} was rewritten after restore"
            );
        }
    }

    #[test]
    fn restore_rejects_mismatched_params_or_garbage() {
        let mut ssd = ssd();
        let mut idx = small_index();
        for p in 0..20u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        idx.seal_storage();
        let blob = idx.checkpoint_bytes();
        assert!(InvertedIndex::restore_checkpoint(*idx.params(), 4096, &blob).is_some());
        // Different parameters must force the reindex fallback.
        let other = IndexParams {
            probe_budget: idx.params().probe_budget + 1,
            ..*idx.params()
        };
        assert!(InvertedIndex::restore_checkpoint(other, 4096, &blob).is_none());
        // Different page size: pool cursors would be meaningless.
        assert!(InvertedIndex::restore_checkpoint(*idx.params(), 8192, &blob).is_none());
        // Truncation and trailing garbage are both rejected.
        assert!(
            InvertedIndex::restore_checkpoint(*idx.params(), 4096, &blob[..blob.len() - 3])
                .is_none()
        );
        let mut long = blob.clone();
        long.push(0);
        assert!(InvertedIndex::restore_checkpoint(*idx.params(), 4096, &long).is_none());
    }

    #[test]
    fn should_snapshot_triggers_on_leaf_page_growth() {
        let mut ssd = ssd();
        let mut idx = InvertedIndex::new(IndexParams {
            snapshot_leaf_pages: 1,
            ..IndexParams::small()
        });
        assert!(!idx.should_snapshot());
        // Enough inserts on one token to force a leaf page allocation.
        for p in 0..8u64 {
            idx.insert_page_tokens(&mut ssd, PageId(p), [b"t".as_slice()])
                .unwrap();
        }
        assert!(idx.should_snapshot());
        idx.snapshot(&mut ssd, 1, PageId(8)).unwrap();
        assert!(!idx.should_snapshot());
    }
}
