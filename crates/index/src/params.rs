/// Parameters of the inverted index.
///
/// Paper prototype values: 16-address per-entry buffers, 16-ary tree nodes
/// (so one root visit yields 256 data-page addresses) and an in-memory
/// footprint of roughly 256 MB. The number of hash entries is the scaling
/// knob: [`IndexParams::default`] targets laptop-scale corpora,
/// [`IndexParams::small`] keeps tests fast, and
/// [`IndexParams::paper_scale`] reproduces the paper's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexParams {
    /// log2 of in-memory hash table entries.
    pub hash_bits: u8,
    /// Data-page addresses buffered in memory per entry before a leaf node
    /// is written (prototype: 16).
    pub buffer_entries: usize,
    /// Fan-out of tree nodes: addresses per leaf and leaves per root
    /// (prototype: 16).
    pub node_entries: usize,
    /// Automatic snapshot threshold: flush the in-memory table after this
    /// many leaf pages have been created since the last snapshot.
    pub snapshot_leaf_pages: u64,
    /// Query planning: probe at most this many positive terms per
    /// intersection set, most selective first (by the in-memory counters).
    /// Intersecting a subset of the term lists still yields a superset of
    /// the true pages, so skipping hot terms is always safe and avoids
    /// paying chain latency on useless postings.
    pub probe_budget: usize,
}

impl IndexParams {
    /// Tiny configuration for unit tests: collisions and flushes happen
    /// after a handful of insertions.
    pub fn small() -> Self {
        IndexParams {
            hash_bits: 8,
            buffer_entries: 4,
            node_entries: 4,
            snapshot_leaf_pages: 64,
            probe_budget: 2,
        }
    }

    /// The paper's configuration: enough entries for a ~256 MB in-memory
    /// footprint with 16-address buffers.
    pub fn paper_scale() -> Self {
        IndexParams {
            hash_bits: 20,
            buffer_entries: 16,
            node_entries: 16,
            snapshot_leaf_pages: 16_384,
            probe_budget: 2,
        }
    }

    /// Number of in-memory hash entries.
    pub fn entries(&self) -> usize {
        1 << self.hash_bits
    }

    /// Data-page addresses delivered per root-node visit
    /// (`node_entries²`; 256 in the prototype).
    pub fn addresses_per_root_visit(&self) -> usize {
        self.node_entries * self.node_entries
    }
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            hash_bits: 16,
            buffer_entries: 16,
            node_entries: 16,
            snapshot_leaf_pages: 4096,
            probe_budget: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prototype_fanout() {
        let p = IndexParams::default();
        assert_eq!(p.buffer_entries, 16);
        assert_eq!(p.node_entries, 16);
        assert_eq!(p.addresses_per_root_visit(), 256);
    }

    #[test]
    fn entries_is_power_of_two() {
        assert_eq!(IndexParams::small().entries(), 256);
        assert_eq!(IndexParams::default().entries(), 65_536);
    }

    #[test]
    fn paper_scale_saturates_a_4gbps_device() {
        // §6.1: at 100 µs latency, 10k root visits/s × 256 pages × 4 KB
        // exceeds 4 GB/s only when each visit yields >100 pages.
        let p = IndexParams::paper_scale();
        let pages_per_sec = 10_000.0 * p.addresses_per_root_visit() as f64;
        let bytes_per_sec = pages_per_sec * 4096.0;
        assert!(bytes_per_sec > 4.0e9, "got {bytes_per_sec:.2e}");
    }
}
