//! Fixed-size node pools: many small tree nodes packed into full storage
//! pages ("leaf nodes are stored in a pool of leaf pages", paper §6.1).

use mithrilog_storage::{PageId, PageStore, SimSsd, StorageError};

use crate::wire::{get_bytes, get_u64, get_usize, put_bytes, put_u64};

/// Address of one node inside a pool: `(page << 16) | slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeAddr(u64);

/// Sentinel encoding "no node".
const NONE_SENTINEL: u64 = u64::MAX;

impl NodeAddr {
    /// Builds an address from page and slot.
    pub fn new(page: PageId, slot: usize) -> Self {
        debug_assert!(slot < (1 << 16));
        NodeAddr((page.0 << 16) | slot as u64)
    }

    /// The page this node lives in.
    pub fn page(self) -> PageId {
        PageId(self.0 >> 16)
    }

    /// The slot within the page.
    pub fn slot(self) -> usize {
        (self.0 & 0xFFFF) as usize
    }

    /// Raw encoding for serialization.
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Decodes a serialized address; `u64::MAX` means none.
    pub fn from_raw(raw: u64) -> Option<Self> {
        (raw != NONE_SENTINEL).then_some(NodeAddr(raw))
    }

    /// Raw encoding of an `Option<NodeAddr>`.
    pub fn raw_or_none(addr: Option<NodeAddr>) -> u64 {
        addr.map_or(NONE_SENTINEL, NodeAddr::to_raw)
    }
}

/// A pool allocating fixed-size nodes packed into storage pages.
///
/// The current partially-filled page is shadowed in memory and rewritten in
/// place as slots fill, so reads always go through the device and see the
/// latest contents; this mirrors a controller's page write buffer.
#[derive(Debug, Clone)]
pub struct NodePool {
    node_bytes: usize,
    slots_per_page: usize,
    current_page: Option<PageId>,
    used_slots: usize,
    shadow: Vec<u8>,
    nodes_allocated: u64,
    pages_allocated: u64,
}

impl NodePool {
    /// Creates a pool for nodes of `node_bytes` packed into pages of
    /// `page_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if a node does not fit in a page or `node_bytes` is zero.
    pub fn new(node_bytes: usize, page_bytes: usize) -> Self {
        assert!(node_bytes > 0, "node size must be positive");
        let slots_per_page = page_bytes / node_bytes;
        assert!(slots_per_page >= 1, "node larger than a page");
        NodePool {
            node_bytes,
            slots_per_page,
            current_page: None,
            used_slots: 0,
            shadow: vec![0u8; page_bytes],
            nodes_allocated: 0,
            pages_allocated: 0,
        }
    }

    /// Node size in bytes.
    pub fn node_bytes(&self) -> usize {
        self.node_bytes
    }

    /// Nodes per page.
    pub fn slots_per_page(&self) -> usize {
        self.slots_per_page
    }

    /// Total nodes allocated.
    pub fn nodes_allocated(&self) -> u64 {
        self.nodes_allocated
    }

    /// Total pages this pool has claimed on the device.
    pub fn pages_allocated(&self) -> u64 {
        self.pages_allocated
    }

    /// Allocates a node containing `data`, returning its address.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` length differs from the pool's node size.
    pub fn alloc<S: PageStore>(
        &mut self,
        ssd: &mut SimSsd<S>,
        data: &[u8],
    ) -> Result<NodeAddr, StorageError> {
        assert_eq!(data.len(), self.node_bytes, "node size mismatch");
        let page = match self.current_page {
            Some(p) if self.used_slots < self.slots_per_page => p,
            _ => {
                self.shadow.fill(0);
                self.used_slots = 0;
                let p = ssd.append(&self.shadow)?;
                self.current_page = Some(p);
                self.pages_allocated += 1;
                p
            }
        };
        let slot = self.used_slots;
        let off = slot * self.node_bytes;
        self.shadow[off..off + self.node_bytes].copy_from_slice(data);
        ssd.write(page, &self.shadow)?;
        self.used_slots += 1;
        self.nodes_allocated += 1;
        Ok(NodeAddr::new(page, slot))
    }

    /// Reads a node as part of a bandwidth-bound batch.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        addr: NodeAddr,
    ) -> Result<Vec<u8>, StorageError> {
        let page = ssd.read(addr.page())?;
        Ok(self.slice(&page, addr.slot()))
    }

    /// Reads a node as a dependent (latency-exposed) access — used for the
    /// linked-list root chain.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn read_dependent<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        addr: NodeAddr,
    ) -> Result<Vec<u8>, StorageError> {
        let page = ssd.read_dependent(addr.page())?;
        Ok(self.slice(&page, addr.slot()))
    }

    fn slice(&self, page: &[u8], slot: usize) -> Vec<u8> {
        let off = slot * self.node_bytes;
        page[off..off + self.node_bytes].to_vec()
    }

    /// Seals the pool: the partially-filled current page is finalized and
    /// the next allocation claims a fresh page.
    ///
    /// Called before a durability commit so the pool never rewrites a page
    /// below the committed frontier — in-place rewrites of committed pages
    /// would be torn by a crash.
    pub fn seal(&mut self) {
        self.current_page = None;
        self.used_slots = 0;
    }

    /// Page size this pool was built for.
    pub(crate) fn page_bytes(&self) -> usize {
        self.shadow.len()
    }

    /// Serializes the pool state for an index checkpoint.
    pub(crate) fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.node_bytes as u64);
        put_u64(buf, self.current_page.map_or(u64::MAX, |p| p.0));
        put_u64(buf, self.used_slots as u64);
        put_u64(buf, self.nodes_allocated);
        put_u64(buf, self.pages_allocated);
        put_bytes(buf, &self.shadow);
    }

    /// Deserializes pool state written by [`NodePool::encode_into`].
    /// Returns `None` on any structural inconsistency.
    pub(crate) fn decode_from(cursor: &mut &[u8]) -> Option<Self> {
        let node_bytes = get_usize(cursor)?;
        let current_raw = get_u64(cursor)?;
        let used_slots = get_usize(cursor)?;
        let nodes_allocated = get_u64(cursor)?;
        let pages_allocated = get_u64(cursor)?;
        let shadow = get_bytes(cursor)?;
        if node_bytes == 0 || shadow.len() < node_bytes {
            return None;
        }
        let slots_per_page = shadow.len() / node_bytes;
        if used_slots > slots_per_page {
            return None;
        }
        Some(NodePool {
            node_bytes,
            slots_per_page,
            current_page: (current_raw != u64::MAX).then_some(PageId(current_raw)),
            used_slots,
            shadow,
            nodes_allocated,
            pages_allocated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd() -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(4096), DevicePerfModel::default())
    }

    #[test]
    fn addr_round_trips() {
        let a = NodeAddr::new(PageId(123), 45);
        assert_eq!(a.page(), PageId(123));
        assert_eq!(a.slot(), 45);
        assert_eq!(NodeAddr::from_raw(a.to_raw()), Some(a));
        assert_eq!(NodeAddr::from_raw(u64::MAX), None);
        assert_eq!(NodeAddr::raw_or_none(None), u64::MAX);
    }

    #[test]
    fn nodes_pack_into_pages() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(128, 4096);
        assert_eq!(pool.slots_per_page(), 32);
        let mut addrs = Vec::new();
        for i in 0..40u64 {
            let node = [i as u8; 128];
            addrs.push(pool.alloc(&mut ssd, &node).unwrap());
        }
        // 40 nodes at 32/page → 2 pages.
        assert_eq!(pool.pages_allocated(), 2);
        assert_eq!(pool.nodes_allocated(), 40);
        for (i, a) in addrs.iter().enumerate() {
            let node = pool.read(&mut ssd, *a).unwrap();
            assert!(node.iter().all(|&b| b == i as u8));
        }
    }

    #[test]
    fn partial_page_reads_see_latest_writes() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(64, 4096);
        let a = pool.alloc(&mut ssd, &[7u8; 64]).unwrap();
        // Page is partially full; the read must still return node contents.
        assert_eq!(pool.read(&mut ssd, a).unwrap(), vec![7u8; 64]);
        let b = pool.alloc(&mut ssd, &[9u8; 64]).unwrap();
        assert_eq!(a.page(), b.page(), "second node shares the page");
        assert_eq!(pool.read(&mut ssd, a).unwrap(), vec![7u8; 64]);
        assert_eq!(pool.read(&mut ssd, b).unwrap(), vec![9u8; 64]);
    }

    #[test]
    fn dependent_reads_hit_the_ledger() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(64, 4096);
        let a = pool.alloc(&mut ssd, &[1u8; 64]).unwrap();
        pool.read_dependent(&mut ssd, a).unwrap();
        assert_eq!(ssd.ledger().dependent_visits, 1);
    }

    #[test]
    #[should_panic(expected = "node size mismatch")]
    fn wrong_node_size_panics() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(64, 4096);
        pool.alloc(&mut ssd, &[0u8; 32]).unwrap();
    }

    #[test]
    #[should_panic(expected = "node larger than a page")]
    fn oversized_node_panics() {
        NodePool::new(8192, 4096);
    }

    #[test]
    fn sealed_pool_never_rewrites_its_old_page() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(64, 4096);
        let a = pool.alloc(&mut ssd, &[1u8; 64]).unwrap();
        pool.seal();
        let b = pool.alloc(&mut ssd, &[2u8; 64]).unwrap();
        assert_ne!(a.page(), b.page(), "post-seal alloc claims a fresh page");
        assert_eq!(pool.read(&mut ssd, a).unwrap(), vec![1u8; 64]);
        assert_eq!(pool.read(&mut ssd, b).unwrap(), vec![2u8; 64]);
    }

    #[test]
    fn pool_state_round_trips() {
        let mut ssd = ssd();
        let mut pool = NodePool::new(64, 4096);
        let mut addrs = Vec::new();
        for i in 0..5u8 {
            addrs.push(pool.alloc(&mut ssd, &[i; 64]).unwrap());
        }
        let mut buf = Vec::new();
        pool.encode_into(&mut buf);
        let mut cur = buf.as_slice();
        let mut restored = NodePool::decode_from(&mut cur).unwrap();
        assert!(cur.is_empty());
        assert_eq!(restored.nodes_allocated(), 5);
        assert_eq!(restored.pages_allocated(), 1);
        assert_eq!(restored.slots_per_page(), pool.slots_per_page());
        // The restored pool continues allocating exactly where the original
        // would have.
        let next = restored.alloc(&mut ssd, &[9u8; 64]).unwrap();
        assert_eq!(next.page(), addrs[0].page());
        assert_eq!(next.slot(), 5);
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(restored.read(&mut ssd, *a).unwrap(), vec![i as u8; 64]);
        }
    }

    #[test]
    fn pool_decode_rejects_inconsistent_state() {
        let mut pool = NodePool::new(64, 4096);
        pool.seal();
        let mut buf = Vec::new();
        pool.encode_into(&mut buf);
        // Truncated input.
        assert!(NodePool::decode_from(&mut &buf[..buf.len() - 1]).is_none());
        // used_slots beyond the page's capacity.
        let mut bad = buf.clone();
        bad[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(NodePool::decode_from(&mut bad.as_slice()).is_none());
        // Zero node size.
        let mut bad = buf;
        bad[0..8].copy_from_slice(&0u64.to_le_bytes());
        assert!(NodePool::decode_from(&mut bad.as_slice()).is_none());
    }
}
