//! Query planning over the inverted index: which data pages must the
//! accelerator scan for a given union-of-intersections query?

use std::collections::{HashMap, HashSet};

use mithrilog_query::Query;
use mithrilog_storage::{CostLedger, PageId, PageStore, SimSsd, StorageError};

use crate::index::InvertedIndex;

/// The page set an index probe produced for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPlan {
    /// Scan exactly these pages (sorted, deduplicated). A superset of the
    /// truly-needed pages; the filter engine removes false positives.
    Pages(Vec<PageId>),
    /// The index cannot prune (some intersection set has only negative
    /// terms — "NOT A" queries must inspect every line, §7.5): scan the
    /// whole dataset.
    FullScan,
}

impl QueryPlan {
    /// Number of pages the plan will touch, given the total page count for
    /// full scans.
    pub fn page_cost(&self, total_pages: u64) -> u64 {
        match self {
            QueryPlan::Pages(p) => p.len() as u64,
            QueryPlan::FullScan => total_pages,
        }
    }

    /// Whether this plan degenerates to a full scan.
    pub fn is_full_scan(&self) -> bool {
        matches!(self, QueryPlan::FullScan)
    }
}

impl InvertedIndex {
    /// Selects the terms of one set worth probing: the `probe_budget` most
    /// selective positive tokens by the in-memory counters. Intersecting a
    /// subset of term lists yields a superset of the true pages, so this is
    /// always safe.
    pub fn probe_selection<'q>(&self, set: &'q mithrilog_query::IntersectionSet) -> Vec<&'q str> {
        let mut positives: Vec<&str> = set.positive_terms().map(|t| t.token()).collect();
        positives.sort_by_key(|t| self.estimated_pages(t.as_bytes()));
        positives.truncate(self.params().probe_budget.max(1));
        positives
    }

    /// Plans a query: per intersection set, intersects the page lists of
    /// its most selective positive terms (in read order, before any
    /// reversal — §6.3), then unions across sets. Negative terms cannot
    /// prune; a set consisting only of negative terms forces
    /// [`QueryPlan::FullScan`].
    ///
    /// # Errors
    ///
    /// Propagates device errors from index reads.
    pub fn plan<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        query: &Query,
    ) -> Result<QueryPlan, StorageError> {
        let mut union: Vec<PageId> = Vec::new();
        for set in query.sets() {
            let probes = self.probe_selection(set);
            if probes.is_empty() {
                return Ok(QueryPlan::FullScan);
            }
            // Intersect sorted lists, smallest first to keep the working
            // set minimal.
            let mut lists: Vec<Vec<PageId>> = Vec::with_capacity(probes.len());
            for tok in probes {
                lists.push(self.lookup(ssd, tok.as_bytes())?);
            }
            lists.sort_by_key(Vec::len);
            let mut acc = lists[0].clone();
            for other in &lists[1..] {
                acc = intersect_sorted(&acc, other);
                if acc.is_empty() {
                    break;
                }
            }
            union.extend(acc);
        }
        union.sort_unstable();
        union.dedup();
        Ok(QueryPlan::Pages(union))
    }
}

/// One query's result from [`InvertedIndex::probe_batch`]: the plan (or the
/// device error an as-if-solo probe would have hit) plus the index-read
/// charges a solo probe of this query would have paid on a fresh replica.
#[derive(Debug, Clone)]
pub struct ProbedPlan {
    /// The plan, exactly what [`InvertedIndex::plan`] would have produced
    /// (same per-token page lists, same intersect/union order), or the
    /// first device error the solo walk would have propagated.
    pub plan: Result<QueryPlan, StorageError>,
    /// As-if-solo index-probe charges for this query: every entry walk the
    /// solo path would perform is replayed here in solo order, with retries
    /// charged only on the query's first walk of an entry (a solo re-walk
    /// of the same entry finds the transient episode already drained).
    pub ledger: CostLedger,
}

/// Aggregate accounting of one [`InvertedIndex::probe_batch`] pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchProbeReport {
    /// Queries planned in this batch.
    pub queries: u64,
    /// Token lookups demanded across all queries (duplicates included).
    pub tokens_probed: u64,
    /// Distinct hash-table entries physically walked once for the batch.
    pub entries_walked: u64,
    /// Index node reads (roots + leaves) the queries would have paid
    /// probing solo: the sum of the per-query as-if-solo probe ledgers.
    pub node_visits_demanded: u64,
    /// Index node reads the deduplicated batch walk actually issued.
    pub node_visits_physical: u64,
}

impl BatchProbeReport {
    /// Node reads the batch avoided versus per-query solo probes.
    pub fn node_visits_saved(&self) -> u64 {
        self.node_visits_demanded
            .saturating_sub(self.node_visits_physical)
    }

    /// Folds another report into this one (wave-over-wave accumulation).
    pub fn merge(&mut self, other: &BatchProbeReport) {
        self.queries += other.queries;
        self.tokens_probed += other.tokens_probed;
        self.entries_walked += other.entries_walked;
        self.node_visits_demanded += other.node_visits_demanded;
        self.node_visits_physical += other.node_visits_physical;
    }
}

impl InvertedIndex {
    /// Plans a whole wave of queries through one deduplicated probe pass.
    ///
    /// All distinct hash-table entries demanded by any query are walked
    /// once (buffer, pending leaves, then the root chain level-wise — the
    /// batched B+-tree search discipline); each query then replays its solo
    /// walk order against the memoized results. Plans are byte-identical to
    /// per-query [`InvertedIndex::plan`] calls, and each query's ledger is
    /// exactly what a solo probe on a fresh replica would have paid, while
    /// the device pays each entry walk only once.
    pub fn probe_batch<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        queries: &[&Query],
    ) -> (Vec<ProbedPlan>, BatchProbeReport) {
        // Physical pass state: entry index -> (measured walk charges,
        // walk result). Populated lazily the first time any query demands
        // an entry; every later demand is served from memory.
        let mut walked: HashMap<usize, (CostLedger, Result<Vec<u64>, StorageError>)> =
            HashMap::new();
        let mut report = BatchProbeReport {
            queries: queries.len() as u64,
            ..BatchProbeReport::default()
        };
        let mut out = Vec::with_capacity(queries.len());
        for query in queries {
            let mut ledger = CostLedger::default();
            let mut touched: HashSet<usize> = HashSet::new();
            let plan = self.replay_solo_probe(
                ssd,
                query,
                &mut walked,
                &mut touched,
                &mut ledger,
                &mut report.tokens_probed,
            );
            report.node_visits_demanded += ledger.pages_read;
            out.push(ProbedPlan { plan, ledger });
        }
        report.entries_walked = walked.len() as u64;
        report.node_visits_physical = walked.values().map(|(l, _)| l.pages_read).sum();
        (out, report)
    }

    /// Replays one query's solo probe (set by set, token by token, entry
    /// `a` then `b`) against the memoized entry walks, charging `ledger`
    /// exactly what the solo walk would have paid and stopping at the first
    /// error the solo walk would have propagated.
    #[allow(clippy::too_many_arguments)]
    fn replay_solo_probe<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        query: &Query,
        walked: &mut HashMap<usize, (CostLedger, Result<Vec<u64>, StorageError>)>,
        touched: &mut HashSet<usize>,
        ledger: &mut CostLedger,
        tokens_probed: &mut u64,
    ) -> Result<QueryPlan, StorageError> {
        let mut union: Vec<PageId> = Vec::new();
        for set in query.sets() {
            let probes = self.probe_selection(set);
            if probes.is_empty() {
                return Ok(QueryPlan::FullScan);
            }
            let mut lists: Vec<Vec<PageId>> = Vec::with_capacity(probes.len());
            for tok in probes {
                *tokens_probed += 1;
                let (a, b) = self.candidate_entries_for(tok.as_bytes());
                let mut pages = self.replay_entry(ssd, a, walked, touched, ledger)?;
                if b != a {
                    pages.extend(self.replay_entry(ssd, b, walked, touched, ledger)?);
                }
                pages.sort_unstable();
                pages.dedup();
                lists.push(pages.into_iter().map(PageId).collect());
            }
            lists.sort_by_key(Vec::len);
            let mut acc = lists[0].clone();
            for other in &lists[1..] {
                acc = intersect_sorted(&acc, other);
                if acc.is_empty() {
                    break;
                }
            }
            union.extend(acc);
        }
        union.sort_unstable();
        union.dedup();
        Ok(QueryPlan::Pages(union))
    }

    /// Serves one entry demand: walks the entry physically on first demand
    /// in the batch (measuring the charges), then replays the memoized
    /// charges onto `ledger` — with retries zeroed when this query already
    /// walked the entry, because a solo re-walk finds the transient-read
    /// episode drained by its own first walk.
    fn replay_entry<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        idx: usize,
        walked: &mut HashMap<usize, (CostLedger, Result<Vec<u64>, StorageError>)>,
        touched: &mut HashSet<usize>,
        ledger: &mut CostLedger,
    ) -> Result<Vec<u64>, StorageError> {
        if let std::collections::hash_map::Entry::Vacant(slot) = walked.entry(idx) {
            let before = *ssd.ledger();
            let res = self.collect_entry_walk(ssd, idx);
            let delta = ssd.ledger().since(&before);
            slot.insert((delta, res));
        }
        let (delta, res) = &walked[&idx];
        let mut charge = *delta;
        if !touched.insert(idx) {
            charge.retries = 0;
        }
        ledger.merge(&charge);
        res.clone()
    }
}

fn intersect_sorted(a: &[PageId], b: &[PageId]) -> Vec<PageId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IndexParams;
    use mithrilog_query::parse;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd() -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(4096), DevicePerfModel::default())
    }

    /// Builds an index over synthetic pages: page p contains token
    /// "mod<k>" for every k in 2..=5 dividing p.
    fn modular_index(ssd: &mut SimSsd<MemStore>, pages: u64) -> InvertedIndex {
        let mut idx = InvertedIndex::new(IndexParams::default());
        for p in 0..pages {
            let tokens: Vec<String> = (2..=5u64)
                .filter(|k| p % k == 0)
                .map(|k| format!("mod{k}"))
                .collect();
            idx.insert_page_tokens(ssd, PageId(p), tokens.iter().map(|t| t.as_bytes()))
                .unwrap();
        }
        idx
    }

    #[test]
    fn intersect_sorted_basics() {
        let a: Vec<PageId> = [1u64, 3, 5, 7, 9].into_iter().map(PageId).collect();
        let b: Vec<PageId> = [3u64, 4, 5, 6, 7].into_iter().map(PageId).collect();
        let got = intersect_sorted(&a, &b);
        assert_eq!(got, vec![PageId(3), PageId(5), PageId(7)]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }

    #[test]
    fn single_term_plan_covers_all_matching_pages() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                for p in (0..60).filter(|p| p % 3 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
            }
            QueryPlan::FullScan => panic!("positive query must not full-scan"),
        }
    }

    #[test]
    fn conjunction_intersects_page_lists() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3 AND mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                // Must include all multiples of 15 and, as a superset, may
                // include collisions — but never a page lacking both tokens
                // unless a hash collision put it there. Check coverage only.
                for p in (0..60).filter(|p| p % 15 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
                // Pruning effect: far fewer than all pages.
                assert!(pages.len() < 60);
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    #[test]
    fn union_of_sets_unions_pages() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 40);
        let q = parse("mod4 OR mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                for p in (0..40).filter(|p| p % 4 == 0 || p % 5 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    #[test]
    fn negative_only_set_forces_full_scan() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 10);
        let q = parse("NOT mod2").unwrap();
        assert!(idx.plan(&mut ssd, &q).unwrap().is_full_scan());
        // Mixed: one offloadable set plus one negative-only set → full scan.
        let q = parse("mod3 OR NOT mod2").unwrap();
        assert!(idx.plan(&mut ssd, &q).unwrap().is_full_scan());
    }

    #[test]
    fn negative_terms_alongside_positives_do_not_block_pruning() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3 AND NOT mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                // Pruned by the positive term only; negatives are resolved
                // by the filter engine later.
                for p in (0..60).filter(|p| p % 3 == 0) {
                    assert!(pages.contains(&PageId(p)));
                }
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    /// A larger modular index that actually spills to leaves and roots, so
    /// probes pay measurable device reads.
    fn spilled_index(ssd: &mut SimSsd<MemStore>, pages: u64) -> InvertedIndex {
        let mut idx = InvertedIndex::new(IndexParams::small());
        for p in 0..pages {
            let tokens: Vec<String> = (2..=5u64)
                .filter(|k| p % k == 0)
                .map(|k| format!("mod{k}"))
                .collect();
            idx.insert_page_tokens(ssd, PageId(p), tokens.iter().map(|t| t.as_bytes()))
                .unwrap();
        }
        idx
    }

    #[test]
    fn probe_batch_plans_match_solo_plans() {
        let queries = [
            "mod3",
            "mod3 AND mod5",
            "mod4 OR mod5",
            "NOT mod2",
            "mod3 OR NOT mod2",
            "mod2 AND NOT mod3",
        ];
        let parsed: Vec<_> = queries.iter().map(|q| parse(q).unwrap()).collect();
        let refs: Vec<&_> = parsed.iter().collect();

        let mut batch_ssd = ssd();
        let idx = spilled_index(&mut batch_ssd, 300);
        let (plans, report) = idx.probe_batch(&mut batch_ssd, &refs);
        assert_eq!(plans.len(), queries.len());
        assert_eq!(report.queries, queries.len() as u64);

        for (i, q) in parsed.iter().enumerate() {
            let mut solo_ssd = ssd();
            let solo_idx = spilled_index(&mut solo_ssd, 300);
            let solo = solo_idx.plan(&mut solo_ssd, q).unwrap();
            assert_eq!(
                plans[i].plan.as_ref().unwrap(),
                &solo,
                "plan mismatch for {:?}",
                queries[i]
            );
        }
    }

    #[test]
    fn probe_batch_ledgers_match_fresh_replica_solo_probes() {
        let queries = ["mod3 AND mod5", "mod3", "mod4 OR mod3", "mod5"];
        let parsed: Vec<_> = queries.iter().map(|q| parse(q).unwrap()).collect();
        let refs: Vec<&_> = parsed.iter().collect();

        let mut batch_ssd = ssd();
        let idx = spilled_index(&mut batch_ssd, 300);
        let (plans, _) = idx.probe_batch(&mut batch_ssd, &refs);

        for (i, q) in parsed.iter().enumerate() {
            let mut solo_ssd = ssd();
            let solo_idx = spilled_index(&mut solo_ssd, 300);
            let before = *solo_ssd.ledger();
            solo_idx.plan(&mut solo_ssd, q).unwrap();
            let solo_ledger = solo_ssd.ledger().since(&before);
            assert_eq!(
                plans[i].ledger, solo_ledger,
                "as-if-solo probe ledger mismatch for {:?}",
                queries[i]
            );
        }
    }

    #[test]
    fn probe_batch_walks_each_entry_once() {
        // Overlapping queries demand the same tokens; the batch must visit
        // strictly fewer index nodes than the sum of solo probes while
        // every query is still charged its full solo walk.
        let queries = ["mod3", "mod3 AND mod5", "mod3 OR mod5", "mod5"];
        let parsed: Vec<_> = queries.iter().map(|q| parse(q).unwrap()).collect();
        let refs: Vec<&_> = parsed.iter().collect();

        let mut batch_ssd = ssd();
        let idx = spilled_index(&mut batch_ssd, 400);
        let before = *batch_ssd.ledger();
        let (plans, report) = idx.probe_batch(&mut batch_ssd, &refs);
        let physical = batch_ssd.ledger().since(&before);

        assert_eq!(report.node_visits_physical, physical.pages_read);
        let demanded: u64 = plans.iter().map(|p| p.ledger.pages_read).sum();
        assert_eq!(report.node_visits_demanded, demanded);
        assert!(
            report.node_visits_physical < report.node_visits_demanded,
            "batch must dedup shared entry walks: physical {} vs demanded {}",
            report.node_visits_physical,
            report.node_visits_demanded
        );
        assert_eq!(report.node_visits_saved(), demanded - physical.pages_read);
        assert!(report.entries_walked > 0);
        assert!(report.tokens_probed >= queries.len() as u64);
    }

    #[test]
    fn probe_batch_report_merges() {
        let mut a = BatchProbeReport {
            queries: 1,
            tokens_probed: 2,
            entries_walked: 3,
            node_visits_demanded: 10,
            node_visits_physical: 6,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.queries, 2);
        assert_eq!(a.node_visits_saved(), 8);
    }

    #[test]
    fn page_cost_accounts_for_full_scans() {
        assert_eq!(QueryPlan::FullScan.page_cost(1234), 1234);
        assert_eq!(
            QueryPlan::Pages(vec![PageId(1), PageId(2)]).page_cost(1234),
            2
        );
    }

    #[test]
    fn empty_intersection_yields_empty_plan() {
        let mut ssd = ssd();
        let mut idx = InvertedIndex::new(IndexParams::default());
        idx.insert_page_tokens(&mut ssd, PageId(0), [b"only-here".as_slice()])
            .unwrap();
        idx.insert_page_tokens(&mut ssd, PageId(1), [b"only-there".as_slice()])
            .unwrap();
        let q = parse("only-here AND only-there").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => assert!(pages.len() <= 1, "near-empty intersection"),
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }
}
