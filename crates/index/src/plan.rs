//! Query planning over the inverted index: which data pages must the
//! accelerator scan for a given union-of-intersections query?

use mithrilog_query::Query;
use mithrilog_storage::{PageId, PageStore, SimSsd, StorageError};

use crate::index::InvertedIndex;

/// The page set an index probe produced for a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryPlan {
    /// Scan exactly these pages (sorted, deduplicated). A superset of the
    /// truly-needed pages; the filter engine removes false positives.
    Pages(Vec<PageId>),
    /// The index cannot prune (some intersection set has only negative
    /// terms — "NOT A" queries must inspect every line, §7.5): scan the
    /// whole dataset.
    FullScan,
}

impl QueryPlan {
    /// Number of pages the plan will touch, given the total page count for
    /// full scans.
    pub fn page_cost(&self, total_pages: u64) -> u64 {
        match self {
            QueryPlan::Pages(p) => p.len() as u64,
            QueryPlan::FullScan => total_pages,
        }
    }

    /// Whether this plan degenerates to a full scan.
    pub fn is_full_scan(&self) -> bool {
        matches!(self, QueryPlan::FullScan)
    }
}

impl InvertedIndex {
    /// Selects the terms of one set worth probing: the `probe_budget` most
    /// selective positive tokens by the in-memory counters. Intersecting a
    /// subset of term lists yields a superset of the true pages, so this is
    /// always safe.
    pub fn probe_selection<'q>(&self, set: &'q mithrilog_query::IntersectionSet) -> Vec<&'q str> {
        let mut positives: Vec<&str> = set.positive_terms().map(|t| t.token()).collect();
        positives.sort_by_key(|t| self.estimated_pages(t.as_bytes()));
        positives.truncate(self.params().probe_budget.max(1));
        positives
    }

    /// Plans a query: per intersection set, intersects the page lists of
    /// its most selective positive terms (in read order, before any
    /// reversal — §6.3), then unions across sets. Negative terms cannot
    /// prune; a set consisting only of negative terms forces
    /// [`QueryPlan::FullScan`].
    ///
    /// # Errors
    ///
    /// Propagates device errors from index reads.
    pub fn plan<S: PageStore>(
        &self,
        ssd: &mut SimSsd<S>,
        query: &Query,
    ) -> Result<QueryPlan, StorageError> {
        let mut union: Vec<PageId> = Vec::new();
        for set in query.sets() {
            let probes = self.probe_selection(set);
            if probes.is_empty() {
                return Ok(QueryPlan::FullScan);
            }
            // Intersect sorted lists, smallest first to keep the working
            // set minimal.
            let mut lists: Vec<Vec<PageId>> = Vec::with_capacity(probes.len());
            for tok in probes {
                lists.push(self.lookup(ssd, tok.as_bytes())?);
            }
            lists.sort_by_key(Vec::len);
            let mut acc = lists[0].clone();
            for other in &lists[1..] {
                acc = intersect_sorted(&acc, other);
                if acc.is_empty() {
                    break;
                }
            }
            union.extend(acc);
        }
        union.sort_unstable();
        union.dedup();
        Ok(QueryPlan::Pages(union))
    }
}

fn intersect_sorted(a: &[PageId], b: &[PageId]) -> Vec<PageId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IndexParams;
    use mithrilog_query::parse;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd() -> SimSsd<MemStore> {
        SimSsd::new(MemStore::new(4096), DevicePerfModel::default())
    }

    /// Builds an index over synthetic pages: page p contains token
    /// "mod<k>" for every k in 2..=5 dividing p.
    fn modular_index(ssd: &mut SimSsd<MemStore>, pages: u64) -> InvertedIndex {
        let mut idx = InvertedIndex::new(IndexParams::default());
        for p in 0..pages {
            let tokens: Vec<String> = (2..=5u64)
                .filter(|k| p % k == 0)
                .map(|k| format!("mod{k}"))
                .collect();
            idx.insert_page_tokens(ssd, PageId(p), tokens.iter().map(|t| t.as_bytes()))
                .unwrap();
        }
        idx
    }

    #[test]
    fn intersect_sorted_basics() {
        let a: Vec<PageId> = [1u64, 3, 5, 7, 9].into_iter().map(PageId).collect();
        let b: Vec<PageId> = [3u64, 4, 5, 6, 7].into_iter().map(PageId).collect();
        let got = intersect_sorted(&a, &b);
        assert_eq!(got, vec![PageId(3), PageId(5), PageId(7)]);
        assert!(intersect_sorted(&a, &[]).is_empty());
    }

    #[test]
    fn single_term_plan_covers_all_matching_pages() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                for p in (0..60).filter(|p| p % 3 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
            }
            QueryPlan::FullScan => panic!("positive query must not full-scan"),
        }
    }

    #[test]
    fn conjunction_intersects_page_lists() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3 AND mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                // Must include all multiples of 15 and, as a superset, may
                // include collisions — but never a page lacking both tokens
                // unless a hash collision put it there. Check coverage only.
                for p in (0..60).filter(|p| p % 15 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
                // Pruning effect: far fewer than all pages.
                assert!(pages.len() < 60);
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    #[test]
    fn union_of_sets_unions_pages() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 40);
        let q = parse("mod4 OR mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                for p in (0..40).filter(|p| p % 4 == 0 || p % 5 == 0) {
                    assert!(pages.contains(&PageId(p)), "page {p} missing");
                }
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    #[test]
    fn negative_only_set_forces_full_scan() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 10);
        let q = parse("NOT mod2").unwrap();
        assert!(idx.plan(&mut ssd, &q).unwrap().is_full_scan());
        // Mixed: one offloadable set plus one negative-only set → full scan.
        let q = parse("mod3 OR NOT mod2").unwrap();
        assert!(idx.plan(&mut ssd, &q).unwrap().is_full_scan());
    }

    #[test]
    fn negative_terms_alongside_positives_do_not_block_pruning() {
        let mut ssd = ssd();
        let idx = modular_index(&mut ssd, 60);
        let q = parse("mod3 AND NOT mod5").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => {
                // Pruned by the positive term only; negatives are resolved
                // by the filter engine later.
                for p in (0..60).filter(|p| p % 3 == 0) {
                    assert!(pages.contains(&PageId(p)));
                }
            }
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }

    #[test]
    fn page_cost_accounts_for_full_scans() {
        assert_eq!(QueryPlan::FullScan.page_cost(1234), 1234);
        assert_eq!(
            QueryPlan::Pages(vec![PageId(1), PageId(2)]).page_cost(1234),
            2
        );
    }

    #[test]
    fn empty_intersection_yields_empty_plan() {
        let mut ssd = ssd();
        let mut idx = InvertedIndex::new(IndexParams::default());
        idx.insert_page_tokens(&mut ssd, PageId(0), [b"only-here".as_slice()])
            .unwrap();
        idx.insert_page_tokens(&mut ssd, PageId(1), [b"only-there".as_slice()])
            .unwrap();
        let q = parse("only-here AND only-there").unwrap();
        match idx.plan(&mut ssd, &q).unwrap() {
            QueryPlan::Pages(pages) => assert!(pages.len() <= 1, "near-empty intersection"),
            QueryPlan::FullScan => panic!("unexpected full scan"),
        }
    }
}
