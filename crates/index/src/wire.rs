//! Tiny little-endian cursor helpers for checkpoint serialization.

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(buf: &mut Vec<u8>, v: &[u8]) {
    put_u64(buf, v.len() as u64);
    buf.extend_from_slice(v);
}

pub(crate) fn get_u64(cursor: &mut &[u8]) -> Option<u64> {
    let (head, rest) = cursor.split_first_chunk::<8>()?;
    *cursor = rest;
    Some(u64::from_le_bytes(*head))
}

pub(crate) fn get_usize(cursor: &mut &[u8]) -> Option<usize> {
    usize::try_from(get_u64(cursor)?).ok()
}

pub(crate) fn get_bytes(cursor: &mut &[u8]) -> Option<Vec<u8>> {
    let len = get_usize(cursor)?;
    if cursor.len() < len {
        return None;
    }
    let (head, rest) = cursor.split_at(len);
    *cursor = rest;
    Some(head.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        put_bytes(&mut buf, b"hello");
        let mut cur = buf.as_slice();
        assert_eq!(get_u64(&mut cur), Some(42));
        assert_eq!(get_bytes(&mut cur), Some(b"hello".to_vec()));
        assert!(cur.is_empty());
        assert_eq!(get_u64(&mut cur), None, "exhausted cursor");
    }

    #[test]
    fn truncated_input_is_none_not_panic() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, b"payload");
        let mut cur = &buf[..buf.len() - 2];
        assert_eq!(get_bytes(&mut cur), None);
    }
}
