//! Deterministic ingest routing and the persisted routing manifest.
//!
//! The router decides, frame by frame, which device a prepared ingest frame
//! lands on. Placement must be a pure function of the routing epoch (shard
//! count, mode, salt) and the frame itself, never of wall-clock state, so
//! that every replica — and every recovery — derives the same layout. The
//! decisions actually taken are additionally journaled as a run-length
//! encoded manifest: recovery does not re-hash history, it replays the
//! recorded placement and cross-checks it against what each shard's own
//! recovery produced.

use mithrilog_storage::crc32;

/// How ingest frames are placed onto shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteMode {
    /// Hash each frame's key line (its first raw line) with the epoch salt;
    /// the frame goes to `hash % shards`. Spreads any workload across all
    /// devices without caller cooperation.
    LineHash,
    /// Hash the ingest's explicit tenant tag; every frame of a tagged
    /// ingest lands on that tenant's home shard, giving tenants device
    /// locality (and making per-tenant retention a per-shard operation).
    /// Untagged ingests fall back to [`RouteMode::LineHash`] placement.
    Tenant,
}

impl RouteMode {
    fn tag(self) -> u8 {
        match self {
            RouteMode::LineHash => 0,
            RouteMode::Tenant => 1,
        }
    }

    fn from_tag(tag: u8) -> Option<RouteMode> {
        match tag {
            0 => Some(RouteMode::LineHash),
            1 => Some(RouteMode::Tenant),
            _ => None,
        }
    }

    /// Parses the CLI/protocol spelling (`line-hash` / `tenant`).
    pub fn parse(text: &str) -> Option<RouteMode> {
        match text {
            "line-hash" => Some(RouteMode::LineHash),
            "tenant" => Some(RouteMode::Tenant),
            _ => None,
        }
    }

    /// The CLI/protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            RouteMode::LineHash => "line-hash",
            RouteMode::Tenant => "tenant",
        }
    }
}

/// The routing parameters frozen at topology creation. Changing any of them
/// is a new epoch: placement of already-stored data never silently moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutingEpoch {
    /// Number of independent devices.
    pub shards: u32,
    /// Placement mode.
    pub mode: RouteMode,
    /// Hash salt, so distinct deployments with equal keys still get
    /// distinct placements.
    pub salt: u64,
}

/// 64-bit FNV-1a over `salt || bytes` — a stable, dependency-free hash
/// whose output is identical on every platform (placement must never
/// depend on `std`'s randomized hashers).
fn fnv1a(salt: u64, bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for b in salt.to_le_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

impl RoutingEpoch {
    /// The shard a frame with this key line is placed on.
    pub fn route_key(&self, key: &[u8]) -> usize {
        (fnv1a(self.salt, key) % u64::from(self.shards.max(1))) as usize
    }

    /// The home shard of a tenant tag.
    pub fn route_tenant(&self, tenant: &str) -> usize {
        self.route_key(tenant.as_bytes())
    }
}

/// The persisted routing journal: the epoch plus a run-length encoding of
/// every placement decision taken, in global frame order. Frame ordinal
/// `g`'s shard is found by walking the runs; conversely the `k`-th frame
/// recorded for shard `s` is that shard's `k`-th data page — the bijection
/// the scatter-gather merge uses to reconstruct single-device line order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingManifest {
    /// The frozen routing parameters.
    pub epoch: RoutingEpoch,
    /// `(shard, frame_count)` runs in global frame order.
    pub runs: Vec<(u32, u64)>,
}

const MANIFEST_MAGIC: &[u8; 8] = b"MLSHARD1";

/// Why a serialized manifest was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Truncated, bad magic, or unknown mode tag.
    Malformed(&'static str),
    /// The trailing CRC did not match the body.
    ChecksumMismatch,
    /// A run references a shard outside the epoch's range.
    ShardOutOfRange {
        /// The offending shard index.
        shard: u32,
        /// The epoch's shard count.
        shards: u32,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Malformed(what) => write!(f, "malformed routing manifest: {what}"),
            ManifestError::ChecksumMismatch => write!(f, "routing manifest checksum mismatch"),
            ManifestError::ShardOutOfRange { shard, shards } => write!(
                f,
                "routing manifest references shard {shard} of a {shards}-shard epoch"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

impl RoutingManifest {
    /// An empty manifest for a fresh topology.
    pub fn new(epoch: RoutingEpoch) -> Self {
        RoutingManifest {
            epoch,
            runs: Vec::new(),
        }
    }

    /// Records that the next frame (in global order) was placed on `shard`,
    /// extending the last run when possible.
    pub fn record(&mut self, shard: usize) {
        let shard = shard as u32;
        match self.runs.last_mut() {
            Some((last, count)) if *last == shard => *count += 1,
            _ => self.runs.push((shard, 1)),
        }
    }

    /// Total frames recorded.
    pub fn total_frames(&self) -> u64 {
        self.runs.iter().map(|(_, c)| *c).sum()
    }

    /// Frames recorded for `shard`.
    pub fn frames_on(&self, shard: usize) -> u64 {
        self.runs
            .iter()
            .filter(|(s, _)| *s as usize == shard)
            .map(|(_, c)| *c)
            .sum()
    }

    /// The placement sequence, one shard index per global frame ordinal.
    pub fn replay(&self) -> impl Iterator<Item = usize> + '_ {
        self.runs
            .iter()
            .flat_map(|&(shard, count)| std::iter::repeat_n(shard as usize, count as usize))
    }

    /// Serializes to `magic || version || epoch || runs || crc32`. The CRC
    /// covers everything before it, so torn or bit-flipped manifests are
    /// rejected rather than silently misrouting recovery.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40 + self.runs.len() * 12);
        buf.extend_from_slice(MANIFEST_MAGIC);
        buf.push(1); // version
        buf.extend_from_slice(&self.epoch.shards.to_le_bytes());
        buf.push(self.epoch.mode.tag());
        buf.extend_from_slice(&self.epoch.salt.to_le_bytes());
        buf.extend_from_slice(&(self.runs.len() as u64).to_le_bytes());
        for &(shard, count) in &self.runs {
            buf.extend_from_slice(&shard.to_le_bytes());
            buf.extend_from_slice(&count.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and verifies a serialized manifest.
    ///
    /// # Errors
    ///
    /// [`ManifestError`] on truncation, bad magic/version/mode, checksum
    /// mismatch, or a run referencing a shard outside the epoch.
    pub fn decode(bytes: &[u8]) -> Result<RoutingManifest, ManifestError> {
        if bytes.len() < 34 {
            return Err(ManifestError::Malformed("too short"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let want = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != want {
            return Err(ManifestError::ChecksumMismatch);
        }
        if &body[..8] != MANIFEST_MAGIC {
            return Err(ManifestError::Malformed("bad magic"));
        }
        if body[8] != 1 {
            return Err(ManifestError::Malformed("unknown version"));
        }
        let shards = u32::from_le_bytes(body[9..13].try_into().expect("width checked"));
        let mode = RouteMode::from_tag(body[13]).ok_or(ManifestError::Malformed("unknown mode"))?;
        let salt = u64::from_le_bytes(body[14..22].try_into().expect("width checked"));
        let run_count = u64::from_le_bytes(body[22..30].try_into().expect("width checked"));
        let runs_bytes = &body[30..];
        if runs_bytes.len() as u64 != run_count * 12 {
            return Err(ManifestError::Malformed("run table length mismatch"));
        }
        let mut runs = Vec::with_capacity(run_count as usize);
        for chunk in runs_bytes.chunks_exact(12) {
            let shard = u32::from_le_bytes(chunk[..4].try_into().expect("width checked"));
            let count = u64::from_le_bytes(chunk[4..].try_into().expect("width checked"));
            if shard >= shards {
                return Err(ManifestError::ShardOutOfRange { shard, shards });
            }
            runs.push((shard, count));
        }
        Ok(RoutingManifest {
            epoch: RoutingEpoch { shards, mode, salt },
            runs,
        })
    }

    /// Trims the manifest to its longest prefix consistent with the given
    /// per-shard recovered frame counts: trailing run entries referencing
    /// frames a shard's recovery discarded (a crash mid cross-shard ingest)
    /// are dropped, newest first. Returns the number of frames trimmed.
    ///
    /// After trimming, `frames_on(s) <= recovered[s]` for every shard; a
    /// shard left holding *more* committed frames than the manifest
    /// references is the caller's divergence check, not handled here.
    pub fn trim_to(&mut self, recovered: &[u64]) -> u64 {
        let mut excess: Vec<u64> = (0..recovered.len() as u32)
            .map(|s| {
                self.frames_on(s as usize)
                    .saturating_sub(recovered[s as usize])
            })
            .collect();
        let mut trimmed = 0u64;
        while excess.iter().any(|&e| e > 0) {
            let Some(&mut (shard, ref mut count)) = self.runs.last_mut() else {
                break;
            };
            let shard = shard as usize;
            let cut = excess.get(shard).copied().unwrap_or(0).min(*count);
            if cut == 0 {
                // The newest run is already fully referenced, yet some
                // other shard still has excess: the manifest's tail does
                // not explain it. Stop — the caller reports divergence.
                break;
            }
            *count -= cut;
            excess[shard] -= cut;
            trimmed += cut;
            if *count == 0 {
                self.runs.pop();
            }
        }
        trimmed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch() -> RoutingEpoch {
        RoutingEpoch {
            shards: 4,
            mode: RouteMode::LineHash,
            salt: 0x5eed,
        }
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let e = epoch();
        for key in [&b"alpha"[..], b"", b"RAS KERNEL FATAL", b"tenant-7"] {
            let a = e.route_key(key);
            assert_eq!(a, e.route_key(key));
            assert!(a < 4);
        }
        // The salt matters: a different deployment places differently for
        // at least one of a handful of keys.
        let other = RoutingEpoch { salt: 1, ..e };
        let moved = (0..64).any(|i| {
            let key = format!("key-{i}");
            e.route_key(key.as_bytes()) != other.route_key(key.as_bytes())
        });
        assert!(moved, "salt must perturb placement");
    }

    #[test]
    fn manifest_roundtrip() {
        let mut m = RoutingManifest::new(epoch());
        for shard in [0usize, 0, 1, 3, 3, 3, 2, 0] {
            m.record(shard);
        }
        assert_eq!(m.total_frames(), 8);
        assert_eq!(m.frames_on(3), 3);
        assert_eq!(m.runs.len(), 5, "adjacent placements collapse into runs");
        let decoded = RoutingManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        let replayed: Vec<usize> = decoded.replay().collect();
        assert_eq!(replayed, vec![0, 0, 1, 3, 3, 3, 2, 0]);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = RoutingManifest::new(epoch());
        let mut bytes = m.encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            RoutingManifest::decode(&bytes),
            Err(ManifestError::ChecksumMismatch) | Err(ManifestError::Malformed(_))
        ));
        assert!(RoutingManifest::decode(&bytes[..10]).is_err());
    }

    #[test]
    fn manifest_rejects_out_of_range_shard() {
        let mut m = RoutingManifest::new(epoch());
        m.runs.push((9, 1));
        assert!(matches!(
            RoutingManifest::decode(&m.encode()),
            Err(ManifestError::ShardOutOfRange {
                shard: 9,
                shards: 4
            })
        ));
    }

    #[test]
    fn trim_drops_only_unrecovered_tail() {
        let mut m = RoutingManifest::new(epoch());
        for shard in [0usize, 1, 0, 1, 1] {
            m.record(shard);
        }
        // Shard 1 recovered only one of its three frames: the two newest
        // shard-1 placements trim away; shard 0 is untouched.
        let trimmed = m.trim_to(&[2, 1, 0, 0]);
        assert_eq!(trimmed, 2);
        assert_eq!(m.frames_on(0), 2);
        assert_eq!(m.frames_on(1), 1);
        let replayed: Vec<usize> = m.replay().collect();
        assert_eq!(replayed, vec![0, 1, 0]);
    }
}
