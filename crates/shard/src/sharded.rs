//! The multi-device shard layer: N fully independent [`MithriLog`] devices
//! behind one ingest/query facade.
//!
//! # Design
//!
//! Routing happens at *frame* granularity: [`PreparedIngest::build`] turns
//! text into compressed page frames as a pure function of `(config, text)`,
//! and the router sends each finished frame — bytes untouched — to its
//! shard. Because the frames of an N-shard deployment are byte-for-byte the
//! frames of a single-device deployment (just distributed), the union of
//! shard pages equals the single-device page set, and the `k`-th frame
//! routed to shard `s` is that shard's `k`-th data page. The persisted
//! [`RoutingManifest`] records the placement sequence, giving a bijection
//! between (shard, local page) and the global frame ordinal; scatter-gather
//! queries merge per-shard results by that ordinal, reproducing the exact
//! line order — and the exact as-if-solo cost accounting — of a
//! single-device run.
//!
//! # What changes with shard count, and what must not
//!
//! Invariant across topologies (the `shard_determinism` gate): matched
//! lines and their order, per-query as-if-solo ledgers (on full-scan
//! plans), `pages_scanned` / `bytes_filtered` / `lines_scanned`, and the
//! merged [`DegradedRead`] accounting. Changing with topology, by design:
//! `modeled_time` is the *maximum* over shards — independent devices scan
//! their partitions in parallel, which is the entire point of adding them.

use std::collections::HashMap;
use std::time::Instant;

use mithrilog::{
    IngestReport, MithriLog, MithriLogError, PlanExplain, PreparedIngest, QueryOutcome,
    QueryRequest, RecoveryReport, RetentionReport, ScanAttribution, SegmentSummary,
    SharedBatchOutcome, SharedScanReport, SystemConfig,
};
use mithrilog_storage::{MemStore, PageStore, ScrubReport, ScrubSlice};

use crate::router::{ManifestError, RouteMode, RoutingEpoch, RoutingManifest};

/// Topology parameters for a fresh sharded deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOptions {
    /// Number of independent devices (>= 1).
    pub shards: u32,
    /// Frame placement mode.
    pub mode: RouteMode,
    /// Routing hash salt.
    pub salt: u64,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            mode: RouteMode::LineHash,
            salt: 0,
        }
    }
}

/// Why a shard-layer operation failed.
#[derive(Debug)]
pub enum ShardError {
    /// Bad topology parameters or store set.
    Config(String),
    /// The routing manifest was unreadable.
    Manifest(ManifestError),
    /// A shard holds committed frames the (trimmed) manifest never
    /// referenced — a torn cross-shard ingest the durable-write protocol
    /// should have prevented. Refusing to guess placement is the only
    /// honest answer.
    Diverged {
        /// The shard holding unreferenced frames.
        shard: usize,
        /// Frames the manifest references on that shard.
        referenced: u64,
        /// Frames the shard's own recovery produced.
        recovered: u64,
    },
    /// An operation on one member device failed.
    Shard {
        /// Which device.
        shard: usize,
        /// The underlying error.
        source: MithriLogError,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config(reason) => write!(f, "shard topology: {reason}"),
            ShardError::Manifest(e) => write!(f, "{e}"),
            ShardError::Diverged {
                shard,
                referenced,
                recovered,
            } => write!(
                f,
                "shard {shard} diverged from the routing manifest: \
                 {recovered} frames recovered, {referenced} referenced"
            ),
            ShardError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Manifest(e) => Some(e),
            ShardError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ManifestError> for ShardError {
    fn from(e: ManifestError) -> Self {
        ShardError::Manifest(e)
    }
}

/// Cross-shard recovery summary: per-shard reports plus what the manifest
/// reconciliation did.
#[derive(Debug)]
pub struct ShardRecovery {
    /// Each shard's own recovery report, in shard order.
    pub shards: Vec<RecoveryReport>,
    /// Manifest run entries trimmed because a shard's recovery discarded
    /// the frames they referenced (consistent-prefix rule: a cross-shard
    /// ingest is visible only up to the oldest surviving frame).
    pub frames_trimmed: u64,
}

/// One shard's observable state — the per-device honesty row the bench and
/// STATS surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardRow {
    /// Shard index.
    pub shard: u32,
    /// Lines held.
    pub lines: u64,
    /// Data pages held.
    pub data_pages: u64,
    /// Raw bytes held.
    pub raw_bytes: u64,
    /// Sealed segments held.
    pub sealed_segments: u64,
    /// Cumulative device page reads.
    pub pages_read: u64,
    /// Cumulative device bytes read.
    pub bytes_read: u64,
    /// Cumulative transient-read retries.
    pub retries: u64,
    /// This device's modeled standalone filtering throughput, GB/s.
    pub modeled_gbps: f64,
}

/// A sharded log store: N independent [`MithriLog`] devices, a
/// deterministic frame router, and an order-preserving scatter-gather
/// query path. See the module docs for the identity argument.
pub struct ShardedLog<S: PageStore> {
    shards: Vec<MithriLog<S>>,
    manifest: RoutingManifest,
    config: SystemConfig,
}

impl ShardedLog<MemStore> {
    /// Creates a fresh in-memory topology of `opts.shards` devices, each
    /// configured identically with `config`.
    ///
    /// # Panics
    ///
    /// When `opts.shards == 0` or `config` is rejected by a member device.
    pub fn new(config: SystemConfig, opts: ShardOptions) -> Self {
        assert!(opts.shards >= 1, "a topology needs at least one shard");
        let shards = (0..opts.shards)
            .map(|_| MithriLog::new(config.clone()))
            .collect();
        ShardedLog {
            shards,
            manifest: RoutingManifest::new(RoutingEpoch {
                shards: opts.shards,
                mode: opts.mode,
                salt: opts.salt,
            }),
            config,
        }
    }
}

impl<S: PageStore> ShardedLog<S> {
    /// Creates a fresh topology over caller-provided (empty) stores, one
    /// per shard.
    ///
    /// # Errors
    ///
    /// [`ShardError::Config`] when no stores are given or a member device
    /// rejects its store/config pairing.
    pub fn with_stores(
        stores: Vec<S>,
        config: SystemConfig,
        mode: RouteMode,
        salt: u64,
    ) -> Result<Self, ShardError> {
        if stores.is_empty() {
            return Err(ShardError::Config("at least one store is required".into()));
        }
        let count = stores.len() as u32;
        let mut shards = Vec::with_capacity(stores.len());
        for (i, store) in stores.into_iter().enumerate() {
            shards.push(
                MithriLog::with_store(store, config.clone())
                    .map_err(|source| ShardError::Shard { shard: i, source })?,
            );
        }
        Ok(ShardedLog {
            shards,
            manifest: RoutingManifest::new(RoutingEpoch {
                shards: count,
                mode,
                salt,
            }),
            config,
        })
    }

    /// Reopens a topology: recovers each shard from its store, decodes the
    /// persisted routing manifest, trims it to the consistent prefix the
    /// shards actually recovered, and cross-checks that no shard holds
    /// frames the manifest never placed.
    ///
    /// # Errors
    ///
    /// [`ShardError::Manifest`] for an unreadable manifest,
    /// [`ShardError::Config`] for a store-count/epoch mismatch,
    /// [`ShardError::Diverged`] when a shard recovered more frames than the
    /// manifest references, and [`ShardError::Shard`] for member recovery
    /// failures.
    pub fn open_stores(
        stores: Vec<S>,
        config: SystemConfig,
        manifest_bytes: &[u8],
    ) -> Result<(Self, ShardRecovery), ShardError> {
        let mut manifest = RoutingManifest::decode(manifest_bytes)?;
        if stores.len() as u32 != manifest.epoch.shards {
            return Err(ShardError::Config(format!(
                "{} stores for a {}-shard epoch",
                stores.len(),
                manifest.epoch.shards
            )));
        }
        let mut shards = Vec::with_capacity(stores.len());
        let mut reports = Vec::with_capacity(stores.len());
        for (i, store) in stores.into_iter().enumerate() {
            let (shard, report) = MithriLog::open_store(store, config.clone())
                .map_err(|source| ShardError::Shard { shard: i, source })?;
            shards.push(shard);
            reports.push(report);
        }
        let recovered: Vec<u64> = shards.iter().map(|s| s.data_pages().len() as u64).collect();
        let frames_trimmed = manifest.trim_to(&recovered);
        for (i, &rec) in recovered.iter().enumerate() {
            let referenced = manifest.frames_on(i);
            if rec > referenced {
                return Err(ShardError::Diverged {
                    shard: i,
                    referenced,
                    recovered: rec,
                });
            }
        }
        Ok((
            ShardedLog {
                shards,
                manifest,
                config,
            },
            ShardRecovery {
                shards: reports,
                frames_trimmed,
            },
        ))
    }

    /// The per-shard system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The routing epoch in force.
    pub fn epoch(&self) -> RoutingEpoch {
        self.manifest.epoch
    }

    /// Number of member devices.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The serialized routing manifest — persist this next to the shard
    /// stores after every ingest (see DESIGN.md for the durable-write
    /// protocol) so [`ShardedLog::open_stores`] can re-derive placement.
    pub fn manifest_bytes(&self) -> Vec<u8> {
        self.manifest.encode()
    }

    /// Direct read access to a member device, for inspection and drills.
    pub fn shard(&self, index: usize) -> &MithriLog<S> {
        &self.shards[index]
    }

    /// Direct mutable access to a member device, for operational tooling
    /// and fault drills (quarantine, corruption). Structural mutation that
    /// adds or drops frames behind the router's back breaks the manifest
    /// bijection; drills must confine themselves to page contents and
    /// quarantine state.
    pub fn shard_mut(&mut self, index: usize) -> &mut MithriLog<S> {
        &mut self.shards[index]
    }

    /// Routes one prepared frame set: the shard each frame goes to, in
    /// frame order.
    fn routes_for(&self, tenant: Option<&str>, prep: &PreparedIngest<'_>) -> Vec<usize> {
        let epoch = self.manifest.epoch;
        let pinned = match (epoch.mode, tenant) {
            (RouteMode::Tenant, Some(t)) => Some(epoch.route_tenant(t)),
            _ => None,
        };
        (0..prep.frame_count() as usize)
            .map(|i| pinned.unwrap_or_else(|| epoch.route_key(prep.frame_key(i))))
            .collect()
    }

    /// Ingests a batch of log text, routing its frames across the shards.
    ///
    /// # Errors
    ///
    /// The first member-device error, identified by shard.
    pub fn ingest(&mut self, text: &[u8]) -> Result<IngestReport, ShardError> {
        self.ingest_tagged(None, text)
    }

    /// Ingests with an optional tenant tag. Under [`RouteMode::Tenant`] a
    /// tagged batch lands wholly on the tenant's home shard; untagged
    /// batches (and every batch under [`RouteMode::LineHash`]) spread by
    /// frame key.
    ///
    /// # Errors
    ///
    /// The first member-device error, identified by shard.
    pub fn ingest_tagged(
        &mut self,
        tenant: Option<&str>,
        text: &[u8],
    ) -> Result<IngestReport, ShardError> {
        let prep = PreparedIngest::build(&self.config, std::borrow::Cow::Borrowed(text));
        self.apply_prepared(tenant, &prep)
    }

    /// Applies an already-prepared ingest (the overlapped-service path):
    /// routes the finished frames, applies each shard's share serially, and
    /// records the placement in the manifest.
    ///
    /// # Errors
    ///
    /// The first member-device error, identified by shard. Frames applied
    /// to earlier shards before the error are durable on those shards but
    /// unrecorded in the manifest; reopening trims them away
    /// (consistent-prefix rule), matching a crash at the same point.
    pub fn apply_prepared(
        &mut self,
        tenant: Option<&str>,
        prep: &PreparedIngest<'_>,
    ) -> Result<IngestReport, ShardError> {
        let routes = self.routes_for(tenant, prep);
        let parts = prep.partition(&routes, self.shards.len());
        let mut total = IngestReport {
            raw_bytes: 0,
            lines: 0,
            data_pages: 0,
            compressed_bytes: 0,
        };
        for (shard, part) in parts.iter().enumerate() {
            if part.frame_count() == 0 {
                continue;
            }
            let report = self.shards[shard]
                .apply_ingest(part)
                .map_err(|source| ShardError::Shard { shard, source })?;
            total.raw_bytes += report.raw_bytes;
            total.lines += report.lines;
            total.data_pages += report.data_pages;
            total.compressed_bytes += report.compressed_bytes;
        }
        for &shard in &routes {
            self.manifest.record(shard);
        }
        Ok(total)
    }

    /// Per-shard maps from local data-page id to global frame ordinal,
    /// accounting for retention having dropped each shard's oldest frames.
    fn ordinal_maps(&self) -> Vec<HashMap<u64, u64>> {
        let mut placed: Vec<Vec<u64>> = vec![Vec::new(); self.shards.len()];
        for (g, s) in self.manifest.replay().enumerate() {
            placed[s].push(g as u64);
        }
        self.shards
            .iter()
            .zip(&placed)
            .map(|(shard, ords)| {
                let pages = shard.data_pages();
                // Retention drops whole oldest segments, so the surviving
                // pages are the newest `pages.len()` frames ever placed.
                let dropped = ords.len() - pages.len();
                pages
                    .iter()
                    .enumerate()
                    .map(|(j, p)| (p.0, ords[dropped + j]))
                    .collect()
            })
            .collect()
    }

    /// Executes a batch of queries scatter-gather: every shard runs the
    /// whole batch over its partition (as-if-solo accounting intact), and
    /// per-shard results merge by global frame ordinal into the exact
    /// outcome a single-device run over the same lines produces.
    ///
    /// In merged outcomes, `line_pages` and `degraded.skipped_pages` carry
    /// *global frame ordinals* (topology-invariant), not device page ids;
    /// `modeled_time` is the maximum over shards (devices scan in
    /// parallel); everything else is the solo-run value (see module docs).
    ///
    /// # Errors
    ///
    /// The first member-device error, identified by shard.
    pub fn query_shared(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<SharedBatchOutcome, ShardError> {
        let wall_start = Instant::now();
        let maps = self.ordinal_maps();
        let mut per_shard: Vec<SharedBatchOutcome> = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter_mut().enumerate() {
            per_shard.push(
                shard
                    .query_shared(requests)
                    .map_err(|source| ShardError::Shard { shard: i, source })?,
            );
        }
        let wall_time = wall_start.elapsed();

        // Merge the batch-wide shared-scan report: physical counters sum,
        // attributions sum per query.
        let mut shared = SharedScanReport::default();
        for batch in &per_shard {
            shared.demanded_page_reads += batch.shared.demanded_page_reads;
            shared.unique_pages_read += batch.shared.unique_pages_read;
            shared.shared_reads_avoided += batch.shared.shared_reads_avoided;
            shared.cache_hits += batch.shared.cache_hits;
            shared.cache_bytes_saved += batch.shared.cache_bytes_saved;
            shared.pages_pruned_by_index += batch.shared.pages_pruned_by_index;
            shared.pages_pruned_by_bitmap += batch.shared.pages_pruned_by_bitmap;
            shared.pages_pruned_by_both += batch.shared.pages_pruned_by_both;
            shared.probe_node_visits_demanded += batch.shared.probe_node_visits_demanded;
            shared.probe_node_visits_physical += batch.shared.probe_node_visits_physical;
        }
        for q in 0..requests.len() {
            let mut attr = ScanAttribution::default();
            for batch in &per_shard {
                let a = &batch.shared.attribution[q];
                attr.planned_pages += a.planned_pages;
                attr.exclusive_pages += a.exclusive_pages;
                attr.shared_pages += a.shared_pages;
                attr.attributed_page_cost += a.attributed_page_cost;
                attr.pruned_by_index += a.pruned_by_index;
                attr.pruned_by_bitmap += a.pruned_by_bitmap;
                attr.pruned_by_both += a.pruned_by_both;
            }
            shared.attribution.push(attr);
        }

        let total_lines: u64 = self.shards.iter().map(|s| s.lines()).sum();
        let total_pages: u64 = self.shards.iter().map(|s| s.data_page_count()).sum();
        let mut outcomes = Vec::with_capacity(requests.len());
        for q in 0..requests.len() {
            let outs: Vec<&QueryOutcome> = per_shard.iter().map(|b| &b.outcomes[q]).collect();
            outcomes.push(merge_outcomes(
                &outs,
                &maps,
                total_lines,
                total_pages,
                wall_time,
            ));
        }
        Ok(SharedBatchOutcome { outcomes, shared })
    }

    /// Parses and executes one query (a scatter-gather batch of one).
    ///
    /// # Errors
    ///
    /// Parse errors surface as [`ShardError::Config`]; execution errors as
    /// in [`ShardedLog::query_shared`].
    pub fn query_str(&mut self, query_text: &str) -> Result<QueryOutcome, ShardError> {
        let request =
            QueryRequest::parse(query_text).map_err(|e| ShardError::Config(e.to_string()))?;
        self.query_request(request)
    }

    /// Executes one request (a scatter-gather batch of one).
    ///
    /// # Errors
    ///
    /// As in [`ShardedLog::query_shared`].
    pub fn query_request(&mut self, request: QueryRequest) -> Result<QueryOutcome, ShardError> {
        let mut batch = self.query_shared(std::slice::from_ref(&request))?;
        Ok(batch.outcomes.remove(0))
    }

    /// Plan-only explain. Supported on single-shard topologies (where it is
    /// exactly the member device's explain); multi-shard explain would need
    /// a merged plan report and is not offered yet.
    ///
    /// # Errors
    ///
    /// [`ShardError::Config`] on a multi-shard topology; member errors
    /// otherwise.
    pub fn explain(&mut self, request: &QueryRequest) -> Result<PlanExplain, ShardError> {
        if self.shards.len() != 1 {
            return Err(ShardError::Config(
                "explain is not supported on multi-shard topologies".into(),
            ));
        }
        self.shards[0]
            .explain(request)
            .map_err(|source| ShardError::Shard { shard: 0, source })
    }

    /// Scrubs every shard end to end, merging the findings.
    pub fn scrub(&mut self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for shard in &mut self.shards {
            report.merge(&shard.scrub());
        }
        report
    }

    /// One bounded online-scrub slice. The cursor packs `(shard, page)`;
    /// a pass walks the devices in shard order and reports `complete` when
    /// the last shard's pass completes.
    pub fn scrub_slice(&mut self, cursor: u64, max_pages: u64) -> ScrubSlice {
        const SHIFT: u32 = 48;
        const PAGE_MASK: u64 = (1 << SHIFT) - 1;
        let shard = ((cursor >> SHIFT) as usize).min(self.shards.len() - 1);
        let slice = self.shards[shard].scrub_slice(cursor & PAGE_MASK, max_pages);
        if !slice.complete {
            return ScrubSlice {
                report: slice.report,
                next: ((shard as u64) << SHIFT) | slice.next,
                complete: false,
            };
        }
        if shard + 1 < self.shards.len() {
            ScrubSlice {
                report: slice.report,
                next: ((shard as u64 + 1) << SHIFT),
                complete: false,
            }
        } else {
            ScrubSlice {
                report: slice.report,
                next: 0,
                complete: true,
            }
        }
    }

    /// Applies retention per shard: each member keeps at most `keep` sealed
    /// segments. Reports sum across shards.
    ///
    /// # Errors
    ///
    /// The first member-device error, identified by shard.
    pub fn apply_retention(&mut self, keep: u64) -> Result<RetentionReport, ShardError> {
        let mut total = RetentionReport::default();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let r = shard
                .apply_retention(keep)
                .map_err(|source| ShardError::Shard { shard: i, source })?;
            total.segments_dropped += r.segments_dropped;
            total.segments_retained += r.segments_retained;
            total.pages_dropped += r.pages_dropped;
            total.lines_dropped += r.lines_dropped;
            total.raw_bytes_dropped += r.raw_bytes_dropped;
        }
        Ok(total)
    }

    /// Sealed segments across all shards, tagged by shard index.
    pub fn sealed_segments(&self) -> Vec<(u32, SegmentSummary)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                s.sealed_segments()
                    .into_iter()
                    .map(move |seg| (i as u32, seg))
            })
            .collect()
    }

    /// Sealed segments across all shards.
    pub fn sealed_segment_count(&self) -> u64 {
        self.shards.iter().map(|s| s.sealed_segment_count()).sum()
    }

    /// Total lines across all shards.
    pub fn lines(&self) -> u64 {
        self.shards.iter().map(|s| s.lines()).sum()
    }

    /// Total raw bytes across all shards.
    pub fn raw_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.raw_bytes()).sum()
    }

    /// Per-shard honesty rows: what each device holds and what it has been
    /// charged, each modeled exactly as a standalone device would be.
    pub fn shard_rows(&self) -> Vec<ShardRow> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let ledger = s.device().ledger();
                ShardRow {
                    shard: i as u32,
                    lines: s.lines(),
                    data_pages: s.data_page_count(),
                    raw_bytes: s.raw_bytes(),
                    sealed_segments: s.sealed_segment_count(),
                    pages_read: ledger.pages_read,
                    bytes_read: ledger.bytes_read,
                    retries: ledger.retries,
                    modeled_gbps: s.modeled_throughput().total_gbps,
                }
            })
            .collect()
    }
}

/// Merges one query's per-shard outcomes into the single-device-equivalent
/// outcome (see [`ShardedLog::query_shared`] for the field semantics).
fn merge_outcomes(
    outs: &[&QueryOutcome],
    maps: &[HashMap<u64, u64>],
    total_lines: u64,
    total_pages: u64,
    wall_time: std::time::Duration,
) -> QueryOutcome {
    // K-way merge by global ordinal. Ordinals are unique to one shard
    // (a frame lives on exactly one device), so ties never cross shards
    // and within-page line order is preserved by the per-shard cursors.
    let mut cursors = vec![0usize; outs.len()];
    let mut lines = Vec::with_capacity(outs.iter().map(|o| o.lines.len()).sum());
    let mut line_pages = Vec::with_capacity(lines.capacity());
    loop {
        let mut best: Option<(u64, usize)> = None;
        for (s, out) in outs.iter().enumerate() {
            let c = cursors[s];
            if c < out.lines.len() {
                let ord = maps[s][&out.line_pages[c]];
                if best.is_none_or(|(b, _)| ord < b) {
                    best = Some((ord, s));
                }
            }
        }
        let Some((ord, s)) = best else { break };
        lines.push(outs[s].lines[cursors[s]].clone());
        line_pages.push(ord);
        cursors[s] += 1;
    }

    let mut ledger = mithrilog_storage::CostLedger::default();
    for out in outs {
        ledger.merge(&out.ledger);
    }
    let mut degraded = mithrilog::DegradedRead::default();
    for (s, out) in outs.iter().enumerate() {
        for page in &out.degraded.skipped_pages {
            degraded.skipped_pages.push(maps[s][page]);
        }
        degraded.retries += out.degraded.retries;
        degraded.index_fallback |= out.degraded.index_fallback;
        degraded.budget_clipped += out.degraded.budget_clipped;
        degraded.deadline_clipped += out.degraded.deadline_clipped;
    }
    degraded.skipped_pages.sort_unstable();

    let pages_scanned: u64 = outs.iter().map(|o| o.pages_scanned).sum();
    let bytes_filtered: u64 = outs.iter().map(|o| o.bytes_filtered).sum();
    let lines_scanned: u64 = outs.iter().map(|o| o.lines_scanned).sum();
    // Recompute the missed-line estimate from the merged observations so it
    // matches what a single device scanning the union would have estimated
    // (per-shard estimates round per shard and would not sum identically).
    let lost =
        degraded.skipped_pages.len() as u64 + degraded.budget_clipped + degraded.deadline_clipped;
    let pages_filtered = pages_scanned - degraded.skipped_pages.len() as u64;
    degraded.estimated_missed_lines = if lost == 0 {
        0
    } else if pages_filtered > 0 {
        lines_scanned.div_ceil(pages_filtered) * lost
    } else {
        total_lines.div_ceil(total_pages.max(1)) * lost
    };

    QueryOutcome {
        lines,
        line_pages,
        offloaded: outs.iter().all(|o| o.offloaded),
        used_index: outs.iter().any(|o| o.used_index),
        pages_scanned,
        bytes_filtered,
        lines_scanned,
        ledger,
        // Independent devices scan their partitions in parallel: the
        // slowest shard bounds the merged modeled time. This is the one
        // field that legitimately improves with shard count.
        modeled_time: outs
            .iter()
            .map(|o| o.modeled_time)
            .max()
            .unwrap_or_default(),
        wall_time,
        degraded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading /g/g24/user/program\n\
pbs_mom: scan_for_exiting, job 4161 task 1 terminated\n\
RAS KERNEL INFO generating core.2275\n";

    fn corpus() -> Vec<u8> {
        // Enough distinct lines to span many pages and many frames.
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("node-{i:04} {}", LOG));
        }
        text.into_bytes()
    }

    fn sharded_with(shards: u32) -> ShardedLog<MemStore> {
        let mut s = ShardedLog::new(
            SystemConfig::for_tests(),
            ShardOptions {
                shards,
                mode: RouteMode::LineHash,
                salt: 0x5eed,
            },
        );
        s.ingest(&corpus()).unwrap();
        s
    }

    #[test]
    fn ingest_conserves_totals_and_spreads_frames() {
        let s = sharded_with(4);
        let mut solo = MithriLog::new(SystemConfig::for_tests());
        let report = solo.ingest(&corpus()).unwrap();
        assert_eq!(s.lines(), report.lines);
        assert_eq!(s.raw_bytes(), report.raw_bytes);
        let pages: u64 = s.shard_rows().iter().map(|r| r.data_pages).sum();
        assert_eq!(pages, report.data_pages);
        let populated = s.shard_rows().iter().filter(|r| r.data_pages > 0).count();
        assert!(populated >= 2, "line-hash routing must spread frames");
        assert_eq!(s.manifest_bytes(), s.manifest.encode());
    }

    #[test]
    fn scatter_gather_matches_single_device_results() {
        let mut solo = MithriLog::new(SystemConfig::for_tests());
        solo.ingest(&corpus()).unwrap();
        for shards in [1, 2, 4] {
            let mut s = sharded_with(shards);
            for q in ["FATAL", "KERNEL AND NOT parity", "terminated"] {
                let merged = s.query_str(q).unwrap();
                let reference = solo.query_str(q).unwrap();
                assert_eq!(merged.lines, reference.lines, "{shards} shards, query {q}");
                assert_eq!(merged.lines_scanned, reference.lines_scanned);
                assert_eq!(merged.bytes_filtered, reference.bytes_filtered);
                assert!(
                    merged.line_pages.windows(2).all(|w| w[0] <= w[1]),
                    "merged ordinals must be non-decreasing"
                );
            }
        }
    }

    #[test]
    fn one_shard_ledger_matches_plain_mithrilog_on_full_scans() {
        let mut solo = MithriLog::new(SystemConfig::full_scan_only());
        solo.ingest(&corpus()).unwrap();
        let mut s = ShardedLog::new(SystemConfig::full_scan_only(), ShardOptions::default());
        s.ingest(&corpus()).unwrap();
        let merged = s.query_str("FATAL").unwrap();
        let reference = solo.query_str("FATAL").unwrap();
        assert_eq!(merged.lines, reference.lines);
        assert_eq!(merged.ledger, reference.ledger);
        assert_eq!(merged.pages_scanned, reference.pages_scanned);
        assert_eq!(merged.modeled_time, reference.modeled_time);
    }

    #[test]
    fn reopen_replays_placement_and_results() {
        let mut s = sharded_with(3);
        let before = s.query_str("FATAL").unwrap();
        let stores: Vec<MemStore> = (0..s.shard_count())
            .map(|i| s.shard(i).device().store().clone())
            .collect();
        let (mut reopened, recovery) =
            ShardedLog::open_stores(stores, SystemConfig::for_tests(), &s.manifest_bytes())
                .unwrap();
        assert_eq!(recovery.frames_trimmed, 0);
        assert_eq!(recovery.shards.len(), 3);
        let after = reopened.query_str("FATAL").unwrap();
        assert_eq!(before.lines, after.lines);
        assert_eq!(before.line_pages, after.line_pages);
    }

    #[test]
    fn reopen_rejects_wrong_store_count_and_corrupt_manifest() {
        let s = sharded_with(2);
        let stores = vec![s.shard(0).device().store().clone()];
        assert!(matches!(
            ShardedLog::open_stores(stores, SystemConfig::for_tests(), &s.manifest_bytes()),
            Err(ShardError::Config(_))
        ));
        let mut bytes = s.manifest_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let stores: Vec<MemStore> = (0..2)
            .map(|i| s.shard(i).device().store().clone())
            .collect();
        assert!(matches!(
            ShardedLog::open_stores(stores, SystemConfig::for_tests(), &bytes),
            Err(ShardError::Manifest(_))
        ));
    }

    #[test]
    fn tenant_mode_pins_tagged_batches_to_home_shards() {
        let mut s = ShardedLog::new(
            SystemConfig::for_tests(),
            ShardOptions {
                shards: 4,
                mode: RouteMode::Tenant,
                salt: 9,
            },
        );
        let epoch = s.epoch();
        for tenant in ["acme", "globex", "initech"] {
            let home = epoch.route_tenant(tenant);
            let before: Vec<u64> = s.shard_rows().iter().map(|r| r.data_pages).collect();
            s.ingest_tagged(Some(tenant), &corpus()).unwrap();
            let after: Vec<u64> = s.shard_rows().iter().map(|r| r.data_pages).collect();
            for shard in 0..4 {
                if shard == home {
                    assert!(after[shard] > before[shard], "{tenant} lands on {home}");
                } else {
                    assert_eq!(after[shard], before[shard], "{tenant} must not leak");
                }
            }
        }
        // Tagged data still queries back in one merged, ordered stream.
        let outcome = s.query_str("FATAL").unwrap();
        assert!(!outcome.lines.is_empty());
        assert!(outcome.line_pages.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn scrub_slices_walk_every_shard() {
        let mut s = sharded_with(3);
        let total_full: u64 = {
            let full = s.scrub();
            full.pages_checked
        };
        let mut cursor = 0u64;
        let mut checked = 0u64;
        let mut slices = 0;
        loop {
            let slice = s.scrub_slice(cursor, 7);
            checked += slice.report.pages_checked;
            slices += 1;
            assert!(slices < 10_000, "scrub pass must terminate");
            if slice.complete {
                break;
            }
            cursor = slice.next;
        }
        assert_eq!(checked, total_full, "sliced pass covers every device");
    }
}
