//! Multi-device shard layer for MithriLog.
//!
//! The paper's scaling story — log analytics throughput grows by adding
//! near-storage devices — needs more than one simulated SSD. This crate
//! provides [`ShardedLog`]: N fully independent [`mithrilog::MithriLog`]
//! devices (each with its own superblock, journal, segments, bitmaps, page
//! cache, and cost ledgers) behind a deterministic frame router and an
//! order-preserving scatter-gather query path.
//!
//! The load-bearing invariant: for a fixed dataset and configuration, an
//! N-shard deployment returns byte-identical query results — lines, order,
//! as-if-solo cost ledgers, degraded-read accounting — to a 1-shard run
//! over the same lines. Only `modeled_time` improves with shard count,
//! because independent devices scan their partitions in parallel. See
//! `sharded`'s module docs for the full argument, and
//! `tests/shard_determinism.rs` for the gate.
//!
//! # Example
//!
//! ```
//! use mithrilog::SystemConfig;
//! use mithrilog_shard::{RouteMode, ShardOptions, ShardedLog};
//!
//! let mut sharded = ShardedLog::new(
//!     SystemConfig::default(),
//!     ShardOptions {
//!         shards: 2,
//!         mode: RouteMode::LineHash,
//!         salt: 7,
//!     },
//! );
//! let log = "\
//! RAS KERNEL INFO cache parity error corrected\n\
//! RAS KERNEL FATAL data storage interrupt\n\
//! RAS APP FATAL ciod: Error loading program\n";
//! sharded.ingest(log.as_bytes())?;
//! let outcome = sharded.query_str("FATAL AND NOT ciod:")?;
//! assert_eq!(outcome.lines.len(), 1);
//! # Ok::<(), mithrilog_shard::ShardError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod router;
mod sharded;

pub use router::{ManifestError, RouteMode, RoutingEpoch, RoutingManifest};
pub use sharded::{ShardError, ShardOptions, ShardRecovery, ShardRow, ShardedLog};
