use std::error::Error;
use std::fmt;

use mithrilog_compress::DecompressError;
use mithrilog_query::ParseQueryError;
use mithrilog_storage::StorageError;

/// Error from a MithriLog system operation.
#[derive(Debug, Clone)]
pub enum MithriLogError {
    /// Storage device error.
    Storage(StorageError),
    /// Query text could not be parsed.
    Parse(ParseQueryError),
    /// A stored page failed to decompress (corruption).
    Decompress(DecompressError),
    /// The system was constructed with inconsistent configuration.
    Config(String),
    /// Recovery-on-mount found the store in a state it cannot reconcile.
    Recovery(String),
}

impl fmt::Display for MithriLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MithriLogError::Storage(e) => write!(f, "storage error: {e}"),
            MithriLogError::Parse(e) => write!(f, "query parse error: {e}"),
            MithriLogError::Decompress(e) => write!(f, "page decompression error: {e}"),
            MithriLogError::Config(reason) => write!(f, "configuration error: {reason}"),
            MithriLogError::Recovery(reason) => write!(f, "recovery error: {reason}"),
        }
    }
}

impl Error for MithriLogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MithriLogError::Storage(e) => Some(e),
            MithriLogError::Parse(e) => Some(e),
            MithriLogError::Decompress(e) => Some(e),
            MithriLogError::Config(_) | MithriLogError::Recovery(_) => None,
        }
    }
}

impl From<StorageError> for MithriLogError {
    fn from(e: StorageError) -> Self {
        MithriLogError::Storage(e)
    }
}

impl From<ParseQueryError> for MithriLogError {
    fn from(e: ParseQueryError) -> Self {
        MithriLogError::Parse(e)
    }
}

impl From<DecompressError> for MithriLogError {
    fn from(e: DecompressError) -> Self {
        MithriLogError::Decompress(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e = MithriLogError::from(ParseQueryError::Empty);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("parse"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<MithriLogError>();
    }
}
