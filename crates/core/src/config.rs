use mithrilog_compress::LzahConfig;
use mithrilog_filter::FilterParams;
use mithrilog_index::IndexParams;
use mithrilog_storage::{DevicePerfModel, RetryPolicy};
use mithrilog_tokenizer::TokenizerConfig;

/// Configuration of a complete MithriLog system.
///
/// Defaults reproduce the paper's prototype: 4 KB pages, the 16-byte
/// datapath, a 256-row / 8-set cuckoo filter, the 16 KB LZAH hash table and
/// the BlueDBM device performance model.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// LZAH codec parameters.
    pub lzah: LzahConfig,
    /// Hardware filter parameters.
    pub filter: FilterParams,
    /// Tokenizer array parameters.
    pub tokenizer: TokenizerConfig,
    /// Inverted index parameters.
    pub index: IndexParams,
    /// Storage device performance model.
    pub device: DevicePerfModel,
    /// Whether queries use the inverted index (disable to force the
    /// full-scan comparison of §7.4.2).
    pub use_index: bool,
    /// Worker threads for the parallel query/ingest datapath, modeling the
    /// paper's N filter pipelines fed by parallel flash channels (§5,
    /// Figure 7). `0` (the default) resolves to the device model's channel
    /// count; see [`SystemConfig::resolved_query_threads`]. Results are
    /// byte-identical for every thread count — only wall-clock time changes.
    pub query_threads: usize,
    /// Byte budget of the host-side decompressed-page cache shared by all
    /// scans (see [`crate::PageCache`]). `0` disables caching. Hits leave
    /// every query outcome byte-identical to an uncached run — only the
    /// physical device traffic (and wall-clock time) changes.
    pub page_cache_bytes: u64,
    /// Transient-read retry policy installed on the device (see
    /// [`RetryPolicy`]). Validated by [`SystemConfig::validate`]:
    /// `max_attempts` must be ≥ 1.
    pub retry: RetryPolicy,
    /// Data pages per sealed segment: the open segment seals once it holds
    /// at least this many pages, making it an immutable, individually
    /// CRC-summarized fault and retention domain. Validated by
    /// [`SystemConfig::validate`]: must be ≥ 1.
    pub segment_pages: u64,
    /// Token-hash buckets of the per-segment pruning bitmaps frozen at
    /// seal time (one presence bit per bucket per page, plus the exact
    /// saturating-token list that lets negated terms prune). `0` disables
    /// bitmap construction and pruning entirely; pruning also requires
    /// [`SystemConfig::use_index`] so the §7.4.2 full-scan comparison stays
    /// a true full scan. Validated by [`SystemConfig::validate`]: at most
    /// [`SystemConfig::MAX_BITMAP_BUCKETS`].
    pub bitmap_buckets: usize,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            lzah: LzahConfig::default(),
            filter: FilterParams::default(),
            tokenizer: TokenizerConfig::default(),
            index: IndexParams::default(),
            device: DevicePerfModel::bluedbm_prototype(),
            use_index: true,
            query_threads: 0,
            page_cache_bytes: Self::DEFAULT_PAGE_CACHE_BYTES,
            retry: RetryPolicy::default(),
            segment_pages: Self::DEFAULT_SEGMENT_PAGES,
            bitmap_buckets: Self::DEFAULT_BITMAP_BUCKETS,
        }
    }
}

impl SystemConfig {
    /// Upper bound on [`SystemConfig::query_threads`]: a worker count above
    /// this is never a legitimate channel model, only a typo or hostile
    /// input, and spawning it would exhaust the host before producing the
    /// same (byte-identical) results a sane count produces.
    pub const MAX_QUERY_THREADS: usize = 1024;

    /// Default [`SystemConfig::page_cache_bytes`]: 32 MiB of decompressed
    /// text, enough for the repeated-query service workloads the cache
    /// targets while staying small next to the datasets themselves.
    pub const DEFAULT_PAGE_CACHE_BYTES: u64 = 32 * 1024 * 1024;

    /// Default [`SystemConfig::segment_pages`]: 256 data pages (1 MiB of
    /// compressed text at 4 KB pages) per sealed segment — small enough
    /// that a quarantined segment degrades little, large enough that
    /// per-segment metadata stays negligible.
    pub const DEFAULT_SEGMENT_PAGES: u64 = 256;

    /// Default [`SystemConfig::bitmap_buckets`]: 1024 buckets keep the
    /// per-segment sidecar at 32 KiB of presence bits for a 256-page
    /// segment while holding the collision rate low enough that positive
    /// terms still prune.
    pub const DEFAULT_BITMAP_BUCKETS: usize = 1024;

    /// Upper bound on [`SystemConfig::bitmap_buckets`]: beyond this the
    /// sidecar dwarfs the segment it describes.
    pub const MAX_BITMAP_BUCKETS: usize = 1 << 20;

    /// Validates an untrusted worker-count input against the same bound
    /// [`SystemConfig::validate`] enforces. `0` is valid — it means "one
    /// worker per modeled flash channel" (see
    /// [`SystemConfig::resolved_query_threads`]).
    ///
    /// # Errors
    ///
    /// A human-readable message when `threads` exceeds
    /// [`SystemConfig::MAX_QUERY_THREADS`].
    pub fn checked_query_threads(threads: usize) -> Result<usize, String> {
        if threads > Self::MAX_QUERY_THREADS {
            Err(format!(
                "--threads {} exceeds the {} maximum (0 = one worker per \
                 modeled flash channel)",
                threads,
                Self::MAX_QUERY_THREADS
            ))
        } else {
            Ok(threads)
        }
    }

    /// Checks the configuration for values that would be accepted silently
    /// but cannot mean anything sensible. Called by every system
    /// constructor.
    ///
    /// # Errors
    ///
    /// A human-readable message describing the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        Self::checked_query_threads(self.query_threads)?;
        self.retry.validate().map_err(|e| e.to_string())?;
        if self.segment_pages == 0 {
            return Err("segment_pages must be at least 1".into());
        }
        if self.bitmap_buckets > Self::MAX_BITMAP_BUCKETS {
            return Err(format!(
                "bitmap_buckets {} exceeds the {} maximum (0 disables \
                 segment bitmaps)",
                self.bitmap_buckets,
                Self::MAX_BITMAP_BUCKETS
            ));
        }
        Ok(())
    }

    /// The §7.4.2 configuration: "MithriLog was also configured to not use
    /// the inverted index, and scan the whole dataset for each query."
    pub fn full_scan_only() -> Self {
        SystemConfig {
            use_index: false,
            ..SystemConfig::default()
        }
    }

    /// The worker count the parallel datapath actually uses: the explicit
    /// `query_threads` when non-zero, otherwise one worker per modeled flash
    /// channel (the paper pairs each filter pipeline with a channel).
    pub fn resolved_query_threads(&self) -> usize {
        if self.query_threads == 0 {
            self.device.channels.max(1)
        } else {
            self.query_threads
        }
    }

    /// A configuration with a small index for fast unit tests.
    pub fn for_tests() -> Self {
        SystemConfig {
            index: IndexParams::small(),
            ..SystemConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prototype() {
        let c = SystemConfig::default();
        assert_eq!(c.tokenizer.word_bytes, 16);
        assert_eq!(c.filter.rows, 256);
        assert_eq!(c.filter.flag_pairs, 8);
        assert_eq!(c.lzah.word_bytes, 16);
        assert_eq!(c.device.page_bytes, 4096);
        assert!(c.use_index);
    }

    #[test]
    fn full_scan_only_disables_index() {
        assert!(!SystemConfig::full_scan_only().use_index);
    }

    #[test]
    fn query_threads_default_to_channel_count() {
        let c = SystemConfig::default();
        assert_eq!(c.query_threads, 0);
        assert_eq!(c.resolved_query_threads(), c.device.channels);
        let explicit = SystemConfig {
            query_threads: 6,
            ..SystemConfig::default()
        };
        assert_eq!(explicit.resolved_query_threads(), 6);
    }

    #[test]
    fn page_cache_defaults_on_and_can_be_disabled() {
        let c = SystemConfig::default();
        assert_eq!(c.page_cache_bytes, 32 * 1024 * 1024);
        let off = SystemConfig {
            page_cache_bytes: 0,
            ..SystemConfig::default()
        };
        assert!(off.validate().is_ok());
    }

    #[test]
    fn query_thread_bound_is_enforced() {
        assert_eq!(SystemConfig::checked_query_threads(0), Ok(0));
        assert_eq!(
            SystemConfig::checked_query_threads(SystemConfig::MAX_QUERY_THREADS),
            Ok(SystemConfig::MAX_QUERY_THREADS)
        );
        let err =
            SystemConfig::checked_query_threads(SystemConfig::MAX_QUERY_THREADS + 1).unwrap_err();
        assert!(err.contains("1024"), "{err}");
        assert!(SystemConfig::default().validate().is_ok());
        let bad = SystemConfig {
            query_threads: usize::MAX,
            ..SystemConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn segment_pages_is_validated() {
        assert_eq!(
            SystemConfig::default().segment_pages,
            SystemConfig::DEFAULT_SEGMENT_PAGES
        );
        let bad = SystemConfig {
            segment_pages: 0,
            ..SystemConfig::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("segment_pages"), "{err}");
    }

    #[test]
    fn bitmap_buckets_default_on_and_are_bounded() {
        let c = SystemConfig::default();
        assert_eq!(c.bitmap_buckets, SystemConfig::DEFAULT_BITMAP_BUCKETS);
        let off = SystemConfig {
            bitmap_buckets: 0,
            ..SystemConfig::default()
        };
        assert!(off.validate().is_ok());
        let bad = SystemConfig {
            bitmap_buckets: SystemConfig::MAX_BITMAP_BUCKETS + 1,
            ..SystemConfig::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("bitmap_buckets"), "{err}");
    }

    #[test]
    fn retry_policy_is_validated() {
        assert!(SystemConfig::default().validate().is_ok());
        let bad = SystemConfig {
            retry: RetryPolicy { max_attempts: 0 },
            ..SystemConfig::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("at least one"), "{err}");
    }
}
