//! Cross-wave decompressed-page cache.
//!
//! The service re-plans overlapping full scans on every scheduler wave;
//! without a cache each wave re-reads and re-decompresses the same pages.
//! [`PageCache`] keeps recently decompressed page text in host memory,
//! keyed by `(generation, page)` and bounded by a byte budget
//! ([`crate::SystemConfig::page_cache_bytes`]).
//!
//! **Invalidation.** The owning system bumps its generation on every ingest
//! and every recovery-on-mount, so an entry cached before either event can
//! never serve afterwards — lookups with the new generation simply miss,
//! and the stale entries age out of the LRU under the byte budget.
//!
//! **Accounting.** A hit is a physical saving, exactly like a shared read:
//! the consumer's as-if-solo ledger is charged the full page read it would
//! have issued, while the device-level ledger records `cache_hits` /
//! `cache_bytes_saved` instead of a flash access. Query outcomes and
//! modeled times are therefore byte-identical with the cache on or off.
//!
//! The cache is sharded by page id so the N scan workers of the parallel
//! datapath rarely contend on one lock; each shard runs its own strict LRU
//! over an insertion-time byte budget.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock shards. Page ids stripe `id % SHARDS`, matching how consecutive
/// pages stripe across scan workers, so a parallel scan's workers touch
/// different shards most of the time.
const SHARDS: u64 = 8;

/// One cached page: the decompressed text plus the stored (raw) page length
/// a flash read of it would have charged.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// Decompressed page text, shared with the cache.
    pub text: Arc<Vec<u8>>,
    /// Length in bytes of the raw stored page — the `bytes_read` charge a
    /// fresh read would have recorded, replayed onto as-if-solo ledgers on
    /// a hit.
    pub raw_len: u64,
}

#[derive(Debug)]
struct Entry {
    text: Arc<Vec<u8>>,
    raw_len: u64,
    /// Key into the shard's LRU order map; refreshed on every hit.
    tick: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<(u64, u64), Entry>,
    /// LRU order: tick → key. Ticks are shard-local and strictly
    /// increasing, so the first entry is always the least recently used.
    order: BTreeMap<u64, (u64, u64)>,
    bytes: u64,
    next_tick: u64,
}

impl Shard {
    fn touch(&mut self, key: (u64, u64)) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(entry) = self.map.get_mut(&key) {
            self.order.remove(&entry.tick);
            entry.tick = tick;
            self.order.insert(tick, key);
        }
    }

    fn remove(&mut self, key: (u64, u64)) {
        if let Some(entry) = self.map.remove(&key) {
            self.order.remove(&entry.tick);
            self.bytes -= entry.text.len() as u64;
        }
    }

    fn evict_to(&mut self, budget: u64) {
        while self.bytes > budget {
            let Some((_, key)) = self.order.pop_first() else {
                break;
            };
            if let Some(entry) = self.map.remove(&key) {
                self.bytes -= entry.text.len() as u64;
            }
        }
    }
}

/// A sharded, byte-bounded LRU cache of decompressed pages (module docs
/// cover keying, invalidation and ledger attribution).
#[derive(Debug)]
pub struct PageCache {
    shards: Vec<Mutex<Shard>>,
    /// Byte budget per shard (total capacity divided evenly).
    shard_budget: u64,
}

impl PageCache {
    /// A cache bounded by `capacity_bytes` of decompressed text. A zero
    /// capacity yields a cache that stores nothing (every lookup misses).
    pub fn new(capacity_bytes: u64) -> Self {
        PageCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: capacity_bytes / SHARDS,
        }
    }

    fn shard(&self, page: u64) -> MutexGuard<'_, Shard> {
        self.shards[(page % SHARDS) as usize]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up `(generation, page)`, refreshing its LRU position on a hit.
    pub fn get(&self, generation: u64, page: u64) -> Option<CachedPage> {
        let key = (generation, page);
        let mut shard = self.shard(page);
        shard.touch(key);
        shard.map.get(&key).map(|entry| CachedPage {
            text: Arc::clone(&entry.text),
            raw_len: entry.raw_len,
        })
    }

    /// Caches decompressed `text` for `(generation, page)`, where `raw_len`
    /// is the stored page length a read charged. Entries larger than a
    /// shard's byte budget are not cached.
    pub fn insert(&self, generation: u64, page: u64, text: Arc<Vec<u8>>, raw_len: u64) {
        let cost = text.len() as u64;
        if cost > self.shard_budget {
            return;
        }
        let key = (generation, page);
        let mut shard = self.shard(page);
        shard.remove(key);
        let tick = shard.next_tick;
        shard.next_tick += 1;
        shard.bytes += cost;
        shard.map.insert(
            key,
            Entry {
                text,
                raw_len,
                tick,
            },
        );
        shard.order.insert(tick, key);
        shard.evict_to(self.shard_budget);
    }

    /// Decompressed bytes currently held.
    pub fn bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .bytes
            })
            .sum()
    }

    /// Entries currently held.
    pub fn entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(bytes: &[u8]) -> Arc<Vec<u8>> {
        Arc::new(bytes.to_vec())
    }

    #[test]
    fn get_returns_what_insert_stored() {
        let cache = PageCache::new(1 << 20);
        cache.insert(1, 7, arc(b"hello page"), 4096);
        let hit = cache.get(1, 7).expect("hit");
        assert_eq!(&hit.text[..], b"hello page");
        assert_eq!(hit.raw_len, 4096);
        assert!(cache.get(1, 8).is_none());
    }

    #[test]
    fn generation_partitions_the_key_space() {
        let cache = PageCache::new(1 << 20);
        cache.insert(1, 7, arc(b"old text"), 4096);
        assert!(cache.get(2, 7).is_none(), "new generation must miss");
        cache.insert(2, 7, arc(b"new text"), 4096);
        assert_eq!(&cache.get(2, 7).unwrap().text[..], b"new text");
        assert_eq!(&cache.get(1, 7).unwrap().text[..], b"old text");
    }

    #[test]
    fn byte_budget_evicts_least_recently_used_per_shard() {
        // Shard budget = 4096/8 = 512 bytes; pages 0, 8, 16 share shard 0.
        let cache = PageCache::new(4096);
        cache.insert(1, 0, arc(&[b'a'; 300]), 4096);
        cache.insert(1, 8, arc(&[b'b'; 300]), 4096);
        assert!(cache.get(1, 0).is_none(), "page 0 was LRU and evicted");
        assert!(cache.get(1, 8).is_some());
        // A hit refreshes recency: 8 survives the next insert, not 16.
        cache.insert(1, 16, arc(&[b'c'; 300]), 4096);
        assert!(cache.get(1, 8).is_none() || cache.get(1, 16).is_some());
        assert!(cache.bytes() <= 512);
    }

    #[test]
    fn hit_refreshes_lru_position() {
        let cache = PageCache::new(4096); // 512/shard
        cache.insert(1, 0, arc(&[b'a'; 200]), 4096);
        cache.insert(1, 8, arc(&[b'b'; 200]), 4096);
        cache.get(1, 0); // 0 is now most recent
        cache.insert(1, 16, arc(&[b'c'; 200]), 4096);
        assert!(cache.get(1, 0).is_some(), "hit page must survive eviction");
        assert!(cache.get(1, 8).is_none(), "LRU page must be evicted");
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let cache = PageCache::new(0);
        cache.insert(1, 0, arc(b"text"), 4096);
        assert!(cache.get(1, 0).is_none());
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = PageCache::new(4096); // 512/shard
        cache.insert(1, 0, arc(&[0u8; 1024]), 4096);
        assert!(cache.get(1, 0).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = PageCache::new(1 << 20);
        cache.insert(1, 0, arc(&[0u8; 100]), 4096);
        cache.insert(1, 0, arc(&[0u8; 150]), 4096);
        assert_eq!(cache.bytes(), 150);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn cache_is_shareable_across_scan_workers() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<PageCache>();
    }
}
