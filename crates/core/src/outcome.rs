use std::time::Duration;

use mithrilog_storage::CostLedger;

/// Report of one ingest call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Raw bytes ingested.
    pub raw_bytes: u64,
    /// Lines ingested.
    pub lines: u64,
    /// Data pages written.
    pub data_pages: u64,
    /// Compressed bytes across the new data pages (before page padding).
    pub compressed_bytes: u64,
}

impl IngestReport {
    /// Compression ratio achieved for this batch.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// How recovery-on-mount obtained the in-memory index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexRecovery {
    /// The committed checkpoint validated and was loaded directly.
    Checkpoint,
    /// The checkpoint was absent or invalid; the index was rebuilt by
    /// rescanning every committed data page.
    Rebuilt,
}

/// Report of one recovery-on-mount ([`MithriLog::open`] /
/// [`MithriLog::open_store`]).
///
/// [`MithriLog::open`]: crate::MithriLog::open
/// [`MithriLog::open_store`]: crate::MithriLog::open_store
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence number of the superblock the mount selected.
    pub superblock_sequence: u64,
    /// The committed frontier: pages below this id survived; the store was
    /// truncated to exactly this extent.
    pub committed_pages: u64,
    /// Pages beyond the committed frontier that were discarded — the
    /// uncommitted tail a crash left behind (including any torn write).
    pub uncommitted_pages_discarded: u64,
    /// Commits reconstructed from the journal manifest chain.
    pub commits_replayed: u64,
    /// Data pages recovered across all replayed commits.
    pub data_pages_recovered: u64,
    /// Acknowledged log lines recovered (every line whose ingest call
    /// returned success before the crash).
    pub lines_recovered: u64,
    /// Estimated log lines in the discarded tail — lines that were being
    /// ingested when the crash hit and were never acknowledged.
    pub uncommitted_lines_discarded: u64,
    /// Sealed segments recovered live from the journal (seal records minus
    /// retention drops).
    pub segments_recovered: u64,
    /// Sealed segments whose journaled retention drop was honored — their
    /// pages and totals were excluded, never resurrected.
    pub segments_dropped: u64,
    /// How the in-memory index was obtained.
    pub index: IndexRecovery,
    /// Segment bitmap sidecars that failed their CRC or decode at mount
    /// and were dropped: those segments plan conservatively (full page
    /// set) until their bitmaps are rebuilt — degraded, never lying.
    pub segment_bitmaps_dropped: u64,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered to commit {}: {} committed pages ({} data pages, \
             {} lines, {} sealed segments, {} dropped) over {} commits; \
             discarded {} uncommitted pages (~{} unacknowledged lines); \
             index {}",
            self.superblock_sequence,
            self.committed_pages,
            self.data_pages_recovered,
            self.lines_recovered,
            self.segments_recovered,
            self.segments_dropped,
            self.commits_replayed,
            self.uncommitted_pages_discarded,
            self.uncommitted_lines_discarded,
            match self.index {
                IndexRecovery::Checkpoint => "loaded from checkpoint",
                IndexRecovery::Rebuilt => "rebuilt from data pages",
            }
        )?;
        if self.segment_bitmaps_dropped > 0 {
            write!(
                f,
                "; {} segment bitmap sidecar(s) dropped (corrupt)",
                self.segment_bitmaps_dropped
            )?;
        }
        Ok(())
    }
}

/// Summary of one sealed, immutable segment: its identity, extent, totals,
/// and CRC summary ([`MithriLog::sealed_segments`]).
///
/// [`MithriLog::sealed_segments`]: crate::MithriLog::sealed_segments
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSummary {
    /// Monotonic segment id (never reused, even after a retention drop).
    pub id: u64,
    /// Member data pages.
    pub pages: u64,
    /// First member data-page id (0 when the segment is empty).
    pub first_page: u64,
    /// Last member data-page id (0 when the segment is empty).
    pub last_page: u64,
    /// Whether this segment carries token-bitmap sidecars the wave planner
    /// can prune with (dropped when a scrub finds them corrupt).
    pub has_bitmaps: bool,
    /// Lines held by this segment.
    pub lines: u64,
    /// Raw bytes held by this segment.
    pub raw_bytes: u64,
    /// Compressed bytes across this segment's pages.
    pub compressed_bytes: u64,
    /// CRC32 over the segment's per-page CRC32s (little-endian, in page
    /// order) — the seal-time summary [`MithriLog::verify_segment`] checks.
    ///
    /// [`MithriLog::verify_segment`]: crate::MithriLog::verify_segment
    pub crc: u32,
}

/// Report of one retention pass ([`MithriLog::apply_retention`]): whole
/// sealed segments dropped crash-consistently, oldest first.
///
/// [`MithriLog::apply_retention`]: crate::MithriLog::apply_retention
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionReport {
    /// Sealed segments dropped by this pass.
    pub segments_dropped: u64,
    /// Sealed segments still live after the pass (the open segment is never
    /// droppable and is not counted).
    pub segments_retained: u64,
    /// Data pages retired with the dropped segments.
    pub pages_dropped: u64,
    /// Lines retired with the dropped segments.
    pub lines_dropped: u64,
    /// Raw bytes retired with the dropped segments.
    pub raw_bytes_dropped: u64,
}

impl std::fmt::Display for RetentionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dropped {} sealed segments ({} pages, {} lines, {} raw bytes); \
             {} sealed segments retained",
            self.segments_dropped,
            self.pages_dropped,
            self.lines_dropped,
            self.raw_bytes_dropped,
            self.segments_retained
        )
    }
}

/// Summary of the recovery actions a query needed, populated when storage
/// faults were encountered and survived.
///
/// A query over a corpus with corrupt or unreadable pages completes with the
/// data that could be recovered; this summary reports what was lost so the
/// caller can judge the result's completeness instead of getting nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedRead {
    /// Data pages skipped because they were corrupt, unreadable after
    /// retries, or failed to decompress, in scan order.
    pub skipped_pages: Vec<u64>,
    /// Transient read retries spent (successful recoveries — these pages
    /// were *not* skipped, just slower).
    pub retries: u64,
    /// Estimate of matching-candidate lines lost with the skipped pages,
    /// extrapolated from the line density this query actually observed on
    /// the pages it did scan (falling back to the corpus-wide average only
    /// when every planned page was skipped).
    pub estimated_missed_lines: u64,
    /// The index plan could not be read (corrupt index page) and the query
    /// fell back to a filtered full scan. Results are complete — only the
    /// pruning was lost.
    pub index_fallback: bool,
    /// Planned pages dropped from the tail of the scan because the query's
    /// page (deadline) budget ran out. The query completed with partial
    /// results instead of overrunning; the dropped pages contribute to
    /// [`DegradedRead::estimated_missed_lines`].
    pub budget_clipped: u64,
    /// Planned pages dropped from the tail of the scan because they did not
    /// fit inside the query's modeled-time deadline
    /// ([`QueryRequest::deadline`]). Like [`DegradedRead::budget_clipped`],
    /// an honest partial result: the clip is applied to the plan before
    /// scanning, so the same request replays byte-identically.
    ///
    /// [`QueryRequest::deadline`]: crate::QueryRequest::deadline
    pub deadline_clipped: u64,
}

impl DegradedRead {
    /// Whether anything at all was lost or recovered around.
    pub fn is_degraded(&self) -> bool {
        !self.skipped_pages.is_empty()
            || self.index_fallback
            || self.retries > 0
            || self.budget_clipped > 0
            || self.deadline_clipped > 0
    }

    /// Whether the result set may be incomplete (pages were skipped or
    /// clipped by a page budget or deadline).
    pub fn is_lossy(&self) -> bool {
        !self.skipped_pages.is_empty() || self.budget_clipped > 0 || self.deadline_clipped > 0
    }
}

impl std::fmt::Display for DegradedRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pages skipped (~{} lines lost), {} retries{}{}{}",
            self.skipped_pages.len(),
            self.estimated_missed_lines,
            self.retries,
            if self.budget_clipped > 0 {
                format!(", {} pages clipped by deadline budget", self.budget_clipped)
            } else {
                String::new()
            },
            if self.deadline_clipped > 0 {
                format!(", {} pages clipped by deadline", self.deadline_clipped)
            } else {
                String::new()
            },
            if self.index_fallback {
                ", index unreadable -> full scan"
            } else {
                ""
            }
        )
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Matching log lines, in storage order.
    pub lines: Vec<String>,
    /// Source data-page id of each matching line, parallel to `lines`.
    /// Within one device this is non-decreasing (lines come out in storage
    /// order); a multi-device shard layer uses it to map each line back to
    /// its global ingest position and merge shard outcomes into the exact
    /// order a single-device run would produce.
    pub line_pages: Vec<u64>,
    /// Whether the query was offloaded to the hardware filter model
    /// (`false` = software fallback after a failed compile).
    pub offloaded: bool,
    /// Whether the index pruned pages (`false` = full scan).
    pub used_index: bool,
    /// Data pages scanned.
    pub pages_scanned: u64,
    /// Decompressed bytes pushed through the filter.
    pub bytes_filtered: u64,
    /// Lines examined by the filter.
    pub lines_scanned: u64,
    /// Device access ledger for this query (index + data reads).
    pub ledger: CostLedger,
    /// Modeled device + accelerator time for this query on the prototype
    /// hardware (index chain latency + max of storage supply and filter
    /// drain).
    pub modeled_time: Duration,
    /// Wall-clock time of the software execution of the functional model.
    pub wall_time: Duration,
    /// Recovery summary: what was skipped or retried. Check
    /// [`DegradedRead::is_lossy`] before treating the result as complete.
    pub degraded: DegradedRead,
}

/// Per-query cost attribution within one shared (cross-query) scan.
///
/// Shared pages are read and decompressed once and fanned out to every
/// query that planned them; the physical cost of such a page is split
/// evenly across its sharers, so the attributions of a batch always sum to
/// the physical reads actually issued.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScanAttribution {
    /// Data pages this query planned (after any window/budget clipping).
    pub planned_pages: u64,
    /// Planned pages no other query in the batch wanted (charged in full).
    pub exclusive_pages: u64,
    /// Planned pages at least one other query also wanted.
    pub shared_pages: u64,
    /// Attributed physical page reads: one per exclusive page plus
    /// `1/share_count` per shared page. Fractional by construction.
    pub attributed_page_cost: f64,
    /// Live pages the index probe alone removed from this query's plan
    /// (pages the segment bitmaps would still have scanned).
    pub pruned_by_index: u64,
    /// Live pages the segment bitmaps alone removed (pages the index plan
    /// still demanded).
    pub pruned_by_bitmap: u64,
    /// Live pages both mechanisms independently removed.
    pub pruned_by_both: u64,
}

/// Accounting for one shared scan over a batch of concurrently admitted
/// queries ([`MithriLog::query_shared`]).
///
/// [`MithriLog::query_shared`]: crate::MithriLog::query_shared
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedScanReport {
    /// Total per-query page demand: the reads the batch would have issued
    /// run one query at a time.
    pub demanded_page_reads: u64,
    /// Distinct data pages the shared scan actually read.
    pub unique_pages_read: u64,
    /// Duplicate reads the fan-out avoided
    /// (`demanded_page_reads - unique_pages_read` when the scan completes).
    pub shared_reads_avoided: u64,
    /// Union pages served from the cross-wave decompressed-page cache
    /// instead of flash. Like `shared_reads_avoided`, a purely physical
    /// saving: per-query outcomes and ledgers are unaffected.
    pub cache_hits: u64,
    /// Raw page bytes those cache hits kept off the device.
    pub cache_bytes_saved: u64,
    /// Live pages removed from plans by the index probe alone, summed over
    /// the batch (see [`ScanAttribution::pruned_by_index`]).
    pub pages_pruned_by_index: u64,
    /// Live pages removed by the segment bitmaps alone, summed over the
    /// batch. This is the mechanism that turns negative-only full scans
    /// into partial scans.
    pub pages_pruned_by_bitmap: u64,
    /// Live pages both mechanisms independently removed, summed.
    pub pages_pruned_by_both: u64,
    /// Index node reads the batch's queries would have paid probing solo
    /// (per-query as-if-solo probe charges, summed).
    pub probe_node_visits_demanded: u64,
    /// Index node reads the deduplicated batch probe actually issued.
    pub probe_node_visits_physical: u64,
    /// Per-query attribution, in batch submission order.
    pub attribution: Vec<ScanAttribution>,
}

impl SharedScanReport {
    /// Index node reads the batched probe avoided versus solo probes.
    pub fn probe_node_visits_saved(&self) -> u64 {
        self.probe_node_visits_demanded
            .saturating_sub(self.probe_node_visits_physical)
    }
}

impl std::fmt::Display for SharedScanReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries demanded {} page reads, served by {} unique reads \
             ({} duplicates avoided, {} cache hits); planner pruned \
             {} pages by index, {} by bitmap, {} by both; batched probe \
             saved {} index node visits",
            self.attribution.len(),
            self.demanded_page_reads,
            self.unique_pages_read,
            self.shared_reads_avoided,
            self.cache_hits,
            self.pages_pruned_by_index,
            self.pages_pruned_by_bitmap,
            self.pages_pruned_by_both,
            self.probe_node_visits_saved()
        )
    }
}

/// Result of executing a batch of queries as one shared scan
/// ([`MithriLog::query_shared`]).
///
/// [`MithriLog::query_shared`]: crate::MithriLog::query_shared
#[derive(Debug, Clone)]
pub struct SharedBatchOutcome {
    /// One outcome per request, in submission order — each byte-identical
    /// to running that request alone (see `query_shared` for the exact
    /// contract).
    pub outcomes: Vec<QueryOutcome>,
    /// Shared-read accounting for the batch, reported separately from the
    /// per-query outcomes precisely because it is what concurrency changes.
    pub shared: SharedScanReport,
}

/// One segment's row in a [`PlanExplain`]: how the planner treated the
/// segment's live pages for this query.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentExplain {
    /// Segment id, or `None` for the open (unsealed) segment, which never
    /// has bitmaps and is never bitmap-pruned.
    pub segment_id: Option<u64>,
    /// Live pages the segment contributes to the scan universe.
    pub live_pages: u64,
    /// Pages of this segment the final plan will scan.
    pub planned_pages: u64,
    /// Pages removed by the index probe alone.
    pub pruned_by_index: u64,
    /// Pages removed by the segment bitmaps alone.
    pub pruned_by_bitmap: u64,
    /// Pages both mechanisms independently removed.
    pub pruned_by_both: u64,
    /// Whether the segment currently has usable bitmaps (false for the
    /// open segment, segments sealed with bitmaps disabled, and segments
    /// whose sidecar was dropped as corrupt).
    pub has_bitmaps: bool,
}

/// The planner's verdict for one query, produced without running the scan
/// ([`MithriLog::explain`]): which pages would be read and which mechanism
/// pruned the rest. Probing the index charges the device exactly as a real
/// plan would; no data page is touched.
///
/// [`MithriLog::explain`]: crate::MithriLog::explain
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanExplain {
    /// Whether the index probe produced a page-list plan.
    pub used_index: bool,
    /// Whether an index probe failed and the planner fell back to a full
    /// scan of the live pages.
    pub index_fallback: bool,
    /// Live data pages in the scan universe (all sealed segments plus the
    /// open segment, retired generations excluded).
    pub live_pages: u64,
    /// Pages the plan will scan after index and bitmap pruning and the
    /// time-window clip (before any budget/deadline clip).
    pub planned_pages: u64,
    /// Pages the plan would drop to honor the page budget.
    pub budget_clipped: u64,
    /// Further pages the plan would drop to honor the deadline.
    pub deadline_clipped: u64,
    /// Per-segment breakdown, oldest segment first, open segment last.
    pub segments: Vec<SegmentExplain>,
}

impl PlanExplain {
    /// Total pages removed by the index probe alone.
    pub fn pruned_by_index(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_index).sum()
    }

    /// Total pages removed by the segment bitmaps alone.
    pub fn pruned_by_bitmap(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_bitmap).sum()
    }

    /// Total pages both mechanisms independently removed.
    pub fn pruned_by_both(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_both).sum()
    }
}

impl std::fmt::Display for PlanExplain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan: {} of {} live pages ({}index), pruned {} by index / {} \
             by bitmap / {} by both, clipped {} by budget + {} by deadline",
            self.planned_pages,
            self.live_pages,
            if self.used_index {
                if self.index_fallback {
                    "fallback from "
                } else {
                    ""
                }
            } else {
                "no "
            },
            self.pruned_by_index(),
            self.pruned_by_bitmap(),
            self.pruned_by_both(),
            self.budget_clipped,
            self.deadline_clipped,
        )?;
        for seg in &self.segments {
            writeln!(
                f,
                "  segment {}: {}/{} pages planned, pruned {} index / {} \
                 bitmap / {} both{}",
                seg.segment_id
                    .map_or_else(|| "open".to_string(), |id| id.to_string()),
                seg.planned_pages,
                seg.live_pages,
                seg.pruned_by_index,
                seg.pruned_by_bitmap,
                seg.pruned_by_both,
                if seg.has_bitmaps { "" } else { " (no bitmaps)" },
            )?;
        }
        Ok(())
    }
}

impl QueryOutcome {
    /// Matching line count.
    pub fn match_count(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Effective throughput against the original dataset size, using the
    /// modeled hardware time (the paper's §7.4.2 metric).
    pub fn effective_throughput_gbps(&self, dataset_bytes: u64) -> f64 {
        if self.modeled_time.is_zero() {
            return f64::INFINITY;
        }
        dataset_bytes as f64 / self.modeled_time.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_ratio() {
        let r = IngestReport {
            raw_bytes: 1000,
            lines: 10,
            data_pages: 1,
            compressed_bytes: 250,
        };
        assert!((r.compression_ratio() - 4.0).abs() < 1e-12);
        let empty = IngestReport {
            raw_bytes: 0,
            lines: 0,
            data_pages: 0,
            compressed_bytes: 0,
        };
        assert_eq!(empty.compression_ratio(), 1.0);
    }

    #[test]
    fn throughput_uses_modeled_time() {
        let o = QueryOutcome {
            lines: vec![],
            line_pages: vec![],
            offloaded: true,
            used_index: true,
            pages_scanned: 0,
            bytes_filtered: 0,
            lines_scanned: 0,
            ledger: CostLedger::default(),
            modeled_time: Duration::from_millis(100),
            wall_time: Duration::ZERO,
            degraded: DegradedRead::default(),
        };
        assert!((o.effective_throughput_gbps(1_000_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_report_display_covers_both_index_paths() {
        let mut r = RecoveryReport {
            superblock_sequence: 3,
            committed_pages: 40,
            uncommitted_pages_discarded: 5,
            commits_replayed: 3,
            data_pages_recovered: 20,
            lines_recovered: 1000,
            uncommitted_lines_discarded: 12,
            segments_recovered: 2,
            segments_dropped: 1,
            segment_bitmaps_dropped: 0,
            index: IndexRecovery::Checkpoint,
        };
        let s = r.to_string();
        assert!(s.contains("commit 3"), "{s}");
        assert!(s.contains("2 sealed segments, 1 dropped"), "{s}");
        assert!(s.contains("checkpoint"), "{s}");
        assert!(!s.contains("bitmap sidecar"), "{s}");
        r.index = IndexRecovery::Rebuilt;
        assert!(r.to_string().contains("rebuilt"), "{r}");
        r.segment_bitmaps_dropped = 2;
        assert!(r.to_string().contains("2 segment bitmap sidecar"), "{r}");
    }

    #[test]
    fn retention_report_display() {
        let r = RetentionReport {
            segments_dropped: 2,
            segments_retained: 3,
            pages_dropped: 16,
            lines_dropped: 400,
            raw_bytes_dropped: 12_000,
        };
        let s = r.to_string();
        assert!(s.contains("dropped 2 sealed segments"), "{s}");
        assert!(s.contains("3 sealed segments retained"), "{s}");
    }

    #[test]
    fn degraded_read_classification() {
        let clean = DegradedRead::default();
        assert!(!clean.is_degraded() && !clean.is_lossy());
        let retried = DegradedRead {
            retries: 2,
            ..DegradedRead::default()
        };
        assert!(retried.is_degraded() && !retried.is_lossy());
        let lossy = DegradedRead {
            skipped_pages: vec![4, 9],
            estimated_missed_lines: 80,
            ..DegradedRead::default()
        };
        assert!(lossy.is_lossy());
        assert!(lossy.to_string().contains("2 pages skipped"), "{lossy}");
        let fallback = DegradedRead {
            index_fallback: true,
            ..DegradedRead::default()
        };
        assert!(fallback.is_degraded() && !fallback.is_lossy());
        assert!(fallback.to_string().contains("full scan"));
        let deadline = DegradedRead {
            deadline_clipped: 3,
            ..DegradedRead::default()
        };
        assert!(deadline.is_degraded() && deadline.is_lossy());
        assert!(
            deadline.to_string().contains("3 pages clipped by deadline"),
            "{deadline}"
        );
    }
}
