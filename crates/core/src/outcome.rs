use std::time::Duration;

use mithrilog_storage::CostLedger;

/// Report of one ingest call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Raw bytes ingested.
    pub raw_bytes: u64,
    /// Lines ingested.
    pub lines: u64,
    /// Data pages written.
    pub data_pages: u64,
    /// Compressed bytes across the new data pages (before page padding).
    pub compressed_bytes: u64,
}

impl IngestReport {
    /// Compression ratio achieved for this batch.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Matching log lines, in storage order.
    pub lines: Vec<String>,
    /// Whether the query was offloaded to the hardware filter model
    /// (`false` = software fallback after a failed compile).
    pub offloaded: bool,
    /// Whether the index pruned pages (`false` = full scan).
    pub used_index: bool,
    /// Data pages scanned.
    pub pages_scanned: u64,
    /// Decompressed bytes pushed through the filter.
    pub bytes_filtered: u64,
    /// Lines examined by the filter.
    pub lines_scanned: u64,
    /// Device access ledger for this query (index + data reads).
    pub ledger: CostLedger,
    /// Modeled device + accelerator time for this query on the prototype
    /// hardware (index chain latency + max of storage supply and filter
    /// drain).
    pub modeled_time: Duration,
    /// Wall-clock time of the software execution of the functional model.
    pub wall_time: Duration,
}

impl QueryOutcome {
    /// Matching line count.
    pub fn match_count(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Effective throughput against the original dataset size, using the
    /// modeled hardware time (the paper's §7.4.2 metric).
    pub fn effective_throughput_gbps(&self, dataset_bytes: u64) -> f64 {
        if self.modeled_time.is_zero() {
            return f64::INFINITY;
        }
        dataset_bytes as f64 / self.modeled_time.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_ratio() {
        let r = IngestReport {
            raw_bytes: 1000,
            lines: 10,
            data_pages: 1,
            compressed_bytes: 250,
        };
        assert!((r.compression_ratio() - 4.0).abs() < 1e-12);
        let empty = IngestReport {
            raw_bytes: 0,
            lines: 0,
            data_pages: 0,
            compressed_bytes: 0,
        };
        assert_eq!(empty.compression_ratio(), 1.0);
    }

    #[test]
    fn throughput_uses_modeled_time() {
        let o = QueryOutcome {
            lines: vec![],
            offloaded: true,
            used_index: true,
            pages_scanned: 0,
            bytes_filtered: 0,
            lines_scanned: 0,
            ledger: CostLedger::default(),
            modeled_time: Duration::from_millis(100),
            wall_time: Duration::ZERO,
        };
        assert!((o.effective_throughput_gbps(1_000_000_000) - 10.0).abs() < 1e-9);
    }
}
