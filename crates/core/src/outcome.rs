use std::time::Duration;

use mithrilog_storage::CostLedger;

/// Report of one ingest call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Raw bytes ingested.
    pub raw_bytes: u64,
    /// Lines ingested.
    pub lines: u64,
    /// Data pages written.
    pub data_pages: u64,
    /// Compressed bytes across the new data pages (before page padding).
    pub compressed_bytes: u64,
}

impl IngestReport {
    /// Compression ratio achieved for this batch.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// Summary of the recovery actions a query needed, populated when storage
/// faults were encountered and survived.
///
/// A query over a corpus with corrupt or unreadable pages completes with the
/// data that could be recovered; this summary reports what was lost so the
/// caller can judge the result's completeness instead of getting nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DegradedRead {
    /// Data pages skipped because they were corrupt, unreadable after
    /// retries, or failed to decompress, in scan order.
    pub skipped_pages: Vec<u64>,
    /// Transient read retries spent (successful recoveries — these pages
    /// were *not* skipped, just slower).
    pub retries: u64,
    /// Estimate of matching-candidate lines lost with the skipped pages,
    /// extrapolated from the corpus's average lines per page.
    pub estimated_missed_lines: u64,
    /// The index plan could not be read (corrupt index page) and the query
    /// fell back to a filtered full scan. Results are complete — only the
    /// pruning was lost.
    pub index_fallback: bool,
}

impl DegradedRead {
    /// Whether anything at all was lost or recovered around.
    pub fn is_degraded(&self) -> bool {
        !self.skipped_pages.is_empty() || self.index_fallback || self.retries > 0
    }

    /// Whether the result set may be incomplete (pages were skipped).
    pub fn is_lossy(&self) -> bool {
        !self.skipped_pages.is_empty()
    }
}

impl std::fmt::Display for DegradedRead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pages skipped (~{} lines lost), {} retries{}",
            self.skipped_pages.len(),
            self.estimated_missed_lines,
            self.retries,
            if self.index_fallback {
                ", index unreadable -> full scan"
            } else {
                ""
            }
        )
    }
}

/// Result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Matching log lines, in storage order.
    pub lines: Vec<String>,
    /// Whether the query was offloaded to the hardware filter model
    /// (`false` = software fallback after a failed compile).
    pub offloaded: bool,
    /// Whether the index pruned pages (`false` = full scan).
    pub used_index: bool,
    /// Data pages scanned.
    pub pages_scanned: u64,
    /// Decompressed bytes pushed through the filter.
    pub bytes_filtered: u64,
    /// Lines examined by the filter.
    pub lines_scanned: u64,
    /// Device access ledger for this query (index + data reads).
    pub ledger: CostLedger,
    /// Modeled device + accelerator time for this query on the prototype
    /// hardware (index chain latency + max of storage supply and filter
    /// drain).
    pub modeled_time: Duration,
    /// Wall-clock time of the software execution of the functional model.
    pub wall_time: Duration,
    /// Recovery summary: what was skipped or retried. Check
    /// [`DegradedRead::is_lossy`] before treating the result as complete.
    pub degraded: DegradedRead,
}

impl QueryOutcome {
    /// Matching line count.
    pub fn match_count(&self) -> u64 {
        self.lines.len() as u64
    }

    /// Effective throughput against the original dataset size, using the
    /// modeled hardware time (the paper's §7.4.2 metric).
    pub fn effective_throughput_gbps(&self, dataset_bytes: u64) -> f64 {
        if self.modeled_time.is_zero() {
            return f64::INFINITY;
        }
        dataset_bytes as f64 / self.modeled_time.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_ratio() {
        let r = IngestReport {
            raw_bytes: 1000,
            lines: 10,
            data_pages: 1,
            compressed_bytes: 250,
        };
        assert!((r.compression_ratio() - 4.0).abs() < 1e-12);
        let empty = IngestReport {
            raw_bytes: 0,
            lines: 0,
            data_pages: 0,
            compressed_bytes: 0,
        };
        assert_eq!(empty.compression_ratio(), 1.0);
    }

    #[test]
    fn throughput_uses_modeled_time() {
        let o = QueryOutcome {
            lines: vec![],
            offloaded: true,
            used_index: true,
            pages_scanned: 0,
            bytes_filtered: 0,
            lines_scanned: 0,
            ledger: CostLedger::default(),
            modeled_time: Duration::from_millis(100),
            wall_time: Duration::ZERO,
            degraded: DegradedRead::default(),
        };
        assert!((o.effective_throughput_gbps(1_000_000_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_read_classification() {
        let clean = DegradedRead::default();
        assert!(!clean.is_degraded() && !clean.is_lossy());
        let retried = DegradedRead {
            retries: 2,
            ..DegradedRead::default()
        };
        assert!(retried.is_degraded() && !retried.is_lossy());
        let lossy = DegradedRead {
            skipped_pages: vec![4, 9],
            estimated_missed_lines: 80,
            ..DegradedRead::default()
        };
        assert!(lossy.is_lossy());
        assert!(lossy.to_string().contains("2 pages skipped"), "{lossy}");
        let fallback = DegradedRead {
            index_fallback: true,
            ..DegradedRead::default()
        };
        assert!(fallback.is_degraded() && !fallback.is_lossy());
        assert!(fallback.to_string().contains("full scan"));
    }
}
