//! MithriLog: a near-storage accelerated log analytics system
//! (MICRO '21), reproduced as a functional software model plus an analytic
//! hardware timing model.
//!
//! This crate is the facade tying the substrates together into the full
//! system of the paper's Figure 2:
//!
//! * **ingest** — log text is LZAH-compressed into independently
//!   decompressible 4 KB page frames (`mithrilog-compress`), appended to
//!   the simulated SSD (`mithrilog-storage`), and indexed by the
//!   in-storage inverted index (`mithrilog-index`);
//! * **query** — a union-of-intersections query (`mithrilog-query`) is
//!   compiled onto the cuckoo-hash filter (`mithrilog-filter`); the index
//!   plans the page set; pages stream through decompression and the filter
//!   pipeline; matching lines return to the host. Every access is costed by
//!   the device performance model, and the accelerator timing model
//!   (`mithrilog-sim`) converts the work into modeled elapsed time.
//!
//! # Example
//!
//! ```
//! use mithrilog::{MithriLog, SystemConfig};
//!
//! let mut system = MithriLog::new(SystemConfig::default());
//! let log = "\
//! RAS KERNEL INFO cache parity error corrected\n\
//! RAS KERNEL FATAL data storage interrupt\n\
//! RAS APP FATAL ciod: Error loading program\n";
//! system.ingest(log.as_bytes())?;
//! let outcome = system.query_str("FATAL AND NOT ciod:")?;
//! assert_eq!(outcome.lines.len(), 1);
//! assert!(outcome.lines[0].contains("data storage interrupt"));
//! # Ok::<(), mithrilog::MithriLogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmaps;
mod cache;
mod config;
mod control;
mod error;
mod exec;
mod outcome;
mod system;

pub use cache::{CachedPage, PageCache};
pub use config::SystemConfig;
pub use control::CancelToken;
pub use error::MithriLogError;
pub use outcome::{
    DegradedRead, IndexRecovery, IngestReport, PlanExplain, QueryOutcome, RecoveryReport,
    RetentionReport, ScanAttribution, SegmentExplain, SegmentSummary, SharedBatchOutcome,
    SharedScanReport,
};
pub use system::{MithriLog, PreparedIngest, QueryRequest};
