use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::ops::Range;
use std::time::{Duration, Instant};

use mithrilog_compress::{Codec, Lzah};
use mithrilog_filter::FilterPipeline;
use mithrilog_index::{InvertedIndex, QueryPlan};
use mithrilog_query::{parse, Query};
use mithrilog_sim::{AcceleratorConfig, DatasetInputs, Throughput, ThroughputModel};
use mithrilog_storage::{
    append_commit, append_record, crc32, format_device, read_active_superblock, replay_journal,
    write_superblock_commit, CheckpointRef, CommitRecord, DropRecord, FileStore, JournalRecord,
    Link, MemStore, PageId, PageStore, SealRecord, SimSsd, Superblock,
};
use mithrilog_tokenizer::{DatapathStats, ScatterGather, Tokenizer};

use crate::bitmaps::{page_marks, PageMarks, SegmentBitmaps};
use crate::cache::PageCache;
use crate::config::SystemConfig;
use crate::error::MithriLogError;
use crate::exec::{self, page_is_skippable, CacheView, Engine, GenMap};
use crate::outcome::{
    DegradedRead, IndexRecovery, IngestReport, PlanExplain, QueryOutcome, RecoveryReport,
    RetentionReport, ScanAttribution, SegmentExplain, SegmentSummary, SharedBatchOutcome,
    SharedScanReport,
};

const CHECKPOINT_MAGIC: &[u8; 4] = b"MLCK";
const CHECKPOINT_VERSION: u32 = 2;

/// One query in a shared batch ([`MithriLog::query_shared`]): the parsed
/// query plus the per-query execution constraints a multi-tenant service
/// attaches — an optional time window and an optional page (deadline)
/// budget.
///
/// A request is a complete, self-contained description of one execution:
/// running it alone and running it inside a batch produce byte-identical
/// outcomes (see [`MithriLog::query_shared`] for the exact contract).
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// The query to execute.
    pub query: Query,
    /// Restrict the scan to the snapshot-clock interval `[t1, t2]`
    /// (see [`MithriLog::query_time_range`]).
    pub time_range: Option<(u64, u64)>,
    /// Deadline budget: at most this many planned data pages are scanned.
    /// Overruns are clipped from the tail of the plan and reported in
    /// [`DegradedRead::budget_clipped`] — a partial result instead of an
    /// unbounded scan.
    pub page_budget: Option<u64>,
    /// Modeled-time deadline. Converted into a page allowance using the
    /// device performance model (deadline ÷ modeled per-page read time) and
    /// applied to the plan *before* scanning — after `page_budget` — so the
    /// same request replays byte-identically anywhere. Clipped pages are
    /// reported in [`DegradedRead::deadline_clipped`]. `Duration::ZERO`
    /// yields an immediately clipped but well-formed partial result.
    pub deadline: Option<Duration>,
    /// Cooperative cancellation, checked at page boundaries by the scan
    /// datapath. Cancelling mid-wave stops the scan within one page per
    /// worker; the pages already scanned are charged exactly as usual.
    pub cancel: Option<crate::CancelToken>,
}

impl QueryRequest {
    /// A request with no window and no budget — exactly what
    /// [`MithriLog::query`] executes.
    pub fn new(query: Query) -> Self {
        QueryRequest {
            query,
            time_range: None,
            page_budget: None,
            deadline: None,
            cancel: None,
        }
    }

    /// Parses `text` into an unconstrained request.
    ///
    /// # Errors
    ///
    /// Returns parse errors.
    pub fn parse(text: &str) -> Result<Self, MithriLogError> {
        Ok(Self::new(parse(text)?))
    }

    /// Sets the time window.
    #[must_use]
    pub fn with_time_range(mut self, t1: u64, t2: u64) -> Self {
        self.time_range = Some((t1, t2));
        self
    }

    /// Sets the page (deadline) budget.
    #[must_use]
    pub fn with_page_budget(mut self, pages: u64) -> Self {
        self.page_budget = Some(pages);
        self
    }

    /// Sets the modeled-time deadline (see [`QueryRequest::deadline`]).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cancellation token (see [`QueryRequest::cancel`]).
    #[must_use]
    pub fn with_cancel(mut self, cancel: crate::CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

fn take_u32(bytes: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<4>()?;
    Some((u32::from_le_bytes(*head), rest))
}

fn take_u64(bytes: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = bytes.split_first_chunk::<8>()?;
    Some((u64::from_le_bytes(*head), rest))
}

fn take_section(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let (len, rest) = take_u64(bytes)?;
    let len = usize::try_from(len).ok()?;
    (rest.len() >= len).then(|| rest.split_at(len))
}

/// A complete MithriLog system: simulated accelerated SSD + index + host
/// software (paper Figure 2).
///
/// Generic over the page-store backend: [`MemStore`] by default, or a
/// [`FileStore`](mithrilog_storage::FileStore) for corpora larger than RAM
/// (see [`MithriLog::with_store`]).
#[derive(Debug)]
pub struct MithriLog<S = MemStore> {
    config: SystemConfig,
    ssd: SimSsd<S>,
    index: InvertedIndex,
    tokenizer: Tokenizer,
    /// Data pages in ingest order (index/leaf pages interleave on the same
    /// device but are tracked by the index itself).
    data_pages: Vec<PageId>,
    total_raw_bytes: u64,
    total_lines: u64,
    total_compressed_bytes: u64,
    stats: DatapathStats,
    scatter: ScatterGather,
    /// Logical clock for automatic snapshots (advances with ingested
    /// lines; callers with real timestamps use [`MithriLog::snapshot_at`]).
    logical_clock: u64,
    /// The durably committed superblock; everything the store holds beyond
    /// `superblock.committed_pages` is an uncommitted tail.
    superblock: Superblock,
    /// Work accumulated since the last commit, acknowledged only once the
    /// superblock flip lands.
    pending: PendingCommit,
    /// Cross-wave cache of decompressed data pages (`None` when
    /// `page_cache_bytes` is 0). Entries are keyed per page by the owning
    /// segment's generation (see `page_gens`), so invalidation is
    /// per-segment instead of store-wide.
    page_cache: Option<PageCache>,
    /// Sealed, immutable segments, oldest first (ids ascend in seal order).
    segments: Vec<Segment>,
    /// The single open segment new pages append into.
    open: OpenSegment,
    /// Next segment id to allocate; ids are monotonic and never reused,
    /// even after a retention drop.
    next_segment_id: u64,
    /// Next cache generation to allocate. Generations are unique across
    /// segments and across invalidation events, so a retired generation can
    /// never be observed again.
    next_generation: u64,
    /// Live page → cache generation of its owning segment. Doubles as the
    /// set of live data pages: retention removes dropped pages, so stale
    /// index postings to dropped pages are filtered at plan time.
    page_gens: HashMap<u64, u64>,
    /// Durable locations of segment bitmap sidecars, keyed by segment id.
    /// Persisted in the checkpoint; a segment with in-memory bitmaps but
    /// no ref gets its sidecar appended at the next commit.
    bitmap_refs: BTreeMap<u64, BitmapRef>,
}

/// Durable location of one segment's bitmap sidecar blob: raw device pages
/// appended before the owning commit's checkpoint, validated by byte length
/// and CRC at load time. Corruption here only costs pruning power — the
/// segment plans conservatively until its bitmaps are rebuilt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BitmapRef {
    segment_id: u64,
    first_page: u64,
    page_count: u64,
    byte_len: u64,
    crc: u32,
}

/// One query's share of a wave plan (see `MithriLog::plan_wave`): the final
/// page set (before the caller's window/budget/deadline clips), the
/// as-if-solo probe ledger, and the per-segment pruning classification.
struct PlannedQuery {
    pages: Vec<PageId>,
    plan_ledger: mithrilog_storage::CostLedger,
    used_index: bool,
    index_fallback: bool,
    segments: Vec<SegmentExplain>,
}

impl PlannedQuery {
    fn pruned_by_index(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_index).sum()
    }

    fn pruned_by_bitmap(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_bitmap).sum()
    }

    fn pruned_by_both(&self) -> u64 {
        self.segments.iter().map(|s| s.pruned_by_both).sum()
    }
}

/// A planned wave: one `PlannedQuery` per input query plus the batched
/// probe's demanded-vs-physical accounting.
struct WavePlan {
    queries: Vec<PlannedQuery>,
    probe_report: mithrilog_index::BatchProbeReport,
}

/// One sealed segment: an immutable run of data pages with its own CRC
/// summary, totals, and cache generation — the store's fault and retention
/// domain.
#[derive(Debug)]
struct Segment {
    id: u64,
    /// CRC32 over the little-endian per-page CRC32s, in page order.
    crc: u32,
    pages: Vec<PageId>,
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
    generation: u64,
    /// The pruning bitmaps frozen at seal time (`None` when bitmaps are
    /// disabled or the persisted sidecar failed validation — the planner
    /// then treats every page of the segment as alive).
    bitmaps: Option<SegmentBitmaps>,
}

/// The open segment: pages accumulate here until `segment_pages` is
/// reached, then the whole run seals. Totals are aggregates — recovery
/// reconstructs them exactly as Σcommits − Σdrops − Σactive seals.
#[derive(Debug)]
struct OpenSegment {
    pages: Vec<PageId>,
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
    generation: u64,
    /// Per-page pruning marks, parallel to `pages` (empty when bitmaps are
    /// disabled). Frozen into [`SegmentBitmaps`] at seal time; the open
    /// segment itself is never pruned.
    page_marks: Vec<PageMarks>,
}

impl OpenSegment {
    fn new(generation: u64) -> Self {
        OpenSegment {
            pages: Vec::new(),
            lines: 0,
            raw_bytes: 0,
            compressed_bytes: 0,
            generation,
            page_marks: Vec::new(),
        }
    }
}

/// Uncommitted ingest work: the delta the next journal record will describe.
#[derive(Debug, Default)]
struct PendingCommit {
    data_pages: Vec<u64>,
    lines: u64,
    raw_bytes: u64,
    compressed_bytes: u64,
    /// Segments sealed since the last commit; journaled (sequence filled
    /// in) right after the commit record.
    seals: Vec<SealRecord>,
    /// Segment ids dropped by retention since the last commit.
    drops: Vec<u64>,
}

/// The CPU-heavy half of an ingest, computed without touching the system:
/// LZAH page frames plus each frame's sorted distinct token set.
///
/// Splitting ingest into [`PreparedIngest::build`] (pure, `&config` only)
/// and [`MithriLog::apply_ingest`] (serial, `&mut self`) lets a service
/// overlap compression and tokenization of incoming text with a running
/// query wave, then apply the finished frames in one short exclusive
/// section. `MithriLog::ingest(text)` is exactly
/// `apply_ingest(&PreparedIngest::build(config, text))`, so the two paths
/// produce byte-identical stores.
#[derive(Debug)]
pub struct PreparedIngest<'a> {
    text: Cow<'a, [u8]>,
    frames: Vec<PreparedFrame>,
}

/// One compressed page frame plus everything `apply_ingest` needs to index
/// and account for it without re-tokenizing.
#[derive(Debug)]
struct PreparedFrame {
    /// The LZAH-compressed page payload.
    data: Vec<u8>,
    /// The frame's raw-text range within `PreparedIngest::text`.
    raw_range: Range<usize>,
    lines: u64,
    /// The frame's distinct tokens, sorted — the order the index inserts
    /// them in, so the device page layout matches a direct ingest exactly.
    distinct: Vec<Vec<u8>>,
    /// The page's pruning marks (`None` when bitmaps are disabled).
    /// Computed here, in the pure half, so overlapped ingest stays
    /// byte-identical to direct ingest.
    marks: Option<PageMarks>,
}

impl<'a> PreparedIngest<'a> {
    /// Compresses and tokenizes `text` into apply-ready page frames.
    ///
    /// Pure in `(config, text)`: no device or index access, so it can run
    /// on any thread while the owning system serves queries. Compression
    /// stripes across the configured worker pool with input-dependent shard
    /// boundaries, so the frame layout is byte-identical for every thread
    /// count.
    pub fn build(config: &SystemConfig, text: Cow<'a, [u8]>) -> Self {
        let shards = exec::compress_paged_striped(
            &text,
            config.lzah,
            config.device.page_bytes,
            config.resolved_query_threads(),
        );
        let tokenizer = Tokenizer::new(config.tokenizer.clone());
        let mut frames = Vec::new();
        let mut offset = 0usize;
        for frame in shards.iter().flat_map(|paged| paged.pages()) {
            let raw_range = offset..offset + frame.raw_len();
            offset += frame.raw_len();
            let slice = &text[raw_range.clone()];
            // The set is ordered so the index's node-write sequence — and
            // therefore the whole device page layout — is identical across
            // processes; seeded fault plans rely on a reproducible write
            // sequence.
            let mut distinct: BTreeSet<Vec<u8>> = BTreeSet::new();
            for line in slice.split(|b| *b == b'\n') {
                for tok in tokenizer.tokens(line) {
                    if !distinct.contains(tok) {
                        distinct.insert(tok.to_vec());
                    }
                }
            }
            let marks = if config.bitmap_buckets > 0 {
                Some(page_marks(&tokenizer, config.bitmap_buckets, slice))
            } else {
                None
            };
            frames.push(PreparedFrame {
                data: frame.data().to_vec(),
                raw_range,
                lines: frame.lines() as u64,
                distinct: distinct.into_iter().collect(),
                marks,
            });
        }
        PreparedIngest { text, frames }
    }

    /// Raw bytes of the prepared text.
    pub fn raw_bytes(&self) -> u64 {
        self.text.len() as u64
    }

    /// Number of page frames the apply step will append.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// The routing key of frame `index`: its first raw line. A multi-device
    /// shard layer hashes this to place the frame; because frames (and
    /// their keys) are a pure function of `(config, text)`, every replica
    /// derives the same placement.
    ///
    /// # Panics
    ///
    /// When `index >= frame_count()`.
    pub fn frame_key(&self, index: usize) -> &[u8] {
        let slice = &self.text[self.frames[index].raw_range.clone()];
        slice.split(|b| *b == b'\n').next().unwrap_or(slice)
    }

    /// Lines held by frame `index`.
    ///
    /// # Panics
    ///
    /// When `index >= frame_count()`.
    pub fn frame_lines(&self, index: usize) -> u64 {
        self.frames[index].lines
    }

    /// Splits the prepared frames into `shards` independent prepared
    /// ingests, sending frame `i` to `routes[i]`, preserving relative frame
    /// order within each shard. The frame payloads are reused byte-for-byte
    /// (never recompressed), so the k-th frame routed to a shard lands
    /// there exactly as it would have landed on a single device — the
    /// invariant the shard layer's order-preserving merge rests on.
    ///
    /// # Panics
    ///
    /// When `routes.len() != frame_count()` or any route is `>= shards`.
    pub fn partition(&self, routes: &[usize], shards: usize) -> Vec<PreparedIngest<'static>> {
        assert_eq!(
            routes.len(),
            self.frames.len(),
            "one route per prepared frame"
        );
        let mut parts: Vec<(Vec<u8>, Vec<PreparedFrame>)> =
            (0..shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (frame, &shard) in self.frames.iter().zip(routes) {
            let (text, frames) = &mut parts[shard];
            let start = text.len();
            text.extend_from_slice(&self.text[frame.raw_range.clone()]);
            frames.push(PreparedFrame {
                data: frame.data.clone(),
                raw_range: start..text.len(),
                lines: frame.lines,
                distinct: frame.distinct.clone(),
                marks: frame.marks.clone(),
            });
        }
        parts
            .into_iter()
            .map(|(text, frames)| PreparedIngest {
                text: Cow::Owned(text),
                frames,
            })
            .collect()
    }
}

impl MithriLog<MemStore> {
    /// Creates an empty system on an in-memory device.
    pub fn new(config: SystemConfig) -> Self {
        let store = MemStore::new(config.device.page_bytes);
        Self::with_store(store, config)
            .expect("formatting a fresh MemStore with matching page size cannot fail")
    }
}

impl MithriLog<FileStore> {
    /// Creates an empty file-backed system at `path`, formatting the store.
    ///
    /// # Errors
    ///
    /// Refuses to overwrite an existing formatted store (mount those with
    /// [`MithriLog::open`]); propagates file and formatting errors.
    pub fn create(path: &std::path::Path, config: SystemConfig) -> Result<Self, MithriLogError> {
        let store = FileStore::create(path, config.device.page_bytes)?;
        Self::with_store(store, config)
    }

    /// Mounts an existing file-backed store at `path`, running crash
    /// recovery (see [`MithriLog::open_store`]). The store's page size is
    /// discovered from its superblock and must match `config`.
    ///
    /// # Errors
    ///
    /// See [`FileStore::open`] and [`MithriLog::open_store`].
    pub fn open(
        path: &std::path::Path,
        config: SystemConfig,
    ) -> Result<(Self, RecoveryReport), MithriLogError> {
        let store = FileStore::open(path)?;
        Self::open_store(store, config)
    }
}

impl<S: PageStore> MithriLog<S> {
    /// Creates an empty system on an explicit page store (e.g. a
    /// [`FileStore`](mithrilog_storage::FileStore) for corpora larger than
    /// RAM, or a [`FaultyStore`](mithrilog_storage::FaultyStore) for fault
    /// drills), formatting it: the dual-slot superblock is written and
    /// synced before the system is usable.
    ///
    /// The store must be empty — an existing formatted store is mounted
    /// with [`MithriLog::open_store`] instead, never silently reformatted.
    ///
    /// # Errors
    ///
    /// [`MithriLogError::Config`] if the store's page size differs from the
    /// configured device page size or the store is not empty; storage
    /// errors from formatting.
    pub fn with_store(store: S, config: SystemConfig) -> Result<Self, MithriLogError> {
        config.validate().map_err(MithriLogError::Config)?;
        if store.page_bytes() != config.device.page_bytes {
            return Err(MithriLogError::Config(format!(
                "store page size ({} bytes) must match the device model ({} bytes)",
                store.page_bytes(),
                config.device.page_bytes
            )));
        }
        if store.page_count() != 0 {
            return Err(MithriLogError::Config(format!(
                "store already holds {} pages; mount it with open_store \
                 instead of reformatting",
                store.page_count()
            )));
        }
        let page_bytes = config.device.page_bytes;
        let mut ssd = SimSsd::new(store, config.device);
        ssd.set_retry_policy(config.retry)
            .map_err(|e| MithriLogError::Config(e.to_string()))?;
        let superblock = format_device(&mut ssd)?;
        Ok(MithriLog {
            ssd,
            index: InvertedIndex::with_page_bytes(config.index, page_bytes),
            tokenizer: Tokenizer::new(config.tokenizer.clone()),
            data_pages: Vec::new(),
            total_raw_bytes: 0,
            total_lines: 0,
            total_compressed_bytes: 0,
            stats: DatapathStats::new(),
            scatter: ScatterGather::new(config.tokenizer.lanes),
            logical_clock: 0,
            superblock,
            pending: PendingCommit::default(),
            page_cache: Self::build_page_cache(&config),
            segments: Vec::new(),
            open: OpenSegment::new(0),
            next_segment_id: 0,
            next_generation: 1,
            page_gens: HashMap::new(),
            bitmap_refs: BTreeMap::new(),
            config,
        })
    }

    /// Mounts an existing formatted store, running crash recovery: the
    /// active superblock is validated, the uncommitted tail beyond the
    /// committed frontier is truncated away (including any torn write a
    /// power loss left), the journal manifest chain is replayed to
    /// reconstruct the committed data pages and totals, and the index is
    /// loaded from its committed checkpoint — or rebuilt from the data
    /// pages when the checkpoint is missing or fails validation.
    ///
    /// Recovery itself commits nothing: the rebuilt in-memory state becomes
    /// durable at the next commit, and crashing again before then simply
    /// repeats the same recovery.
    ///
    /// # Errors
    ///
    /// [`MithriLogError::Storage`] when no superblock slot validates or the
    /// committed region is corrupt; [`MithriLogError::Config`] when the
    /// store's page size disagrees with `config`.
    pub fn open_store(
        store: S,
        config: SystemConfig,
    ) -> Result<(Self, RecoveryReport), MithriLogError> {
        config.validate().map_err(MithriLogError::Config)?;
        if store.page_bytes() != config.device.page_bytes {
            return Err(MithriLogError::Config(format!(
                "store page size ({} bytes) must match the device model ({} bytes)",
                store.page_bytes(),
                config.device.page_bytes
            )));
        }
        let mut ssd = SimSsd::new(store, config.device);
        ssd.set_retry_policy(config.retry)
            .map_err(|e| MithriLogError::Config(e.to_string()))?;
        let superblock = read_active_superblock(&mut ssd)?;
        if superblock.page_bytes as usize != config.device.page_bytes {
            return Err(MithriLogError::Config(format!(
                "store was formatted with {}-byte pages but the device model \
                 uses {}-byte pages",
                superblock.page_bytes, config.device.page_bytes
            )));
        }

        // Estimate the acknowledged-never lines in the tail we are about to
        // discard: any tail page that decompresses was an in-flight data
        // page. (Index/journal pages in the tail do not decompress.)
        let codec = Lzah::new(config.lzah);
        let physical = ssd.page_count();
        let mut uncommitted_lines = 0u64;
        for page in superblock.committed_pages..physical {
            if let Ok(raw) = ssd.read(PageId(page)) {
                if let Ok(text) = codec.decompress(&raw) {
                    uncommitted_lines += text
                        .split(|b| *b == b'\n')
                        .filter(|l| !l.is_empty())
                        .count() as u64;
                }
            }
        }
        ssd.truncate(superblock.committed_pages)?;

        // Replay the journal: commits rebuild the committed pages and
        // totals in ingest order; seals and drops rebuild the segment map.
        let records = replay_journal(&mut ssd, superblock.journal_head)?;
        let mut commit_pages: Vec<PageId> = Vec::new();
        let mut commits_replayed = 0u64;
        let mut total_lines = 0u64;
        let mut total_raw_bytes = 0u64;
        let mut total_compressed_bytes = 0u64;
        let mut seals: BTreeMap<u64, SealRecord> = BTreeMap::new();
        let mut drops: BTreeSet<u64> = BTreeSet::new();
        for record in records {
            match record {
                JournalRecord::Commit(commit) => {
                    commits_replayed += 1;
                    commit_pages.extend(commit.data_pages.iter().map(|&p| PageId(p)));
                    total_lines += commit.lines;
                    total_raw_bytes += commit.raw_bytes;
                    total_compressed_bytes += commit.compressed_bytes;
                }
                JournalRecord::Seal(seal) => {
                    seals.insert(seal.segment_id, seal);
                }
                JournalRecord::Drop(drop) => {
                    drops.extend(drop.segments);
                }
            }
        }

        // Dropped segments leave the store entirely: their pages and totals
        // are subtracted, so a drop that was acknowledged (the superblock
        // flipped past its record) can never resurrect.
        let mut dropped_pages: HashSet<u64> = HashSet::new();
        for id in &drops {
            let seal = seals.get(id).ok_or_else(|| {
                MithriLogError::Recovery(format!(
                    "journal drops segment {id} but no seal record describes it"
                ))
            })?;
            dropped_pages.extend(seal.pages.iter().copied());
            total_lines -= seal.lines;
            total_raw_bytes -= seal.raw_bytes;
            total_compressed_bytes -= seal.compressed_bytes;
        }
        let data_pages: Vec<PageId> = commit_pages
            .into_iter()
            .filter(|p| !dropped_pages.contains(&p.0))
            .collect();

        // Active sealed segments, oldest first; each gets a fresh cache
        // generation (a mount is an invalidation event).
        let mut next_generation = 1u64;
        let mut next_segment_id = 0u64;
        let mut page_gens: HashMap<u64, u64> = HashMap::new();
        let mut sealed_pages: HashSet<u64> = HashSet::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut sealed_totals = [0u64; 3];
        for (id, seal) in &seals {
            next_segment_id = next_segment_id.max(id + 1);
            if drops.contains(id) {
                continue;
            }
            let generation = next_generation;
            next_generation += 1;
            for p in &seal.pages {
                page_gens.insert(*p, generation);
                sealed_pages.insert(*p);
            }
            sealed_totals[0] += seal.raw_bytes;
            sealed_totals[1] += seal.lines;
            sealed_totals[2] += seal.compressed_bytes;
            segments.push(Segment {
                id: *id,
                crc: seal.crc,
                pages: seal.pages.iter().map(|&p| PageId(p)).collect(),
                lines: seal.lines,
                raw_bytes: seal.raw_bytes,
                compressed_bytes: seal.compressed_bytes,
                generation,
                bitmaps: None,
            });
        }

        // The open segment is whatever committed pages no active seal
        // claims; its totals follow exactly by subtraction.
        let open_pages: Vec<PageId> = data_pages
            .iter()
            .filter(|p| !sealed_pages.contains(&p.0))
            .copied()
            .collect();
        let open_generation = next_generation;
        next_generation += 1;
        for p in &open_pages {
            page_gens.insert(p.0, open_generation);
        }
        let open = OpenSegment {
            pages: open_pages,
            raw_bytes: total_raw_bytes - sealed_totals[0],
            lines: total_lines - sealed_totals[1],
            compressed_bytes: total_compressed_bytes - sealed_totals[2],
            generation: open_generation,
            page_marks: Vec::new(),
        };

        let restored = superblock
            .checkpoint
            .and_then(|ckpt| Self::load_checkpoint(&mut ssd, &config, &ckpt))
            .filter(|(_, _, _, _, totals)| {
                *totals == [total_raw_bytes, total_lines, total_compressed_bytes]
            });
        let index_recovery = if restored.is_some() {
            IndexRecovery::Checkpoint
        } else {
            IndexRecovery::Rebuilt
        };
        let (index, stats, scatter, mut bitmap_refs, logical_clock) = match restored {
            Some((index, stats, scatter, refs, _)) => (index, stats, scatter, refs, total_lines),
            None => (
                InvertedIndex::with_page_bytes(config.index, config.device.page_bytes),
                DatapathStats::new(),
                ScatterGather::new(config.tokenizer.lanes),
                BTreeMap::new(),
                total_lines,
            ),
        };

        // Attach persisted segment bitmaps, validating each sidecar blob:
        // a failed CRC/decode drops that segment's bitmaps (conservative
        // planning) and is reported — degraded, never lying. A mount with
        // bitmaps disabled discards the directory outright.
        let active_ids: HashSet<u64> = segments.iter().map(|s| s.id).collect();
        bitmap_refs.retain(|id, _| active_ids.contains(id));
        let mut segment_bitmaps_dropped = 0u64;
        if config.bitmap_buckets == 0 {
            bitmap_refs.clear();
        } else {
            for seg in &mut segments {
                if let Some(bref) = bitmap_refs.get(&seg.id).copied() {
                    match Self::load_segment_bitmaps(&mut ssd, &config, &bref, seg.pages.len()) {
                        Some(bitmaps) => seg.bitmaps = Some(bitmaps),
                        None => {
                            segment_bitmaps_dropped += 1;
                            bitmap_refs.remove(&seg.id);
                        }
                    }
                }
            }
        }

        let report = RecoveryReport {
            superblock_sequence: superblock.sequence,
            committed_pages: superblock.committed_pages,
            uncommitted_pages_discarded: physical - superblock.committed_pages,
            commits_replayed,
            data_pages_recovered: data_pages.len() as u64,
            lines_recovered: total_lines,
            uncommitted_lines_discarded: uncommitted_lines,
            segments_recovered: segments.len() as u64,
            segments_dropped: drops.len() as u64,
            index: index_recovery,
            segment_bitmaps_dropped,
        };

        let mut system = MithriLog {
            ssd,
            index,
            tokenizer: Tokenizer::new(config.tokenizer.clone()),
            data_pages,
            total_raw_bytes,
            total_lines,
            total_compressed_bytes,
            stats,
            scatter,
            logical_clock,
            superblock,
            pending: PendingCommit::default(),
            page_cache: Self::build_page_cache(&config),
            segments,
            open,
            next_segment_id,
            // Recovery counts as an invalidation event: every segment got a
            // fresh generation above, past anything cached before.
            next_generation,
            page_gens,
            bitmap_refs,
            config,
        };
        if report.index == IndexRecovery::Rebuilt {
            system.reindex_from_pages()?;
        } else if system.config.bitmap_buckets > 0 {
            // The open segment's marks are never persisted (it has no
            // sidecar until it seals); rebuild them from its pages so a
            // seal after this mount still freezes complete bitmaps.
            system.rebuild_open_marks()?;
        }
        Ok((system, report))
    }

    fn build_page_cache(config: &SystemConfig) -> Option<PageCache> {
        (config.page_cache_bytes > 0).then(|| PageCache::new(config.page_cache_bytes))
    }

    /// The cache view scans run against: the cache (when configured) plus
    /// the per-page generation map, so each page is keyed by its owning
    /// segment's generation.
    fn cache_view(&self) -> CacheView<'_> {
        self.page_cache
            .as_ref()
            .map(|c| (c, GenMap::PerPage(&self.page_gens)))
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Overrides the worker count for subsequent queries and ingests
    /// (`0` = one worker per modeled flash channel). Changing it never
    /// changes results — the datapath is byte-identical for every thread
    /// count — only wall-clock time.
    ///
    /// # Panics
    ///
    /// Panics if `threads` exceeds [`SystemConfig::MAX_QUERY_THREADS`];
    /// callers taking untrusted input should validate with
    /// [`SystemConfig::checked_query_threads`] first.
    pub fn set_query_threads(&mut self, threads: usize) {
        assert!(
            threads <= SystemConfig::MAX_QUERY_THREADS,
            "query_threads {} exceeds the {} maximum",
            threads,
            SystemConfig::MAX_QUERY_THREADS
        );
        self.config.query_threads = threads;
    }

    /// Total raw bytes ingested.
    pub fn raw_bytes(&self) -> u64 {
        self.total_raw_bytes
    }

    /// Total lines ingested.
    pub fn lines(&self) -> u64 {
        self.total_lines
    }

    /// Number of data pages stored.
    pub fn data_page_count(&self) -> u64 {
        self.data_pages.len() as u64
    }

    /// Overall LZAH compression ratio achieved so far.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_compressed_bytes == 0 {
            1.0
        } else {
            self.total_raw_bytes as f64 / self.total_compressed_bytes as f64
        }
    }

    /// Datapath statistics accumulated at ingest (Figure 13 inputs).
    pub fn datapath_stats(&self) -> &DatapathStats {
        &self.stats
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The simulated device, for inspection (access ledger, page counts).
    pub fn device(&self) -> &SimSsd<S> {
        &self.ssd
    }

    /// Mutable device access, for operational tooling (scrubbing,
    /// corruption drills, ledger resets). Overwriting data pages behind the
    /// system's back (via `device_mut().store_mut()`) is detected by the
    /// page checksums: affected pages are skipped by queries and reported in
    /// [`QueryOutcome::degraded`] — exactly what a corruption drill should
    /// observe. Handing out mutable access also retires every segment's
    /// page-cache generation, so a drill's overwrites can never be masked
    /// by cached pre-corruption text.
    pub fn device_mut(&mut self) -> &mut SimSsd<S> {
        self.invalidate_cache_generations();
        &mut self.ssd
    }

    /// Retires every segment's cache generation (sealed and open): each
    /// gets a fresh, never-used generation and the page map is rebuilt, so
    /// nothing cached before this call can be observed again.
    fn invalidate_cache_generations(&mut self) {
        for seg in &mut self.segments {
            seg.generation = self.next_generation;
            self.next_generation += 1;
        }
        self.open.generation = self.next_generation;
        self.next_generation += 1;
        self.page_gens.clear();
        for seg in &self.segments {
            for p in &seg.pages {
                self.page_gens.insert(p.0, seg.generation);
            }
        }
        for p in &self.open.pages {
            self.page_gens.insert(p.0, self.open.generation);
        }
    }

    /// Scans the whole device, verifying every page checksum, and returns a
    /// corruption report (see [`SimSsd::scrub`]). Pages that fail
    /// verification are quarantined: subsequent reads fail up front with
    /// zero charges until the page is rewritten.
    pub fn scrub(&mut self) -> mithrilog_storage::ScrubReport {
        let mut report = self.ssd.scrub();
        report.bitmaps_dropped += self.verify_sidecars();
        report
    }

    /// Re-validates every persisted pruning-bitmap sidecar against its
    /// checkpoint directory entry (CRC, decode, geometry). A sidecar that
    /// fails is dropped — the segment's in-memory bitmaps are cleared and
    /// its directory entry removed, so planning falls back to the
    /// conservative page set (degrade, don't lie) and the next commit
    /// persists a fresh sidecar if the bitmaps are ever rebuilt. Returns
    /// the number of sidecars dropped.
    fn verify_sidecars(&mut self) -> u64 {
        let mut dropped = 0u64;
        let refs: Vec<BitmapRef> = self.bitmap_refs.values().copied().collect();
        for bref in refs {
            let seg_pages = self
                .segments
                .iter()
                .find(|s| s.id == bref.segment_id)
                .map(|s| s.pages.len());
            let Some(seg_pages) = seg_pages else {
                // Directory entry for a segment that no longer exists;
                // defensive cleanup, not a verification failure.
                self.bitmap_refs.remove(&bref.segment_id);
                continue;
            };
            let ok =
                Self::load_segment_bitmaps(&mut self.ssd, &self.config, &bref, seg_pages).is_some();
            if !ok {
                dropped += 1;
                self.bitmap_refs.remove(&bref.segment_id);
                if let Some(seg) = self.segments.iter_mut().find(|s| s.id == bref.segment_id) {
                    seg.bitmaps = None;
                }
            }
        }
        dropped
    }

    /// Verifies one bounded slice of the device, for incremental (online)
    /// scrubbing between foreground work (see [`SimSsd::scrub_slice`]).
    /// Like [`MithriLog::scrub`], failing pages are quarantined.
    pub fn scrub_slice(&mut self, start: u64, max_pages: u64) -> mithrilog_storage::ScrubSlice {
        self.ssd.scrub_slice(start, max_pages)
    }

    /// Summaries of the sealed segments, oldest first.
    pub fn sealed_segments(&self) -> Vec<SegmentSummary> {
        self.segments
            .iter()
            .map(|s| SegmentSummary {
                id: s.id,
                pages: s.pages.len() as u64,
                first_page: s.pages.first().map_or(0, |p| p.0),
                last_page: s.pages.last().map_or(0, |p| p.0),
                has_bitmaps: s.bitmaps.is_some(),
                lines: s.lines,
                raw_bytes: s.raw_bytes,
                compressed_bytes: s.compressed_bytes,
                crc: s.crc,
            })
            .collect()
    }

    /// Number of sealed segments currently live.
    pub fn sealed_segment_count(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Data pages in the (not yet sealed) open segment.
    pub fn open_segment_pages(&self) -> u64 {
        self.open.pages.len() as u64
    }

    /// Verifies one sealed segment end to end: every member page is read
    /// back and the recomputed CRC summary compared against the seal-time
    /// one. `None` for an unknown (never sealed, or already dropped) id;
    /// `Some(false)` when any page is unreadable or the summary mismatches.
    pub fn verify_segment(&mut self, id: u64) -> Option<bool> {
        let (pages, want) = {
            let seg = self.segments.iter().find(|s| s.id == id)?;
            (seg.pages.clone(), seg.crc)
        };
        let mut bytes = Vec::with_capacity(pages.len() * 4);
        for page in &pages {
            match self.ssd.read(*page) {
                Ok(raw) => bytes.extend_from_slice(&crc32(&raw).to_le_bytes()),
                Err(_) => return Some(false),
            }
        }
        Some(crc32(&bytes) == want)
    }

    /// Scrubs exactly one sealed segment's pages (see
    /// [`SimSsd::scrub_pages`]): failing pages are quarantined, shrinking
    /// the blast radius to queries that demand this segment. `None` for an
    /// unknown id.
    pub fn scrub_segment(&mut self, id: u64) -> Option<mithrilog_storage::ScrubReport> {
        let pages: Vec<u64> = self
            .segments
            .iter()
            .find(|s| s.id == id)?
            .pages
            .iter()
            .map(|p| p.0)
            .collect();
        Some(self.ssd.scrub_pages(&pages))
    }

    /// Quarantines every page of one sealed segment — the operational
    /// response to a failed [`MithriLog::verify_segment`]. Only queries
    /// whose plans demand this segment's pages degrade (reported per query
    /// in [`DegradedRead::skipped_pages`]); everything else is untouched.
    /// Returns the number of pages quarantined, or `None` for an unknown
    /// id.
    pub fn quarantine_segment(&mut self, id: u64) -> Option<u64> {
        let pages: Vec<PageId> = self.segments.iter().find(|s| s.id == id)?.pages.clone();
        for page in &pages {
            self.ssd.quarantine_page(page.0);
        }
        Some(pages.len() as u64)
    }

    /// Drops the oldest sealed segments until at most `keep_segments`
    /// remain, crash-consistently: the drop is journaled and acknowledged
    /// by the same two-barrier commit protocol as ingest, so recovery
    /// either sees the whole drop or none of it — a dropped segment never
    /// resurrects, and a crash before the flip leaves every segment
    /// intact. The open segment is never droppable.
    ///
    /// Dropped pages leave the live-page map immediately: plans stop
    /// including them and their cache entries are unreachable. The
    /// inverted index keeps its (now stale) postings until the next
    /// rebuild — plan-time filtering makes that a pure size overhead,
    /// never a correctness issue. Like any log-structured store, the
    /// physical pages are not reclaimed by the simulated device.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the commit.
    pub fn apply_retention(
        &mut self,
        keep_segments: u64,
    ) -> Result<RetentionReport, MithriLogError> {
        let keep = usize::try_from(keep_segments).unwrap_or(usize::MAX);
        let mut report = RetentionReport::default();
        if self.segments.len() <= keep {
            report.segments_retained = self.segments.len() as u64;
            return Ok(report);
        }
        let drop_count = self.segments.len() - keep;
        let dropped: Vec<Segment> = self.segments.drain(..drop_count).collect();
        let mut dropped_pages: HashSet<u64> = HashSet::new();
        for seg in &dropped {
            report.segments_dropped += 1;
            report.pages_dropped += seg.pages.len() as u64;
            report.lines_dropped += seg.lines;
            report.raw_bytes_dropped += seg.raw_bytes;
            self.total_lines -= seg.lines;
            self.total_raw_bytes -= seg.raw_bytes;
            self.total_compressed_bytes -= seg.compressed_bytes;
            for p in &seg.pages {
                self.page_gens.remove(&p.0);
                dropped_pages.insert(p.0);
            }
            self.pending.drops.push(seg.id);
            self.bitmap_refs.remove(&seg.id);
        }
        self.data_pages.retain(|p| !dropped_pages.contains(&p.0));
        report.segments_retained = self.segments.len() as u64;
        self.commit()?;
        Ok(report)
    }

    /// The ids of the data pages, in ingest order.
    pub fn data_pages(&self) -> &[PageId] {
        &self.data_pages
    }

    /// Durable locations of the persisted segment bitmap sidecars:
    /// `(segment_id, first_page, page_count)` per sealed segment whose
    /// sidecar blob is on the device. Exposed so fault-injection tests and
    /// diagnostics can target the sidecar pages precisely.
    pub fn bitmap_sidecar_locations(&self) -> Vec<(u64, u64, u64)> {
        self.bitmap_refs
            .values()
            .map(|r| (r.segment_id, r.first_page, r.page_count))
            .collect()
    }

    /// The modeled accelerator throughput for the ingested corpus
    /// (Figure 14's per-dataset bar).
    pub fn modeled_throughput(&self) -> Throughput {
        let util = {
            let occ = self.scatter.occupancy();
            if occ.lines == 0 {
                1.0
            } else {
                occ.utilization
            }
        };
        let inputs = DatasetInputs::from_stats(&self.stats, self.compression_ratio(), util);
        ThroughputModel::new(AcceleratorConfig {
            storage_internal_gbps: self.config.device.internal_bw / 1e9,
            ..AcceleratorConfig::prototype()
        })
        .effective_throughput(&inputs)
    }

    /// Ingests a batch of log text: compress → store → index.
    ///
    /// Compression runs on the same worker pool as the query datapath (the
    /// paper compresses on ingest with the same per-pipeline hardware): the
    /// input splits at line boundaries into fixed-size shards whose
    /// boundaries depend only on the input, so the resulting page layout is
    /// byte-identical for every thread count.
    ///
    /// Pages are append-only, so an ingest never invalidates cached text of
    /// existing pages — the page cache stays warm across ingests. Once the
    /// open segment reaches [`SystemConfig::segment_pages`] pages it seals:
    /// the run becomes an immutable, CRC-summarized [`SegmentSummary`]
    /// journaled by the same commit that makes its pages durable.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn ingest(&mut self, text: &[u8]) -> Result<IngestReport, MithriLogError> {
        let prep = PreparedIngest::build(&self.config, Cow::Borrowed(text));
        self.apply_ingest(&prep)
    }

    /// Applies frames prepared by [`PreparedIngest::build`]: append → index
    /// → account → seal-check, then one journaled commit. The serial,
    /// device-touching half of an ingest; byte-identical to
    /// [`MithriLog::ingest`] of the same text.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn apply_ingest(
        &mut self,
        prep: &PreparedIngest<'_>,
    ) -> Result<IngestReport, MithriLogError> {
        let mut report = IngestReport {
            raw_bytes: 0,
            lines: 0,
            data_pages: 0,
            compressed_bytes: 0,
        };
        for frame in &prep.frames {
            let page = self.ssd.append(&frame.data)?;
            self.data_pages.push(page);
            self.pending.data_pages.push(page.0);
            self.page_gens.insert(page.0, self.open.generation);
            self.open.pages.push(page);
            if let Some(marks) = &frame.marks {
                self.open.page_marks.push(marks.clone());
            }

            self.index.insert_page_tokens(
                &mut self.ssd,
                page,
                frame.distinct.iter().map(|t| t.as_slice()),
            )?;

            // Accumulate datapath statistics for the throughput model.
            let slice = &prep.text[frame.raw_range.clone()];
            self.stats.record_text(&self.tokenizer, slice);
            self.scatter.schedule_text(&self.tokenizer, slice);

            report.raw_bytes += frame.raw_range.len() as u64;
            report.lines += frame.lines;
            report.data_pages += 1;
            report.compressed_bytes += frame.data.len() as u64;
            self.open.raw_bytes += frame.raw_range.len() as u64;
            self.open.lines += frame.lines;
            self.open.compressed_bytes += frame.data.len() as u64;

            self.logical_clock += frame.lines;
            if self.index.should_snapshot() {
                let watermark = PageId(self.ssd.page_count());
                self.index
                    .snapshot(&mut self.ssd, self.logical_clock, watermark)?;
            }
            if self.open.pages.len() as u64 >= self.config.segment_pages {
                self.seal_open();
            }
        }
        self.total_raw_bytes += report.raw_bytes;
        self.total_lines += report.lines;
        self.total_compressed_bytes += report.compressed_bytes;
        self.pending.lines += report.lines;
        self.pending.raw_bytes += report.raw_bytes;
        self.pending.compressed_bytes += report.compressed_bytes;
        self.commit()?;
        Ok(report)
    }

    /// Seals the whole open segment: the run of open pages becomes an
    /// immutable [`Segment`] with a CRC summary over its per-page CRC32s,
    /// keeping its cache generation (sealing changes nothing about the
    /// pages, so cached text stays live), and a [`SealRecord`] is queued
    /// for the next commit. A fresh open segment takes over with a new
    /// generation.
    fn seal_open(&mut self) {
        let pages = std::mem::take(&mut self.open.pages);
        let crc = self.segment_crc(&pages);
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let generation = self.open.generation;
        let marks = std::mem::take(&mut self.open.page_marks);
        // Freeze the pruning bitmaps only when every page carries marks —
        // a partially-marked run (bitmaps enabled mid-life) stays
        // conservative rather than lying about the unmarked pages.
        let bitmaps = (self.config.bitmap_buckets > 0 && marks.len() == pages.len())
            .then(|| SegmentBitmaps::build(self.config.bitmap_buckets, &marks));
        let seg = Segment {
            id,
            crc,
            pages,
            lines: std::mem::take(&mut self.open.lines),
            raw_bytes: std::mem::take(&mut self.open.raw_bytes),
            compressed_bytes: std::mem::take(&mut self.open.compressed_bytes),
            generation,
            bitmaps,
        };
        self.open = OpenSegment::new(self.next_generation);
        self.next_generation += 1;
        self.pending.seals.push(SealRecord {
            // The sealing commit's sequence is not known yet; commit()
            // stamps it when the record is journaled.
            sequence: 0,
            segment_id: seg.id,
            crc: seg.crc,
            pages: seg.pages.iter().map(|p| p.0).collect(),
            lines: seg.lines,
            raw_bytes: seg.raw_bytes,
            compressed_bytes: seg.compressed_bytes,
        });
        self.segments.push(seg);
    }

    /// The seal-time CRC summary of a page run: CRC32 over the
    /// little-endian per-page CRC32s in page order — computed from the
    /// device's checksum sidecar without re-reading data. Pages whose
    /// sidecar entry is cold (appended before the last mount) are read
    /// once; an unreadable page contributes a zero placeholder so sealing
    /// never fails — a later [`MithriLog::verify_segment`] correctly flags
    /// the segment instead.
    fn segment_crc(&mut self, pages: &[PageId]) -> u32 {
        let mut bytes = Vec::with_capacity(pages.len() * 4);
        for page in pages {
            let crc = match self.ssd.page_crc(page.0) {
                Some(c) => c,
                None => self.ssd.read(*page).map(|raw| crc32(&raw)).unwrap_or(0),
            };
            bytes.extend_from_slice(&crc.to_le_bytes());
        }
        crc32(&bytes)
    }

    /// Runs the journaled commit protocol, making everything ingested since
    /// the last commit durable:
    ///
    /// 1. seal the index pools (no later allocation may rewrite a page at
    ///    or below the new committed frontier);
    /// 2. append the index checkpoint pages;
    /// 3. append the journal manifest record for this commit;
    /// 4. **sync barrier 1** — payload durable before the superblock moves;
    /// 5. write the superblock into the inactive slot and **sync barrier
    ///    2** — the atomic flip that acknowledges the commit.
    ///
    /// A crash anywhere before barrier 2 completes leaves the previous
    /// superblock active and the whole commit in the discardable tail.
    fn commit(&mut self) -> Result<(), MithriLogError> {
        self.index.seal_storage();
        self.persist_segment_bitmaps()?;
        let blob = self.checkpoint_blob();
        let page_bytes = self.config.device.page_bytes;
        let ckpt = CheckpointRef {
            first_page: self.ssd.page_count(),
            page_count: blob.len().div_ceil(page_bytes) as u64,
            byte_len: blob.len() as u64,
            crc: crc32(&blob),
        };
        for chunk in blob.chunks(page_bytes) {
            self.ssd.append(chunk)?;
        }
        let sequence = self.superblock.sequence + 1;
        let record = CommitRecord {
            sequence,
            data_pages: std::mem::take(&mut self.pending.data_pages),
            lines: self.pending.lines,
            raw_bytes: self.pending.raw_bytes,
            compressed_bytes: self.pending.compressed_bytes,
        };
        let mut head = append_commit(&mut self.ssd, self.superblock.journal_head, &record)?;
        // Segment transitions ride the same commit: seal and drop records
        // chain behind the commit record, all under one superblock flip —
        // a crash anywhere before barrier 2 discards them together.
        for mut seal in std::mem::take(&mut self.pending.seals) {
            seal.sequence = sequence;
            head = append_record(&mut self.ssd, Some(head), &JournalRecord::Seal(seal))?;
        }
        if !self.pending.drops.is_empty() {
            let drop = DropRecord {
                sequence,
                segments: std::mem::take(&mut self.pending.drops),
            };
            head = append_record(&mut self.ssd, Some(head), &JournalRecord::Drop(drop))?;
        }
        self.ssd.sync()?; // barrier 1: payload before the flip
        let sb = Superblock {
            format_version: Superblock::FORMAT_VERSION,
            page_bytes: page_bytes as u32,
            sequence: record.sequence,
            committed_pages: self.ssd.page_count(),
            journal_head: Some(head),
            checkpoint: Some(ckpt),
        };
        write_superblock_commit(&mut self.ssd, &sb)?; // barrier 2
        self.superblock = sb;
        self.pending = PendingCommit::default();
        Ok(())
    }

    /// Appends the sidecar blob of every sealed segment whose bitmaps are
    /// not yet durable (fresh seals, or rebuilds after a dropped sidecar),
    /// recording each blob's location and CRC for the checkpoint. Runs
    /// before the checkpoint blob is built so the refs it serializes are
    /// complete; the pages ride the same commit as the seal record.
    fn persist_segment_bitmaps(&mut self) -> Result<(), MithriLogError> {
        let page_bytes = self.config.device.page_bytes;
        for seg in &self.segments {
            let Some(bitmaps) = &seg.bitmaps else {
                continue;
            };
            if self.bitmap_refs.contains_key(&seg.id) {
                continue;
            }
            let blob = bitmaps.to_bytes();
            let bref = BitmapRef {
                segment_id: seg.id,
                first_page: self.ssd.page_count(),
                page_count: blob.len().div_ceil(page_bytes) as u64,
                byte_len: blob.len() as u64,
                crc: crc32(&blob),
            };
            for chunk in blob.chunks(page_bytes) {
                self.ssd.append(chunk)?;
            }
            self.bitmap_refs.insert(seg.id, bref);
        }
        Ok(())
    }

    /// Serializes the host-side state a mount cannot reconstruct from the
    /// journal alone: the index, the datapath statistics, the scatter
    /// schedule, the segment bitmap sidecar directory, and the running
    /// totals for cross-checking.
    fn checkpoint_blob(&self) -> Vec<u8> {
        let mut blob = Vec::new();
        blob.extend_from_slice(CHECKPOINT_MAGIC);
        blob.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        blob.extend_from_slice(&self.total_raw_bytes.to_le_bytes());
        blob.extend_from_slice(&self.total_lines.to_le_bytes());
        blob.extend_from_slice(&self.total_compressed_bytes.to_le_bytes());
        for section in [
            self.index.checkpoint_bytes(),
            self.stats.to_bytes(),
            self.scatter.to_bytes(),
            self.bitmap_refs_bytes(),
        ] {
            blob.extend_from_slice(&(section.len() as u64).to_le_bytes());
            blob.extend_from_slice(&section);
        }
        blob
    }

    /// Serializes the sidecar directory: one fixed-width entry per durable
    /// segment bitmap blob, ascending by segment id.
    fn bitmap_refs_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.bitmap_refs.len() * 36);
        out.extend_from_slice(&(self.bitmap_refs.len() as u64).to_le_bytes());
        for bref in self.bitmap_refs.values() {
            out.extend_from_slice(&bref.segment_id.to_le_bytes());
            out.extend_from_slice(&bref.first_page.to_le_bytes());
            out.extend_from_slice(&bref.page_count.to_le_bytes());
            out.extend_from_slice(&bref.byte_len.to_le_bytes());
            out.extend_from_slice(&bref.crc.to_le_bytes());
        }
        out
    }

    /// Parses the sidecar directory section of a checkpoint. Entries must
    /// ascend strictly by segment id and consume the section exactly.
    fn parse_bitmap_refs(bytes: &[u8]) -> Option<BTreeMap<u64, BitmapRef>> {
        let (count, mut rest) = take_u64(bytes)?;
        let mut refs = BTreeMap::new();
        let mut last: Option<u64> = None;
        for _ in 0..count {
            if rest.len() < 36 {
                return None;
            }
            let segment_id = u64::from_le_bytes(rest[..8].try_into().ok()?);
            let first_page = u64::from_le_bytes(rest[8..16].try_into().ok()?);
            let page_count = u64::from_le_bytes(rest[16..24].try_into().ok()?);
            let byte_len = u64::from_le_bytes(rest[24..32].try_into().ok()?);
            let crc = u32::from_le_bytes(rest[32..36].try_into().ok()?);
            rest = &rest[36..];
            if last.is_some_and(|l| l >= segment_id) {
                return None;
            }
            last = Some(segment_id);
            refs.insert(
                segment_id,
                BitmapRef {
                    segment_id,
                    first_page,
                    page_count,
                    byte_len,
                    crc,
                },
            );
        }
        if !rest.is_empty() {
            return None;
        }
        Some(refs)
    }

    /// Reads and validates the checkpoint blob `ckpt` points at. Any
    /// failure — unreadable pages, CRC mismatch, malformed sections,
    /// parameter drift — returns `None` and recovery falls back to a full
    /// reindex; the checkpoint is an optimization, never a correctness
    /// dependency.
    #[allow(clippy::type_complexity)]
    fn load_checkpoint(
        ssd: &mut SimSsd<S>,
        config: &SystemConfig,
        ckpt: &CheckpointRef,
    ) -> Option<(
        InvertedIndex,
        DatapathStats,
        ScatterGather,
        BTreeMap<u64, BitmapRef>,
        [u64; 3],
    )> {
        let mut blob = Vec::with_capacity(ckpt.byte_len as usize);
        for page in ckpt.first_page..ckpt.first_page + ckpt.page_count {
            blob.extend_from_slice(&ssd.read(PageId(page)).ok()?);
        }
        if (ckpt.byte_len as usize) > blob.len() {
            return None;
        }
        blob.truncate(ckpt.byte_len as usize);
        if crc32(&blob) != ckpt.crc {
            return None;
        }
        let rest = blob.strip_prefix(CHECKPOINT_MAGIC)?;
        let (version, mut rest) = take_u32(rest)?;
        if version != CHECKPOINT_VERSION {
            return None;
        }
        let mut totals = [0u64; 3];
        for t in &mut totals {
            let (v, r) = take_u64(rest)?;
            *t = v;
            rest = r;
        }
        let (index_bytes, rest) = take_section(rest)?;
        let (stats_bytes, rest) = take_section(rest)?;
        let (scatter_bytes, rest) = take_section(rest)?;
        let (refs_bytes, rest) = take_section(rest)?;
        if !rest.is_empty() {
            return None;
        }
        let index =
            InvertedIndex::restore_checkpoint(config.index, config.device.page_bytes, index_bytes)?;
        let stats = DatapathStats::from_bytes(stats_bytes)?;
        let scatter = ScatterGather::from_bytes(scatter_bytes)?;
        if scatter.lanes() != config.tokenizer.lanes {
            return None;
        }
        let refs = Self::parse_bitmap_refs(refs_bytes)?;
        Some((index, stats, scatter, refs, totals))
    }

    /// Loads one segment's bitmap sidecar from its durable ref, validating
    /// byte length, CRC, decode, and geometry against the live segment.
    /// Any failure returns `None`: the segment plans conservatively.
    fn load_segment_bitmaps(
        ssd: &mut SimSsd<S>,
        config: &SystemConfig,
        bref: &BitmapRef,
        segment_pages: usize,
    ) -> Option<SegmentBitmaps> {
        let mut blob = Vec::with_capacity(bref.byte_len as usize);
        for page in bref.first_page..bref.first_page + bref.page_count {
            blob.extend_from_slice(&ssd.read(PageId(page)).ok()?);
        }
        if (bref.byte_len as usize) > blob.len() {
            return None;
        }
        blob.truncate(bref.byte_len as usize);
        if crc32(&blob) != bref.crc {
            return None;
        }
        let bitmaps = SegmentBitmaps::from_bytes(&blob)?;
        if bitmaps.buckets() != config.bitmap_buckets || bitmaps.pages() != segment_pages {
            return None;
        }
        Some(bitmaps)
    }

    /// Rebuilds the in-memory index (and the rest of the host-side state)
    /// by rescanning the data pages — the recovery path after a host
    /// restart, where the paper's in-memory hash table is lost and only the
    /// pages survive on the device.
    ///
    /// The device keeps its existing pages; a fresh index is constructed
    /// over them (old in-storage index nodes become garbage, as in any
    /// log-structured design). Query results before and after a rebuild are
    /// identical (covered by the recovery integration test).
    ///
    /// # Errors
    ///
    /// Propagates storage and decompression errors from the rescan.
    pub fn rebuild_index(&mut self) -> Result<(), MithriLogError> {
        self.reindex_from_pages()?;
        self.commit()
    }

    /// The reindex body shared by [`MithriLog::rebuild_index`] and the
    /// recovery fallback: rescans every data page, reconstructing the
    /// index, statistics, and totals. Does not commit.
    fn reindex_from_pages(&mut self) -> Result<(), MithriLogError> {
        let codec = Lzah::new(self.config.lzah);
        self.index =
            InvertedIndex::with_page_bytes(self.config.index, self.config.device.page_bytes);
        self.stats = DatapathStats::new();
        self.scatter = ScatterGather::new(self.config.tokenizer.lanes);
        self.total_raw_bytes = 0;
        self.total_lines = 0;
        self.total_compressed_bytes = 0;
        let buckets = self.config.bitmap_buckets;
        let mut marks_by_page: HashMap<u64, PageMarks> = HashMap::new();
        let pages = self.data_pages.clone();
        for page in pages {
            let raw = self.ssd.read(page)?;
            let text = codec.decompress(&raw)?;
            let mut distinct: BTreeSet<&[u8]> = BTreeSet::new();
            for line in text.split(|b| *b == b'\n') {
                if !line.is_empty() {
                    self.total_lines += 1;
                }
                for tok in self.tokenizer.tokens(line) {
                    distinct.insert(tok);
                }
            }
            if buckets > 0 {
                marks_by_page.insert(page.0, page_marks(&self.tokenizer, buckets, &text));
            }
            self.index
                .insert_page_tokens(&mut self.ssd, page, distinct)?;
            self.stats.record_text(&self.tokenizer, &text);
            self.scatter.schedule_text(&self.tokenizer, &text);
            self.total_raw_bytes += text.len() as u64;
            self.total_compressed_bytes += codec.frame_bytes(&raw)? as u64;
        }
        // Rebuild the pruning bitmaps from the same rescan: sealed
        // segments re-freeze deterministically (byte-identical to their
        // seal-time sidecars), the open segment gets its marks back. The
        // fresh sidecars become durable at the next commit.
        if buckets > 0 {
            for seg in &mut self.segments {
                let marks: Option<Vec<PageMarks>> = seg
                    .pages
                    .iter()
                    .map(|p| marks_by_page.get(&p.0).cloned())
                    .collect();
                seg.bitmaps = marks.map(|m| SegmentBitmaps::build(buckets, &m));
            }
            self.open.page_marks = self
                .open
                .pages
                .iter()
                .filter_map(|p| marks_by_page.get(&p.0).cloned())
                .collect();
        }
        Ok(())
    }

    /// Recomputes the open segment's per-page marks from its pages — the
    /// mount path's counterpart to the marks [`PreparedIngest::build`]
    /// accumulates during normal ingest.
    fn rebuild_open_marks(&mut self) -> Result<(), MithriLogError> {
        let codec = Lzah::new(self.config.lzah);
        let buckets = self.config.bitmap_buckets;
        let mut marks = Vec::with_capacity(self.open.pages.len());
        let pages = self.open.pages.clone();
        for page in pages {
            let raw = self.ssd.read(page)?;
            let text = codec.decompress(&raw)?;
            marks.push(page_marks(&self.tokenizer, buckets, &text));
        }
        self.open.page_marks = marks;
        Ok(())
    }

    /// Takes an explicit index snapshot with a caller-supplied timestamp.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn snapshot_at(&mut self, timestamp: u64) -> Result<(), MithriLogError> {
        let watermark = PageId(self.ssd.page_count());
        self.index.snapshot(&mut self.ssd, timestamp, watermark)?;
        self.commit()
    }

    /// Parses and executes a query.
    ///
    /// # Errors
    ///
    /// Returns parse errors, storage errors, or decompression errors.
    pub fn query_str(&mut self, query_text: &str) -> Result<QueryOutcome, MithriLogError> {
        let q = parse(query_text)?;
        self.query(&q)
    }

    /// Executes a query restricted to the time interval `[t1, t2]` using
    /// the index's snapshot watermarks (§6.3 coarse time-based indexing):
    /// the page plan is clipped to the page-id window bracketing the
    /// interval, so untouched epochs cost nothing.
    ///
    /// Timestamps use whatever clock snapshots were taken with
    /// ([`MithriLog::snapshot_at`], or the ingested-lines logical clock for
    /// automatic snapshots).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MithriLog::query`].
    pub fn query_time_range(
        &mut self,
        query: &Query,
        t1: u64,
        t2: u64,
    ) -> Result<QueryOutcome, MithriLogError> {
        let (lo, hi) = self.index.time_slice(t1, t2);
        self.query_inner(query, Some((lo, hi)))
    }

    /// Executes a query end to end: index plan → page stream →
    /// decompress → token filter → matching lines.
    ///
    /// If the query cannot be compiled onto the hardware filter (too many
    /// sets/tokens or cuckoo placement failure), it transparently falls
    /// back to software evaluation, as the paper prescribes; the outcome's
    /// `offloaded` flag records which path ran.
    ///
    /// Storage faults degrade the query instead of failing it: corrupt or
    /// persistently unreadable data pages are skipped (reported in
    /// [`QueryOutcome::degraded`] together with an estimate of the lines
    /// lost), transient read errors are retried by the device, and a corrupt
    /// *index* page downgrades the plan to a filtered full scan — complete
    /// results, just without pruning.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and non-survivable storage errors
    /// (out-of-range access, host I/O failure).
    pub fn query(&mut self, query: &Query) -> Result<QueryOutcome, MithriLogError> {
        self.query_inner(query, None)
    }

    /// Executes a batch of concurrently admitted queries as **one shared
    /// scan**: the union of the batch's page plans is read and
    /// LZAH-decompressed once per distinct page, and each page's text is
    /// fanned out to every query that planned it — the paper's single flash
    /// stream amortized across multiple pattern matchers.
    ///
    /// # Determinism contract
    ///
    /// For each request, the returned [`QueryOutcome`] is byte-identical to
    /// executing the same request alone on the same snapshot: matched
    /// lines, `offloaded`, `used_index`, `pages_scanned`, `bytes_filtered`,
    /// `lines_scanned`, the degraded-read report, and the per-query cost
    /// ledger (charged *as if solo* — every planned page in full) never
    /// depend on what else is in the batch. What concurrency changes is
    /// reported separately: the device ledger records only the physical
    /// reads (each union page once, with the avoided duplicates in
    /// [`CostLedger::shared_reads`]), and the [`SharedScanReport`] splits
    /// each shared page's cost evenly across its sharers. The one
    /// as-if-solo approximation: a transient-read episode on a shared page
    /// drains once, so retry counts mirror a solo run against a fresh
    /// fault plan, not against a device whose episodes other queries in the
    /// batch already drained.
    ///
    /// [`CostLedger::shared_reads`]: mithrilog_storage::CostLedger
    ///
    /// # Errors
    ///
    /// Propagates non-survivable storage errors (out-of-range access, host
    /// I/O failure) batch-wide; survivable faults degrade the affected
    /// queries exactly as in [`MithriLog::query`].
    pub fn query_shared(
        &mut self,
        requests: &[QueryRequest],
    ) -> Result<SharedBatchOutcome, MithriLogError> {
        let wall_start = Instant::now();
        struct Prepared {
            pages: Vec<PageId>,
            plan_ledger: mithrilog_storage::CostLedger,
            used_index: bool,
            index_fallback: bool,
            budget_clipped: u64,
            deadline_clipped: u64,
            pruned_by_index: u64,
            pruned_by_bitmap: u64,
            pruned_by_both: u64,
        }
        let queries: Vec<&Query> = requests.iter().map(|r| &r.query).collect();
        let wave = self.plan_wave(&queries)?;
        let mut prepared: Vec<Prepared> = Vec::with_capacity(requests.len());
        let mut pipelines: Vec<Option<FilterPipeline>> = Vec::with_capacity(requests.len());
        for (req, planned) in requests.iter().zip(wave.queries) {
            let window = req.time_range.map(|(t1, t2)| self.index.time_slice(t1, t2));
            let pruned_by_index = planned.pruned_by_index();
            let pruned_by_bitmap = planned.pruned_by_bitmap();
            let pruned_by_both = planned.pruned_by_both();
            let mut pages = planned.pages;
            if let Some((lo, hi)) = window {
                pages.retain(|p| lo.is_none_or(|l| *p >= l) && hi.is_none_or(|h| *p < h));
            }
            let (budget_clipped, deadline_clipped) =
                self.clip_plan(&mut pages, req.page_budget, req.deadline);
            pipelines.push(
                FilterPipeline::compile_with(
                    &req.query,
                    self.config.filter,
                    self.config.tokenizer.clone(),
                )
                .ok(),
            );
            prepared.push(Prepared {
                pages,
                plan_ledger: planned.plan_ledger,
                used_index: planned.used_index,
                index_fallback: planned.index_fallback,
                budget_clipped,
                deadline_clipped,
                pruned_by_index,
                pruned_by_bitmap,
                pruned_by_both,
            });
        }

        // Share counts over the post-clip plans drive the attribution split.
        let mut share: std::collections::HashMap<PageId, u64> = std::collections::HashMap::new();
        for prep in &prepared {
            for page in &prep.pages {
                *share.entry(*page).or_default() += 1;
            }
        }

        let engines: Vec<exec::FanQuery<'_>> = requests
            .iter()
            .zip(&pipelines)
            .zip(&prepared)
            .map(|((req, pipeline), prep)| {
                let engine = match pipeline {
                    Some(p) => Engine::Hardware(p),
                    None => Engine::Software(&req.query),
                };
                exec::FanQuery {
                    engine,
                    pages: prep.pages.clone(),
                    cancel: req.cancel.clone(),
                }
            })
            .collect();
        let fan = exec::scan_pages_fanout(
            &self.ssd,
            self.config.lzah,
            &engines,
            self.config.resolved_query_threads(),
            self.cache_view(),
        );
        self.ssd.merge_ledger(&fan.device_ledger);
        if let Some(e) = fan.error {
            return Err(e.into());
        }

        let wall_time = wall_start.elapsed();
        let mut report = SharedScanReport {
            demanded_page_reads: prepared.iter().map(|p| p.pages.len() as u64).sum(),
            unique_pages_read: share.len() as u64,
            shared_reads_avoided: fan.device_ledger.shared_reads,
            cache_hits: fan.device_ledger.cache_hits,
            cache_bytes_saved: fan.device_ledger.cache_bytes_saved,
            pages_pruned_by_index: prepared.iter().map(|p| p.pruned_by_index).sum(),
            pages_pruned_by_bitmap: prepared.iter().map(|p| p.pruned_by_bitmap).sum(),
            pages_pruned_by_both: prepared.iter().map(|p| p.pruned_by_both).sum(),
            probe_node_visits_demanded: wave.probe_report.node_visits_demanded,
            probe_node_visits_physical: wave.probe_report.node_visits_physical,
            attribution: Vec::with_capacity(requests.len()),
        };
        let mut outcomes = Vec::with_capacity(requests.len());
        for ((prep, scan), pipeline) in prepared.iter().zip(fan.queries).zip(&pipelines) {
            let mut attr = ScanAttribution {
                planned_pages: prep.pages.len() as u64,
                pruned_by_index: prep.pruned_by_index,
                pruned_by_bitmap: prep.pruned_by_bitmap,
                pruned_by_both: prep.pruned_by_both,
                ..ScanAttribution::default()
            };
            for page in &prep.pages {
                let sharers = share[page];
                if sharers <= 1 {
                    attr.exclusive_pages += 1;
                    attr.attributed_page_cost += 1.0;
                } else {
                    attr.shared_pages += 1;
                    attr.attributed_page_cost += 1.0 / sharers as f64;
                }
            }
            report.attribution.push(attr);

            let mut ledger = prep.plan_ledger;
            ledger.merge(&scan.ledger);
            let mut degraded = DegradedRead {
                skipped_pages: scan.skipped_pages,
                retries: ledger.retries,
                estimated_missed_lines: 0,
                index_fallback: prep.index_fallback,
                budget_clipped: prep.budget_clipped,
                deadline_clipped: prep.deadline_clipped,
            };
            let lost =
                degraded.skipped_pages.len() as u64 + prep.budget_clipped + prep.deadline_clipped;
            degraded.estimated_missed_lines = if lost == 0 {
                0
            } else if scan.pages_filtered > 0 {
                scan.lines_scanned.div_ceil(scan.pages_filtered) * lost
            } else {
                self.avg_lines_per_page() * lost
            };
            let modeled_time = self.model_query_time(&ledger, scan.bytes_filtered, &scan.lines);
            outcomes.push(QueryOutcome {
                lines: scan.lines,
                line_pages: scan.line_pages,
                offloaded: pipeline.is_some(),
                used_index: prep.used_index,
                pages_scanned: prep.pages.len() as u64,
                bytes_filtered: scan.bytes_filtered,
                lines_scanned: scan.lines_scanned,
                ledger,
                modeled_time,
                wall_time,
                degraded,
            });
        }
        Ok(SharedBatchOutcome {
            outcomes,
            shared: report,
        })
    }

    fn query_inner(
        &mut self,
        query: &Query,
        window: Option<(Option<PageId>, Option<PageId>)>,
    ) -> Result<QueryOutcome, MithriLogError> {
        let wall_start = Instant::now();
        let mut degraded = DegradedRead::default();

        // The solo path is a batch of one through the shared wave planner:
        // one code path decides index use, replays the as-if-solo probe
        // ledger, and applies the segment-bitmap pruning, so a query run
        // alone and the same query run inside a wave plan identically.
        let wave = self.plan_wave(std::slice::from_ref(&query))?;
        let planned = wave
            .queries
            .into_iter()
            .next()
            .expect("plan_wave returns one plan per query");
        degraded.index_fallback = planned.index_fallback;
        let used_index = planned.used_index;
        let mut pages = planned.pages;
        if let Some((lo, hi)) = window {
            pages.retain(|p| lo.is_none_or(|l| *p >= l) && hi.is_none_or(|h| *p < h));
        }

        let pipeline =
            FilterPipeline::compile_with(query, self.config.filter, self.config.tokenizer.clone());
        let offloaded = pipeline.is_ok();
        let engine = match &pipeline {
            Ok(p) => Engine::Hardware(p),
            Err(_) => Engine::Software(query),
        };

        // Planning charges: the as-if-solo probe replay ledger from the
        // wave planner (physical walk charges already sit on the device
        // ledger).
        let plan_ledger = planned.plan_ledger;

        // The parallel datapath: pages striped across the worker pool, each
        // worker running its own read → decompress → filter pipeline with a
        // private cost ledger, merged back order-preserving (see `exec`).
        let data_pages_scanned = pages.len() as u64;
        let scan = exec::scan_pages(
            &self.ssd,
            self.config.lzah,
            &engine,
            &pages,
            self.config.resolved_query_threads(),
            self.cache_view(),
            None,
        );
        // The device records only physical work (plus the cache-hit
        // counters); the query is charged as if solo below.
        self.ssd.merge_ledger(&scan.physical);
        if let Some(e) = scan.error {
            return Err(e.into());
        }
        let lines = scan.lines;
        let line_pages = scan.line_pages;
        let bytes_filtered = scan.bytes_filtered;
        let lines_scanned = scan.lines_scanned;
        degraded.skipped_pages = scan.skipped_pages;

        let mut ledger = plan_ledger;
        ledger.merge(&scan.ledger);
        degraded.retries = ledger.retries;
        // Estimate what the skipped pages cost from *this query's* observed
        // line density when at least one page was scanned; the global
        // average (which counts pages from other epochs) is only a fallback
        // for the every-planned-page-skipped case.
        let skipped = degraded.skipped_pages.len() as u64;
        degraded.estimated_missed_lines = if skipped == 0 {
            0
        } else if scan.pages_filtered > 0 {
            lines_scanned.div_ceil(scan.pages_filtered) * skipped
        } else {
            self.avg_lines_per_page() * skipped
        };
        let modeled_time = self.model_query_time(&ledger, bytes_filtered, &lines);
        Ok(QueryOutcome {
            lines,
            line_pages,
            offloaded,
            used_index,
            pages_scanned: data_pages_scanned,
            bytes_filtered,
            lines_scanned,
            ledger,
            modeled_time,
            wall_time: wall_start.elapsed(),
            degraded,
        })
    }

    /// Plans a wave of queries through one batched index probe plus the
    /// per-segment pruning bitmaps.
    ///
    /// * Every query that wants the index (per
    ///   [`MithriLog::index_probe_is_worthwhile`]) joins a single
    ///   level-wise traversal ([`InvertedIndex::probe_batch`]): shared hash
    ///   entries are walked once physically while each query's ledger is
    ///   replayed as if it probed alone, so per-query ledgers are
    ///   byte-identical to solo runs and the saved walks are credited to
    ///   the device ledger as shared reads — the same demanded-vs-physical
    ///   split the scan fan-out uses.
    /// * With [`SystemConfig::bitmap_buckets`] > 0 (and `use_index` on),
    ///   every sealed segment's frozen bitmaps classify each live page:
    ///   kept, pruned by the index plan, pruned by the bitmaps (a positive
    ///   term absent from the page, or a negated term saturating it), or
    ///   both. Bitmap pruning never skips a page that could hold a matching
    ///   line (see `crate::bitmaps`), so outcomes stay byte-identical; the
    ///   open segment and segments without bitmaps are never pruned.
    ///
    /// # Errors
    ///
    /// Propagates non-survivable probe errors; survivable (skippable) ones
    /// degrade the affected query to a full scan exactly like the solo
    /// path.
    fn plan_wave(&mut self, queries: &[&Query]) -> Result<WavePlan, MithriLogError> {
        let wants_probe: Vec<bool> = queries
            .iter()
            .map(|q| self.config.use_index && self.index_probe_is_worthwhile(q))
            .collect();
        let probing: Vec<&Query> = queries
            .iter()
            .zip(&wants_probe)
            .filter(|(_, w)| **w)
            .map(|(q, _)| *q)
            .collect();
        let (probed, probe_report) = if probing.is_empty() {
            (Vec::new(), mithrilog_index::BatchProbeReport::default())
        } else {
            self.index.probe_batch(&mut self.ssd, &probing)
        };
        // Entry walks demanded by several queries were paid once; credit
        // the difference on the device ledger as shared reads so the
        // demanded-vs-physical story stays consistent batch-wide.
        let saved = probe_report.node_visits_saved();
        if saved > 0 {
            let credit = mithrilog_storage::CostLedger {
                shared_reads: saved,
                ..Default::default()
            };
            self.ssd.merge_ledger(&credit);
        }
        let bitmaps_on = self.config.use_index && self.config.bitmap_buckets > 0;
        let mut probed_iter = probed.into_iter();
        let mut planned = Vec::with_capacity(queries.len());
        for (query, wants) in queries.iter().zip(&wants_probe) {
            let mut plan_ledger = mithrilog_storage::CostLedger::default();
            let mut index_fallback = false;
            let plan = if *wants {
                let p = probed_iter
                    .next()
                    .expect("one probed plan per probing query");
                plan_ledger = p.ledger;
                match p.plan {
                    Ok(plan) => plan,
                    // A corrupt/unreadable index page costs only the
                    // pruning: fall back to scanning everything through
                    // the filter.
                    Err(e) if page_is_skippable(&e) => {
                        index_fallback = true;
                        QueryPlan::FullScan
                    }
                    Err(e) => return Err(e.into()),
                }
            } else {
                QueryPlan::FullScan
            };
            let (mut pages, used_index): (Vec<PageId>, bool) = match &plan {
                QueryPlan::Pages(p) => (p.clone(), true),
                QueryPlan::FullScan => (self.data_pages.clone(), false),
            };
            if used_index {
                // The index may still hold postings to retention-dropped
                // pages; plans only ever scan live pages.
                pages.retain(|p| self.page_gens.contains_key(&p.0));
            }
            // Classify every live page against the index plan and the
            // segment bitmaps; the sealed + open segments partition the
            // live pages exactly.
            let index_set: Option<HashSet<u64>> =
                used_index.then(|| pages.iter().map(|p| p.0).collect());
            let mut dead: HashSet<u64> = HashSet::new();
            let mut segments: Vec<SegmentExplain> = Vec::with_capacity(self.segments.len() + 1);
            for seg in &self.segments {
                let alive = if bitmaps_on {
                    seg.bitmaps.as_ref().map(|bm| bm.alive_pages(query))
                } else {
                    None
                };
                let mut row = SegmentExplain {
                    segment_id: Some(seg.id),
                    live_pages: seg.pages.len() as u64,
                    planned_pages: 0,
                    pruned_by_index: 0,
                    pruned_by_bitmap: 0,
                    pruned_by_both: 0,
                    has_bitmaps: seg.bitmaps.is_some(),
                };
                for (i, p) in seg.pages.iter().enumerate() {
                    let in_index = index_set.as_ref().is_none_or(|s| s.contains(&p.0));
                    let bitmap_alive = alive.as_ref().is_none_or(|a| a.get(i));
                    if !bitmap_alive {
                        dead.insert(p.0);
                    }
                    match (in_index, bitmap_alive) {
                        (true, true) => row.planned_pages += 1,
                        (true, false) => row.pruned_by_bitmap += 1,
                        (false, true) => row.pruned_by_index += 1,
                        (false, false) => row.pruned_by_both += 1,
                    }
                }
                segments.push(row);
            }
            let mut open_row = SegmentExplain {
                segment_id: None,
                live_pages: self.open.pages.len() as u64,
                planned_pages: 0,
                pruned_by_index: 0,
                pruned_by_bitmap: 0,
                pruned_by_both: 0,
                has_bitmaps: false,
            };
            for p in &self.open.pages {
                if index_set.as_ref().is_none_or(|s| s.contains(&p.0)) {
                    open_row.planned_pages += 1;
                } else {
                    open_row.pruned_by_index += 1;
                }
            }
            segments.push(open_row);
            if !dead.is_empty() {
                pages.retain(|p| !dead.contains(&p.0));
            }
            planned.push(PlannedQuery {
                pages,
                plan_ledger,
                used_index,
                index_fallback,
                segments,
            });
        }
        Ok(WavePlan {
            queries: planned,
            probe_report,
        })
    }

    /// Applies the deadline clips to a planned page list — the page budget
    /// first, then the modeled-time deadline — returning
    /// `(budget_clipped, deadline_clipped)`. The deadline clip runs after
    /// the budget clip: the deadline is converted into a page allowance
    /// with the device performance model, so the clip depends only on the
    /// request and the model — the same request replays byte-identically
    /// anywhere.
    fn clip_plan(
        &self,
        pages: &mut Vec<PageId>,
        page_budget: Option<u64>,
        deadline: Option<Duration>,
    ) -> (u64, u64) {
        let mut budget_clipped = 0u64;
        if let Some(budget) = page_budget {
            let keep = usize::try_from(budget)
                .unwrap_or(usize::MAX)
                .min(pages.len());
            budget_clipped = (pages.len() - keep) as u64;
            pages.truncate(keep);
        }
        let mut deadline_clipped = 0u64;
        if let Some(deadline) = deadline {
            let keep = usize::try_from(self.deadline_page_allowance(deadline))
                .unwrap_or(usize::MAX)
                .min(pages.len());
            deadline_clipped = (pages.len() - keep) as u64;
            pages.truncate(keep);
        }
        (budget_clipped, deadline_clipped)
    }

    /// Explains how one request would be planned — index decision, batched
    /// probe, bitmap pruning, window and deadline clips — without scanning
    /// a single data page.
    ///
    /// The probe itself runs for real (and is charged to the device ledger
    /// honestly), because the plan *is* its result; the data-page scan is
    /// what's skipped. Per-segment rows classify every live page; the
    /// pruning counts are taken before the window/budget/deadline clips,
    /// which only shorten the final plan
    /// ([`PlanExplain::planned_pages`]).
    ///
    /// # Errors
    ///
    /// Propagates non-survivable storage errors from the probe, exactly
    /// like [`MithriLog::query`].
    pub fn explain(&mut self, req: &QueryRequest) -> Result<PlanExplain, MithriLogError> {
        let wave = self.plan_wave(std::slice::from_ref(&&req.query))?;
        let planned = wave
            .queries
            .into_iter()
            .next()
            .expect("plan_wave returns one plan per query");
        let window = req.time_range.map(|(t1, t2)| self.index.time_slice(t1, t2));
        let mut pages = planned.pages;
        if let Some((lo, hi)) = window {
            pages.retain(|p| lo.is_none_or(|l| *p >= l) && hi.is_none_or(|h| *p < h));
        }
        let (budget_clipped, deadline_clipped) =
            self.clip_plan(&mut pages, req.page_budget, req.deadline);
        Ok(PlanExplain {
            used_index: planned.used_index,
            index_fallback: planned.index_fallback,
            live_pages: self.data_pages.len() as u64,
            planned_pages: pages.len() as u64,
            budget_clipped,
            deadline_clipped,
            segments: planned.segments,
        })
    }

    /// How many data pages a modeled-time deadline affords: the deadline
    /// divided by the modeled per-page internal read time. A pure function
    /// of the deadline and the device model — never of wall-clock time or
    /// load — so deadline-clipped plans replay byte-identically anywhere. A
    /// zero per-page time (a degenerate model) means the deadline never
    /// binds.
    fn deadline_page_allowance(&self, deadline: Duration) -> u64 {
        let per_page = self.config.device.parallel_read_time(1, Link::Internal);
        if per_page.is_zero() {
            return u64::MAX;
        }
        u64::try_from(deadline.as_nanos() / per_page.as_nanos()).unwrap_or(u64::MAX)
    }

    /// Average ingested lines per data page, rounded up — the extrapolation
    /// basis for estimating what a skipped page cost.
    fn avg_lines_per_page(&self) -> u64 {
        let pages = self.data_pages.len() as u64;
        if pages == 0 {
            0
        } else {
            self.total_lines.div_ceil(pages)
        }
    }

    /// Cost-based planner gate: probing the index pays latency-exposed root
    /// visits and leaf-node reads for *every* positive token, while a full
    /// scan streams data pages at internal bandwidth. Using only the
    /// index's in-memory counters (no storage access), skip the probe when
    /// its modeled cost already exceeds the full scan — which happens for
    /// broad multi-template unions whose page sets cover most of the corpus
    /// anyway (§7.4.2 shows full scans are cheap for MithriLog).
    fn index_probe_is_worthwhile(&self, query: &Query) -> bool {
        let model = &self.config.device;
        let total_pages = self.data_pages.len() as u64;
        if total_pages == 0 {
            return true; // nothing to scan either way
        }
        // One dependent visit stalls the stream for latency × bandwidth
        // worth of pages.
        let visit_page_equiv = (model.read_latency.as_secs_f64() * model.internal_bw
            / model.page_bytes as f64)
            .max(1.0);
        let mut planned_cost = 0.0;
        for set in query.sets() {
            let probes = self.index.probe_selection(set);
            if probes.is_empty() {
                // A negative-only set forces a full scan regardless.
                return false;
            }
            let mut set_min = u64::MAX;
            for token in probes {
                let est = self.index.estimated_pages(token.as_bytes());
                let (roots, leaves) = self.index.estimated_lookup_reads(token.as_bytes());
                planned_cost += roots as f64 * visit_page_equiv + leaves as f64;
                set_min = set_min.min(est);
            }
            planned_cost += set_min as f64;
        }
        planned_cost < total_pages as f64
    }

    /// Modeled prototype time for one query: the index's latency-bound root
    /// chain, then the pipelined page stream (storage supply overlapped
    /// with accelerator drain), then the result transfer to host over PCIe.
    fn model_query_time(
        &self,
        ledger: &mithrilog_storage::CostLedger,
        bytes_filtered: u64,
        lines: &[String],
    ) -> Duration {
        let model = &self.config.device;
        let chain = model.dependent_chain_time(ledger.dependent_visits);
        let bulk_pages = ledger.pages_read.saturating_sub(ledger.dependent_visits);
        let supply = model.parallel_read_time(bulk_pages, Link::Internal);
        let accel_gbps = self.modeled_throughput().total_gbps.max(1e-9);
        let drain = Duration::from_secs_f64(bytes_filtered as f64 / (accel_gbps * 1e9));
        let result_bytes: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
        let host = model.stream_time(result_bytes, Link::External);
        chain + supply.max(drain) + host
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading /g/g24/user/program\n\
pbs_mom: scan_for_exiting, job 4161 task 1 terminated\n\
RAS KERNEL INFO generating core.2275\n";

    fn system_with(log: &str) -> MithriLog {
        let mut s = MithriLog::new(SystemConfig::for_tests());
        s.ingest(log.as_bytes()).unwrap();
        s
    }

    #[test]
    fn ingest_reports_counts_and_compression() {
        let mut s = MithriLog::new(SystemConfig::for_tests());
        let big: String = LOG.repeat(100);
        let r = s.ingest(big.as_bytes()).unwrap();
        assert_eq!(r.raw_bytes, big.len() as u64);
        assert_eq!(r.lines, 500);
        assert!(r.data_pages >= 1);
        assert!(r.compression_ratio() > 2.0);
        assert_eq!(s.lines(), 500);
        assert_eq!(s.raw_bytes(), big.len() as u64);
    }

    #[test]
    fn simple_query_end_to_end() {
        let mut s = system_with(LOG);
        let o = s.query_str("FATAL").unwrap();
        assert_eq!(o.match_count(), 2);
        assert!(o.offloaded);
        assert!(o.lines.iter().all(|l| l.contains("FATAL")));
    }

    #[test]
    fn negation_query_end_to_end() {
        let mut s = system_with(LOG);
        let o = s.query_str("FATAL AND NOT ciod:").unwrap();
        assert_eq!(o.match_count(), 1);
        assert!(o.lines[0].contains("data storage interrupt"));
    }

    #[test]
    fn results_agree_with_reference_on_larger_corpus() {
        let big: String = LOG.repeat(200);
        let mut s = system_with(&big);
        for qs in [
            "KERNEL AND INFO",
            "pbs_mom: OR ciod:",
            "RAS AND NOT FATAL",
            "NOT RAS",
        ] {
            let o = s.query_str(qs).unwrap();
            let q = parse(qs).unwrap();
            let want = big.lines().filter(|l| q.matches_line(l)).count() as u64;
            assert_eq!(o.match_count(), want, "query {qs:?}");
        }
    }

    #[test]
    fn index_prunes_pages_for_selective_queries() {
        // Many pages, but the rare token lives in only a few. Uses the
        // default-size index: the tiny test index saturates its 256 entries
        // on this corpus's thousands of distinct tokens and stops pruning.
        let mut text = String::new();
        for i in 0..3000 {
            if i == 1500 {
                text.push_str("unique-needle-token appears here\n");
            }
            text.push_str(&format!("filler line number {i} with routine content\n"));
        }
        let mut s = MithriLog::new(SystemConfig::default());
        s.ingest(text.as_bytes()).unwrap();
        assert!(s.data_page_count() > 5);
        let o = s.query_str("unique-needle-token").unwrap();
        assert_eq!(o.match_count(), 1);
        assert!(o.used_index);
        assert!(
            o.pages_scanned < s.data_page_count() / 2,
            "index should prune: scanned {} of {}",
            o.pages_scanned,
            s.data_page_count()
        );
    }

    #[test]
    fn negative_only_query_full_scans_but_is_correct() {
        let mut s = system_with(LOG);
        let o = s.query_str("NOT RAS").unwrap();
        assert!(!o.used_index);
        assert_eq!(o.match_count(), 1);
        assert!(o.lines[0].starts_with("pbs_mom:"));
    }

    #[test]
    fn full_scan_config_never_uses_index() {
        let mut s = MithriLog::new(SystemConfig {
            use_index: false,
            ..SystemConfig::for_tests()
        });
        s.ingest(LOG.repeat(50).as_bytes()).unwrap();
        let o = s.query_str("FATAL").unwrap();
        assert!(!o.used_index);
        assert_eq!(o.lines_scanned, 250);
    }

    #[test]
    fn oversized_query_falls_back_to_software() {
        let mut s = system_with(LOG);
        // 9 OR-terms exceed the 8 flag pairs.
        let q = Query::any_of((0..9).map(|i| format!("t{i}")).collect::<Vec<_>>())
            .or(Query::all_of(["FATAL"]));
        let o = s.query(&q).unwrap();
        assert!(!o.offloaded, "10 sets cannot compile onto 8 flag pairs");
        assert_eq!(o.match_count(), 2, "software fallback is still correct");
    }

    #[test]
    fn modeled_time_is_positive_and_scales_with_work() {
        let mut s = system_with(&LOG.repeat(500));
        let selective = s.query_str("nonexistent-token-xyz").unwrap();
        let full = s.query_str("NOT nonexistent-token-xyz").unwrap();
        assert!(full.modeled_time > selective.modeled_time);
        assert!(full.modeled_time > Duration::ZERO);
    }

    #[test]
    fn modeled_throughput_lands_in_paper_band() {
        let mut s = system_with(&LOG.repeat(2000));
        let t = s.modeled_throughput();
        assert!(
            t.total_gbps > 8.0 && t.total_gbps <= 12.8,
            "modeled {:.2} GB/s ({})",
            t.total_gbps,
            t.bound_by
        );
        let _ = s.query_str("RAS").unwrap();
    }

    #[test]
    fn snapshots_happen_automatically() {
        let mut s = MithriLog::new(SystemConfig {
            index: mithrilog_index::IndexParams {
                snapshot_leaf_pages: 1,
                ..mithrilog_index::IndexParams::small()
            },
            ..SystemConfig::for_tests()
        });
        s.ingest(LOG.repeat(400).as_bytes()).unwrap();
        assert!(!s.index().snapshots().is_empty());
        // Queries still work after snapshots.
        let o = s.query_str("FATAL AND NOT ciod:").unwrap();
        assert_eq!(o.match_count(), 400);
    }

    #[test]
    fn multiple_ingest_batches_accumulate() {
        let mut s = MithriLog::new(SystemConfig::for_tests());
        s.ingest(b"alpha event one\n").unwrap();
        s.ingest(b"beta event two\n").unwrap();
        let o = s.query_str("event").unwrap();
        assert_eq!(o.match_count(), 2);
        assert_eq!(s.lines(), 2);
    }

    #[test]
    fn time_range_query_clips_to_snapshot_windows() {
        let mut s = MithriLog::new(SystemConfig::for_tests());
        // "Day 1": only INFO lines; snapshot; "day 2": only FATAL lines.
        s.ingest(
            "RAS KERNEL INFO cache parity error corrected\n"
                .repeat(200)
                .as_bytes(),
        )
        .unwrap();
        s.snapshot_at(100).unwrap();
        s.ingest(
            "RAS KERNEL FATAL data storage interrupt\n"
                .repeat(200)
                .as_bytes(),
        )
        .unwrap();
        s.snapshot_at(200).unwrap();

        let q = parse("RAS").unwrap();
        // Whole history: both days.
        assert_eq!(s.query(&q).unwrap().match_count(), 400);
        // Day 1 only.
        let day1 = s.query_time_range(&q, 0, 100).unwrap();
        assert_eq!(day1.match_count(), 200);
        assert!(day1.lines.iter().all(|l| l.contains("INFO")));
        // Day 2 only.
        let day2 = s.query_time_range(&q, 101, 250).unwrap();
        assert_eq!(day2.match_count(), 200);
        assert!(day2.lines.iter().all(|l| l.contains("FATAL")));
        // Interval after all snapshots: unbounded above, still day 2 data.
        let tail = s.query_time_range(&q, 201, 999).unwrap();
        assert_eq!(tail.match_count(), 0, "no data ingested after t=200");
    }

    #[test]
    fn planner_gate_skips_index_for_broad_unions() {
        // A union of hot tokens that appear on essentially every page: the
        // index probe would pay chain latency for no pruning, so the
        // cost-based gate must choose a full scan.
        let mut s = system_with(&LOG.repeat(500));
        let broad = Query::any_of(["RAS", "KERNEL", "FATAL", "INFO", "pbs_mom:"]);
        let o = s.query(&broad).unwrap();
        assert!(!o.used_index, "broad union should full-scan");
        // A needle token still goes through the index.
        let needle = s.query_str("nonexistent-needle-xyz").unwrap();
        assert!(needle.used_index);
        assert_eq!(needle.pages_scanned, 0);
    }

    #[test]
    fn shared_batch_is_byte_identical_to_solo_runs() {
        let mut s = system_with(&LOG.repeat(300));
        let requests = vec![
            QueryRequest::parse("FATAL").unwrap(),
            QueryRequest::parse("KERNEL AND INFO").unwrap(),
            QueryRequest::parse("pbs_mom: OR ciod:").unwrap(),
        ];
        let solo: Vec<QueryOutcome> = requests
            .iter()
            .map(|r| s.query(&r.query).unwrap())
            .collect();
        let batch = s.query_shared(&requests).unwrap();
        assert_eq!(batch.outcomes.len(), 3);
        for (got, want) in batch.outcomes.iter().zip(&solo) {
            assert_eq!(got.lines, want.lines);
            assert_eq!(got.offloaded, want.offloaded);
            assert_eq!(got.used_index, want.used_index);
            assert_eq!(got.pages_scanned, want.pages_scanned);
            assert_eq!(got.bytes_filtered, want.bytes_filtered);
            assert_eq!(got.lines_scanned, want.lines_scanned);
            assert_eq!(got.ledger, want.ledger);
            assert_eq!(got.degraded, want.degraded);
        }
        // Full-scan-heavy batch: the shared scan reads each page once.
        assert!(batch.shared.demanded_page_reads > batch.shared.unique_pages_read);
        assert_eq!(
            batch.shared.shared_reads_avoided,
            batch.shared.demanded_page_reads - batch.shared.unique_pages_read
        );
        // Attribution sums back to the physical reads.
        let attributed: f64 = batch
            .shared
            .attribution
            .iter()
            .map(|a| a.attributed_page_cost)
            .sum();
        assert!((attributed - batch.shared.unique_pages_read as f64).abs() < 1e-9);
    }

    #[test]
    fn page_budget_clips_deterministically() {
        let mut s = system_with(&LOG.repeat(300));
        let pages = s.data_page_count();
        assert!(pages > 3, "need several pages");
        let req = QueryRequest::parse("RAS").unwrap().with_page_budget(2);
        let clipped = s.query_shared(std::slice::from_ref(&req)).unwrap();
        let o = &clipped.outcomes[0];
        assert_eq!(o.pages_scanned, 2);
        assert_eq!(o.degraded.budget_clipped, pages - 2);
        assert!(o.degraded.is_lossy());
        assert!(o.degraded.estimated_missed_lines > 0);
        // Deterministic: the same budgeted request repeats byte-identically.
        let again = s.query_shared(std::slice::from_ref(&req)).unwrap();
        assert_eq!(again.outcomes[0].lines, o.lines);
        assert_eq!(again.outcomes[0].degraded, o.degraded);
    }

    #[test]
    fn deadline_clips_deterministically_and_reports_honestly() {
        let mut s = system_with(&LOG.repeat(300));
        let pages = s.data_page_count();
        assert!(pages > 3, "need several pages");
        // A deadline worth exactly two modeled page reads.
        let per_page = s.config().device.parallel_read_time(1, Link::Internal);
        assert!(!per_page.is_zero());
        let req = QueryRequest::parse("RAS")
            .unwrap()
            .with_deadline(per_page * 2);
        let clipped = s.query_shared(std::slice::from_ref(&req)).unwrap();
        let o = &clipped.outcomes[0];
        assert_eq!(o.pages_scanned, 2);
        assert_eq!(o.degraded.deadline_clipped, pages - 2);
        assert_eq!(o.degraded.budget_clipped, 0);
        assert!(o.degraded.is_lossy());
        assert!(o.degraded.estimated_missed_lines > 0);
        // Deterministic: the same deadline replays byte-identically — the
        // clip depends on the model, never on wall-clock time or load.
        let again = s.query_shared(std::slice::from_ref(&req)).unwrap();
        assert_eq!(again.outcomes[0].lines, o.lines);
        assert_eq!(again.outcomes[0].degraded, o.degraded);
        assert_eq!(again.outcomes[0].ledger, o.ledger);
    }

    #[test]
    fn zero_deadline_yields_a_well_formed_empty_result() {
        let mut s = system_with(&LOG.repeat(50));
        let pages = s.data_page_count();
        let req = QueryRequest::parse("RAS")
            .unwrap()
            .with_deadline(Duration::ZERO);
        let out = s.query_shared(std::slice::from_ref(&req)).unwrap();
        let o = &out.outcomes[0];
        assert!(o.lines.is_empty());
        assert_eq!(o.pages_scanned, 0);
        assert_eq!(o.degraded.deadline_clipped, pages);
        assert!(o.degraded.is_lossy());
        assert_eq!(o.ledger.pages_read, 0, "nothing was scanned");
    }

    #[test]
    fn deadline_stacks_after_the_page_budget() {
        let mut s = system_with(&LOG.repeat(900));
        let pages = s.data_page_count();
        assert!(pages > 4);
        let per_page = s.config().device.parallel_read_time(1, Link::Internal);
        // Budget keeps 4 pages, then the deadline affords only 2 of those.
        let req = QueryRequest::parse("RAS")
            .unwrap()
            .with_page_budget(4)
            .with_deadline(per_page * 2);
        let out = s.query_shared(std::slice::from_ref(&req)).unwrap();
        let o = &out.outcomes[0];
        assert_eq!(o.pages_scanned, 2);
        assert_eq!(o.degraded.budget_clipped, pages - 4);
        assert_eq!(o.degraded.deadline_clipped, 2);
    }

    #[test]
    fn cancelled_request_in_a_batch_leaves_live_requests_exact() {
        let mut s = system_with(&LOG.repeat(200));
        let live = QueryRequest::parse("FATAL").unwrap();
        let solo = s.query_shared(std::slice::from_ref(&live)).unwrap();
        let token = crate::CancelToken::new();
        token.cancel();
        let doomed = QueryRequest::parse("RAS").unwrap().with_cancel(token);
        let batch = s.query_shared(&[live, doomed]).unwrap();
        // The live query is byte-identical to running alone.
        assert_eq!(batch.outcomes[0].lines, solo.outcomes[0].lines);
        assert_eq!(batch.outcomes[0].ledger, solo.outcomes[0].ledger);
        // The cancelled query scanned and was charged nothing.
        assert!(batch.outcomes[1].lines.is_empty());
        assert_eq!(batch.outcomes[1].ledger.pages_read, 0);
    }

    #[test]
    fn empty_system_returns_no_matches() {
        let mut s = MithriLog::new(SystemConfig::for_tests());
        let o = s.query_str("anything").unwrap();
        assert_eq!(o.match_count(), 0);
        assert_eq!(o.pages_scanned, 0);
        assert!(!o.degraded.is_degraded());
    }

    #[test]
    fn mismatched_page_size_is_a_config_error() {
        let config = SystemConfig::for_tests();
        let store = MemStore::new(config.device.page_bytes * 2);
        match MithriLog::with_store(store, config) {
            Err(MithriLogError::Config(reason)) => {
                assert!(reason.contains("page size"), "{reason}");
            }
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_data_page_is_skipped_and_reported() {
        let mut s = system_with(&LOG.repeat(100));
        let pages = s.data_pages().to_vec();
        assert!(
            pages.len() >= 2,
            "need several pages for a meaningful drill"
        );
        let victim = pages[0];
        // Smash the page behind the controller's back: checksum stays stale.
        s.device_mut()
            .store_mut()
            .write_page(victim, b"smashed beyond recognition")
            .unwrap();

        let o = s.query_str("FATAL").unwrap();
        assert_eq!(o.degraded.skipped_pages, vec![victim.0]);
        assert!(o.degraded.is_lossy());
        assert!(o.degraded.estimated_missed_lines > 0);
        assert!(
            o.match_count() < 200,
            "some of the 200 FATAL lines lived on the smashed page"
        );
        assert!(o.match_count() > 0, "surviving pages still match");

        // The scrub sees exactly the same page.
        let report = s.scrub();
        let corrupt: Vec<u64> = report.corrupt.iter().map(|c| c.page).collect();
        assert_eq!(corrupt, vec![victim.0]);
    }

    #[test]
    fn clean_queries_report_no_degradation() {
        let mut s = system_with(&LOG.repeat(50));
        let o = s.query_str("FATAL").unwrap();
        assert!(!o.degraded.is_degraded());
        assert_eq!(o.degraded, crate::outcome::DegradedRead::default());
        assert!(s.scrub().is_clean());
    }

    /// A test config with tiny segments so sealing exercises in-module.
    fn segmented_config(segment_pages: u64) -> SystemConfig {
        SystemConfig {
            segment_pages,
            ..SystemConfig::for_tests()
        }
    }

    #[test]
    fn open_segment_seals_at_the_configured_cadence() {
        let mut s = MithriLog::new(segmented_config(2));
        s.ingest(LOG.repeat(300).as_bytes()).unwrap();
        let pages = s.data_page_count();
        assert!(pages >= 4, "need several pages, got {pages}");
        assert_eq!(s.sealed_segment_count(), pages / 2);
        assert_eq!(s.open_segment_pages(), pages % 2);
        let summaries = s.sealed_segments();
        assert_eq!(summaries.len() as u64, pages / 2);
        for (i, seg) in summaries.iter().enumerate() {
            assert_eq!(seg.id, i as u64, "ids ascend in seal order");
            assert_eq!(seg.pages, 2);
            assert!(seg.lines > 0);
        }
        // Segment totals plus the open remainder cover the whole store.
        let sealed_lines: u64 = summaries.iter().map(|seg| seg.lines).sum();
        assert!(sealed_lines <= s.lines());
        // Sealing changed nothing about query results.
        let o = s.query_str("FATAL").unwrap();
        assert_eq!(o.match_count(), 600);
    }

    #[test]
    fn prepared_ingest_is_byte_identical_to_direct_ingest() {
        let text = LOG.repeat(120);
        let mut direct = MithriLog::new(segmented_config(3));
        let direct_report = direct.ingest(text.as_bytes()).unwrap();

        let mut staged = MithriLog::new(segmented_config(3));
        let prep = PreparedIngest::build(staged.config(), Cow::Owned(text.clone().into_bytes()));
        assert_eq!(prep.raw_bytes(), text.len() as u64);
        assert_eq!(prep.frame_count(), direct_report.data_pages);
        let staged_report = staged.apply_ingest(&prep).unwrap();

        assert_eq!(staged_report, direct_report);
        assert_eq!(staged.data_pages(), direct.data_pages());
        assert_eq!(staged.sealed_segments(), direct.sealed_segments());
        assert_eq!(
            staged.device().page_count(),
            direct.device().page_count(),
            "identical device page layout"
        );
        for q in ["FATAL", "KERNEL AND INFO", "NOT RAS"] {
            let a = staged.query_str(q).unwrap();
            let b = direct.query_str(q).unwrap();
            assert_eq!(a.lines, b.lines, "query {q:?}");
            assert_eq!(a.ledger, b.ledger, "query {q:?}");
        }
    }

    #[test]
    fn page_cache_stays_warm_across_ingests() {
        let mut s = MithriLog::new(segmented_config(2));
        s.ingest(LOG.repeat(200).as_bytes()).unwrap();
        let _ = s.query_str("FATAL").unwrap(); // warm the cache
        let warm = s.query_str("FATAL").unwrap();
        assert_eq!(
            warm.ledger.pages_read,
            s.data_page_count(),
            "as-if-solo ledger charges every planned page"
        );
        let hits_before = s.device().ledger().cache_hits;
        assert!(hits_before > 0, "second scan should hit the cache");

        // Ingest appends; it must not retire cached text of old pages.
        s.ingest(LOG.repeat(50).as_bytes()).unwrap();
        let after = s.query_str("FATAL").unwrap();
        let new_hits = s.device().ledger().cache_hits - hits_before;
        assert!(
            new_hits > 0,
            "cache survived the ingest: {new_hits} hits after"
        );
        assert_eq!(after.match_count(), 500);
    }

    /// Ingests one-page fillers until the open segment seals, so the next
    /// era starts on a segment boundary. Bounded: each filler appends one
    /// page, so at most `segment_pages` iterations.
    fn seal_era_boundary(s: &mut MithriLog, filler: &str) {
        while s.open_segment_pages() != 0 {
            s.ingest(filler.as_bytes()).unwrap();
        }
    }

    #[test]
    fn retention_drops_oldest_segments_and_queries_stay_exact() {
        let mut s = MithriLog::new(segmented_config(2));
        // Two eras with distinct tokens, each spanning whole segments.
        let era1: String = (0..3000)
            .map(|i| format!("old-era event number {i}\n"))
            .collect();
        s.ingest(era1.as_bytes()).unwrap();
        seal_era_boundary(&mut s, "old-era filler line\n");
        let old_segments = s.sealed_segment_count();
        assert!(old_segments >= 2);
        let era2: String = (0..3000)
            .map(|i| format!("new-era event number {i}\n"))
            .collect();
        s.ingest(era2.as_bytes()).unwrap();
        let total = s.sealed_segment_count();
        let lines_before = s.lines();

        // Keep only the newest segments: every old-era page must go.
        let keep = total - old_segments;
        let report = s.apply_retention(keep).unwrap();
        assert_eq!(report.segments_dropped, old_segments);
        assert_eq!(report.segments_retained, keep);
        assert!(report.pages_dropped > 0);
        assert!(report.lines_dropped > 0);
        assert_eq!(s.lines(), lines_before - report.lines_dropped);
        assert_eq!(s.sealed_segment_count(), keep);

        // Old-era content is gone even though the index still holds stale
        // postings: plans filter to live pages.
        let old = s.query_str("old-era").unwrap();
        assert_eq!(old.match_count(), 0);
        assert!(!old.degraded.is_degraded(), "retention is not degradation");
        // New-era content is byte-identical to before the drop.
        let new = s.query_str("new-era").unwrap();
        assert_eq!(new.match_count(), 3000);

        // A second pass with the same target is a no-op without a commit.
        let sequence = s.superblock.sequence;
        let again = s.apply_retention(keep).unwrap();
        assert_eq!(again.segments_dropped, 0);
        assert_eq!(again.segments_retained, keep);
        assert_eq!(s.superblock.sequence, sequence, "no-op passes don't commit");
    }

    #[test]
    fn verify_segment_catches_corruption_and_quarantine_is_scoped() {
        // The default-size index: the tiny test index saturates on this
        // corpus and stops pruning, and an unpruned bystander plan would
        // demand the quarantined segment too.
        let mut s = MithriLog::new(SystemConfig {
            segment_pages: 2,
            ..SystemConfig::default()
        });
        let era1: String = (0..1500)
            .map(|i| format!("victim content number {i}\n"))
            .collect();
        s.ingest(era1.as_bytes()).unwrap();
        seal_era_boundary(&mut s, "victim filler line\n");
        let era2: String = (0..1500)
            .map(|i| format!("bystander content number {i}\n"))
            .collect();
        s.ingest(era2.as_bytes()).unwrap();
        let summaries = s.sealed_segments();
        assert!(summaries.len() >= 2);
        for seg in &summaries {
            assert_eq!(s.verify_segment(seg.id), Some(true), "segment {}", seg.id);
        }
        assert_eq!(s.verify_segment(9999), None);

        // Smash one page of the first segment behind the controller's back.
        let victim_seg = summaries[0].id;
        let victim_page = s.segments[0].pages[0];
        s.device_mut()
            .store_mut()
            .write_page(victim_page, b"smashed")
            .unwrap();
        assert_eq!(s.verify_segment(victim_seg), Some(false));

        // Segment-scoped scrub quarantines only that segment's bad page.
        let scrub = s.scrub_segment(victim_seg).unwrap();
        assert_eq!(scrub.corrupt.len(), 1);
        assert_eq!(scrub.corrupt[0].page, victim_page.0);

        // Operationally retire the whole segment: only queries demanding
        // its pages degrade.
        let quarantined = s.quarantine_segment(victim_seg).unwrap();
        assert_eq!(quarantined, summaries[0].pages);
        let hit = s.query_str("victim").unwrap();
        assert!(hit.degraded.is_lossy());
        assert_eq!(
            hit.degraded.skipped_pages.len() as u64,
            quarantined,
            "every quarantined page shows up as skipped"
        );
        let bystander = s.query_str("bystander").unwrap();
        assert!(
            !bystander.degraded.is_degraded(),
            "quarantine degrades only queries that demand the segment"
        );
        assert_eq!(bystander.match_count(), 1500);
    }
}
