//! Per-segment token bitmaps: the planner's read-free pruning rung.
//!
//! At seal time every segment freezes two compact structures built from the
//! raw (pre-compression) page text:
//!
//! - **Presence bitmaps** — one bit per (token-hash bucket, page): bit set
//!   means *some* token on that page hashes into the bucket. An unset
//!   bucket is a proof of absence, so positive terms prune pages with zero
//!   false negatives (collisions only ever add safe false positives).
//! - **Saturating tokens** — a small list of *exact token bytes* that occur
//!   on **every** non-empty line of a page, with one bit per (token, page).
//!   If a set negates token `t` and `t` saturates a page, no line of that
//!   page can match the set, so the page is skippable. Exact bytes are
//!   load-bearing: a hashed "on every line" bit could collide with a term
//!   that is *absent* from the page and silently drop matching lines. A
//!   byte-equal saturating token can never produce a false negative.
//!
//! A page survives for a query if it survives for *any* intersection set;
//! it survives a set unless a positive term's bucket bit is unset or a
//! negated term byte-equals one of the page's saturating tokens. Both
//! rules are conservative, so pruned plans return byte-identical lines.

use mithrilog_filter::Bitmap;
use mithrilog_query::Query;
use mithrilog_tokenizer::Tokenizer;

/// Saturating tokens kept per page before segment-level selection.
pub(crate) const MAX_SAT_TOKENS_PER_PAGE: usize = 16;
/// Saturating tokens kept per sealed segment (selection: most pages
/// saturated first, then lexicographic — deterministic on every replica).
pub(crate) const MAX_SAT_TOKENS_PER_SEGMENT: usize = 64;
/// Longest token eligible for the saturating list; longer tokens are
/// line-unique payloads, never useful negation targets.
pub(crate) const MAX_SAT_TOKEN_LEN: usize = 64;

const BITMAP_MAGIC: &[u8; 4] = b"MLBM";
const BITMAP_VERSION: u32 = 1;

/// FNV-1a bucket of a token for the presence bitmaps.
pub(crate) fn token_bucket(token: &[u8], buckets: usize) -> usize {
    debug_assert!(buckets > 0);
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in token {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % buckets as u64) as usize
}

/// Per-page marks accumulated while a page sits in the open segment:
/// the bucket-presence bitmap plus the page's saturating-token candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PageMarks {
    /// One bit per token-hash bucket: set iff some token on the page
    /// hashes there.
    pub any: Bitmap,
    /// Exact tokens present on every non-empty line of the page, sorted
    /// ascending, capped at [`MAX_SAT_TOKENS_PER_PAGE`].
    pub saturating: Vec<Vec<u8>>,
}

/// Computes one page's marks from its raw decompressed text.
///
/// Line iteration mirrors the filter engine exactly: `\n`-separated
/// segments with empty ones skipped. A line with no tokens (all
/// delimiters) still counts as a line, so it blocks every saturation —
/// conservative by construction.
pub(crate) fn page_marks(tokenizer: &Tokenizer, buckets: usize, text: &[u8]) -> PageMarks {
    let mut any = Bitmap::new(buckets);
    // `None` until the first non-empty line seeds the candidate set.
    let mut sat: Option<Vec<Vec<u8>>> = None;
    let mut line_tokens: Vec<&[u8]> = Vec::new();
    for line in text.split(|b| *b == b'\n') {
        if line.is_empty() {
            continue;
        }
        line_tokens.clear();
        line_tokens.extend(tokenizer.tokens(line));
        for tok in &line_tokens {
            any.set(token_bucket(tok, buckets));
        }
        line_tokens.sort_unstable();
        line_tokens.dedup();
        match &mut sat {
            None => {
                sat = Some(
                    line_tokens
                        .iter()
                        .filter(|t| t.len() <= MAX_SAT_TOKEN_LEN)
                        .map(|t| t.to_vec())
                        .collect(),
                );
            }
            Some(cands) => {
                cands.retain(|c| line_tokens.binary_search(&c.as_slice()).is_ok());
            }
        }
    }
    let mut saturating = sat.unwrap_or_default();
    saturating.truncate(MAX_SAT_TOKENS_PER_PAGE);
    PageMarks { any, saturating }
}

/// The frozen pruning structures of one sealed segment, page-transposed so
/// the planner combines them word-wise with the [`Bitmap`] combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SegmentBitmaps {
    buckets: usize,
    pages: usize,
    /// One bitmap per bucket, one bit per page in segment order.
    token_pages: Vec<Bitmap>,
    /// Selected saturating tokens, sorted ascending for binary search.
    sat_tokens: Vec<Vec<u8>>,
    /// Parallel to `sat_tokens`: one bit per page the token saturates.
    sat_pages: Vec<Bitmap>,
}

impl SegmentBitmaps {
    /// Transposes per-page marks into the segment's frozen form.
    pub(crate) fn build(buckets: usize, marks: &[PageMarks]) -> SegmentBitmaps {
        let pages = marks.len();
        let mut token_pages = vec![Bitmap::new(pages); buckets];
        for (p, m) in marks.iter().enumerate() {
            for (b, bucket_pages) in token_pages.iter_mut().enumerate() {
                if m.any.get(b) {
                    bucket_pages.set(p);
                }
            }
        }
        // Segment-level selection: tokens saturating the most pages win;
        // ties break lexicographically so every replica freezes the same
        // table.
        let mut by_token: std::collections::BTreeMap<&[u8], Vec<usize>> =
            std::collections::BTreeMap::new();
        for (p, m) in marks.iter().enumerate() {
            for tok in &m.saturating {
                by_token.entry(tok.as_slice()).or_default().push(p);
            }
        }
        let mut ranked: Vec<(&[u8], Vec<usize>)> = by_token.into_iter().collect();
        ranked.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(b.0)));
        ranked.truncate(MAX_SAT_TOKENS_PER_SEGMENT);
        ranked.sort_by(|a, b| a.0.cmp(b.0));
        let mut sat_tokens = Vec::with_capacity(ranked.len());
        let mut sat_pages = Vec::with_capacity(ranked.len());
        for (tok, pages_sat) in ranked {
            let mut bm = Bitmap::new(pages);
            for p in pages_sat {
                bm.set(p);
            }
            sat_tokens.push(tok.to_vec());
            sat_pages.push(bm);
        }
        SegmentBitmaps {
            buckets,
            pages,
            token_pages,
            sat_tokens,
            sat_pages,
        }
    }

    /// Pages covered (the segment's page count at seal time).
    pub(crate) fn pages(&self) -> usize {
        self.pages
    }

    /// Bucket count the presence bitmaps were built with.
    pub(crate) fn buckets(&self) -> usize {
        self.buckets
    }

    /// The pages of this segment that may still hold a line matching
    /// `query`: bit `p` unset is a proof that page `p` cannot contribute.
    ///
    /// Per set: intersect the positive terms' presence bitmaps (absence
    /// proof), then remove pages a negated term saturates (byte-equal
    /// presence-on-every-line proof); union across sets.
    pub(crate) fn alive_pages(&self, query: &Query) -> Bitmap {
        let mut union = Bitmap::new(self.pages);
        for set in query.sets() {
            let mut alive = Bitmap::filled(self.pages);
            for term in set.positive_terms() {
                alive.and_with(
                    &self.token_pages[token_bucket(term.token().as_bytes(), self.buckets)],
                );
            }
            for term in set.negative_terms() {
                if let Ok(j) = self
                    .sat_tokens
                    .binary_search_by(|s| s.as_slice().cmp(term.token().as_bytes()))
                {
                    alive.and_not(&self.sat_pages[j]);
                }
            }
            union.or_with(&alive);
        }
        union
    }

    /// Serializes the sidecar blob (magic, version, geometry, bit-packed
    /// bitmaps, exact saturating tokens). The caller CRCs the blob.
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BITMAP_MAGIC);
        out.extend_from_slice(&BITMAP_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buckets as u64).to_le_bytes());
        out.extend_from_slice(&(self.pages as u64).to_le_bytes());
        for bm in &self.token_pages {
            pack_bits(bm, &mut out);
        }
        out.extend_from_slice(&(self.sat_tokens.len() as u64).to_le_bytes());
        for tok in &self.sat_tokens {
            out.extend_from_slice(&(tok.len() as u64).to_le_bytes());
            out.extend_from_slice(tok);
        }
        for bm in &self.sat_pages {
            pack_bits(bm, &mut out);
        }
        out
    }

    /// Decodes a sidecar blob, rejecting any structural mismatch with
    /// `None` (the caller then plans the segment conservatively).
    pub(crate) fn from_bytes(bytes: &[u8]) -> Option<SegmentBitmaps> {
        let mut rest = bytes;
        if rest.len() < 8 || &rest[..4] != BITMAP_MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(rest[4..8].try_into().ok()?);
        if version != BITMAP_VERSION {
            return None;
        }
        rest = &rest[8..];
        let buckets = take_u64(&mut rest)? as usize;
        let pages = take_u64(&mut rest)? as usize;
        if buckets == 0 || buckets > 1 << 24 || pages > 1 << 32 {
            return None;
        }
        let mut token_pages = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            token_pages.push(unpack_bits(&mut rest, pages)?);
        }
        let sat_count = take_u64(&mut rest)? as usize;
        if sat_count > MAX_SAT_TOKENS_PER_SEGMENT {
            return None;
        }
        let mut sat_tokens = Vec::with_capacity(sat_count);
        for _ in 0..sat_count {
            let len = take_u64(&mut rest)? as usize;
            if len > MAX_SAT_TOKEN_LEN || rest.len() < len {
                return None;
            }
            sat_tokens.push(rest[..len].to_vec());
            rest = &rest[len..];
        }
        if sat_tokens.windows(2).any(|w| w[0] >= w[1]) {
            return None;
        }
        let mut sat_pages = Vec::with_capacity(sat_count);
        for _ in 0..sat_count {
            sat_pages.push(unpack_bits(&mut rest, pages)?);
        }
        if !rest.is_empty() {
            return None;
        }
        Some(SegmentBitmaps {
            buckets,
            pages,
            token_pages,
            sat_tokens,
            sat_pages,
        })
    }
}

fn pack_bits(bm: &Bitmap, out: &mut Vec<u8>) {
    let bits = bm.len();
    let mut byte = 0u8;
    for i in 0..bits {
        if bm.get(i) {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !bits.is_multiple_of(8) {
        out.push(byte);
    }
}

fn unpack_bits(rest: &mut &[u8], bits: usize) -> Option<Bitmap> {
    let bytes = bits.div_ceil(8);
    if rest.len() < bytes {
        return None;
    }
    let mut bm = Bitmap::new(bits);
    for i in 0..bits {
        if rest[i / 8] & (1 << (i % 8)) != 0 {
            bm.set(i);
        }
    }
    // Reject junk in the pad bits so a truncated-then-padded blob cannot
    // silently decode.
    if !bits.is_multiple_of(8) && rest[bytes - 1] >> (bits % 8) != 0 {
        return None;
    }
    *rest = &rest[bytes..];
    Some(bm)
}

fn take_u64(rest: &mut &[u8]) -> Option<u64> {
    if rest.len() < 8 {
        return None;
    }
    let v = u64::from_le_bytes(rest[..8].try_into().ok()?);
    *rest = &rest[8..];
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::parse;

    fn tok() -> Tokenizer {
        Tokenizer::default()
    }

    const PAGES: [&[u8]; 3] = [
        b"RAS KERNEL INFO cache parity\nRAS KERNEL FATAL storage interrupt\n",
        b"RAS APP FATAL ciod error\nRAS APP INFO ciod ok\n",
        b"pbs_mom: job started\npbs_mom: job finished\n",
    ];

    fn marks() -> Vec<PageMarks> {
        PAGES.iter().map(|p| page_marks(&tok(), 256, p)).collect()
    }

    #[test]
    fn page_marks_track_presence_and_saturation() {
        let m = page_marks(&tok(), 256, PAGES[0]);
        assert!(m.any.get(token_bucket(b"RAS", 256)));
        assert!(m.any.get(token_bucket(b"FATAL", 256)));
        // RAS and KERNEL are on both lines; FATAL only on one.
        assert!(m.saturating.contains(&b"RAS".to_vec()));
        assert!(m.saturating.contains(&b"KERNEL".to_vec()));
        assert!(!m.saturating.contains(&b"FATAL".to_vec()));
        // Sorted ascending, deduped.
        assert!(m.saturating.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn empty_and_blank_lines_do_not_break_saturation() {
        let m = page_marks(&tok(), 64, b"\nRAS a\n\nRAS b\n");
        assert!(m.saturating.contains(&b"RAS".to_vec()));
        // A delimiter-only line has no tokens, so nothing saturates.
        let m = page_marks(&tok(), 64, b"RAS a\n   \nRAS b\n");
        assert!(m.saturating.is_empty());
    }

    #[test]
    fn positive_terms_prune_by_absence() {
        let sb = SegmentBitmaps::build(256, &marks());
        let alive = sb.alive_pages(&parse("KERNEL").unwrap());
        assert!(alive.get(0));
        // Pages 1-2 have no KERNEL token; only a hash collision could keep
        // them alive, and with 256 buckets over these few tokens there is
        // none.
        assert!(!alive.get(1));
        assert!(!alive.get(2));
    }

    #[test]
    fn negated_saturating_token_prunes_pages() {
        let sb = SegmentBitmaps::build(256, &marks());
        // RAS saturates pages 0 and 1, so "NOT RAS" can only match on
        // page 2.
        let alive = sb.alive_pages(&parse("NOT RAS").unwrap());
        assert!(!alive.get(0));
        assert!(!alive.get(1));
        assert!(alive.get(2));
        // FATAL does not saturate any page: nothing is pruned.
        let alive = sb.alive_pages(&parse("NOT FATAL").unwrap());
        assert_eq!(alive.count_ones(), 3);
    }

    #[test]
    fn union_of_sets_unions_alive_pages() {
        let sb = SegmentBitmaps::build(256, &marks());
        let alive = sb.alive_pages(&parse("KERNEL OR NOT RAS").unwrap());
        assert!(alive.get(0));
        assert!(!alive.get(1));
        assert!(alive.get(2));
    }

    #[test]
    fn mixed_set_combines_absence_and_saturation() {
        let sb = SegmentBitmaps::build(256, &marks());
        // "ciod AND NOT RAS": ciod only on page 1, but RAS saturates it.
        let alive = sb.alive_pages(&parse("ciod AND NOT RAS").unwrap());
        assert_eq!(alive.count_ones(), 0);
    }

    #[test]
    fn sidecar_round_trips() {
        let sb = SegmentBitmaps::build(256, &marks());
        let bytes = sb.to_bytes();
        let back = SegmentBitmaps::from_bytes(&bytes).expect("decode");
        assert_eq!(sb, back);
    }

    #[test]
    fn sidecar_rejects_garbage_and_truncation() {
        let sb = SegmentBitmaps::build(64, &marks());
        let bytes = sb.to_bytes();
        assert!(SegmentBitmaps::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(SegmentBitmaps::from_bytes(b"junk").is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SegmentBitmaps::from_bytes(&trailing).is_none());
        let mut wrong_magic = bytes;
        wrong_magic[0] ^= 0xFF;
        assert!(SegmentBitmaps::from_bytes(&wrong_magic).is_none());
    }

    #[test]
    fn segment_selection_is_deterministic_and_capped() {
        // 80 one-line pages, each saturated by its own token plus a shared
        // one; the shared token must win the cap and survive selection.
        let t = tok();
        let mut ms = Vec::new();
        for i in 0..80 {
            let text = format!("shared tok{i:03}\n");
            ms.push(page_marks(&t, 64, text.as_bytes()));
        }
        let sb = SegmentBitmaps::build(64, &ms);
        assert!(sb.sat_tokens.len() <= MAX_SAT_TOKENS_PER_SEGMENT);
        assert!(sb.sat_tokens.contains(&b"shared".to_vec()));
        let again = SegmentBitmaps::build(64, &ms);
        assert_eq!(sb, again);
        let alive = sb.alive_pages(&parse("NOT shared").unwrap());
        assert_eq!(alive.count_ones(), 0);
    }
}
