//! Cooperative cancellation for running queries.
//!
//! A [`CancelToken`] is a cheap, clonable flag shared between a submitter
//! (who may decide a running query is no longer wanted) and the scan
//! datapath (which checks it at page boundaries). Cancellation is
//! *cooperative*: a scan never aborts mid-page, so a cancelled query stops
//! within one page boundary of the request — the granularity the paper's
//! per-page pipeline naturally provides — and the pages it did scan are
//! charged exactly as usual.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag checked by scans at page boundaries.
///
/// Cloning the token shares the flag: cancelling any clone cancels them
/// all. The default token is un-cancelled.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn token_is_send_sync() {
        fn check<T: Send + Sync + Clone>() {}
        check::<CancelToken>();
    }
}
