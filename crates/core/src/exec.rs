//! Parallel multi-pipeline execution engine (paper §5, Figure 7).
//!
//! The prototype instantiates N token-filter pipelines, each fed by its own
//! flash channel, and saturates the device's internal bandwidth by keeping
//! all N busy. This module is the software realization of that dataflow: a
//! fixed-size pool of scoped worker threads, one per modeled channel
//! (`SystemConfig::query_threads`), over which the query page plan is
//! striped round-robin — page *i* of the plan rides channel `i mod N`,
//! exactly how pages interleave across flash channels on the device.
//!
//! Each worker owns a complete pipeline replica: a private
//! [`SsdReader`] (shared-access reads with a thread-local cost ledger), a
//! thread-local LZAH codec, and the compiled filter (shared immutably —
//! filtering is `&self`). Workers never exchange state mid-scan.
//!
//! **Determinism invariant:** the merged result is byte-identical to a
//! sequential scan for every worker count. Three properties guarantee it:
//!
//! 1. page outcomes (matched line ranges, skip decisions, retry counts) are
//!    pure per-page functions — no cross-page state exists in the scan;
//! 2. results merge in plan order (by slot), so matched lines and
//!    `skipped_pages` keep exactly the sequential order;
//! 3. ledger counters are additive, so per-worker ledgers merged in any
//!    order sum to the sequential totals.
//!
//! **Zero-allocation steady state:** each worker owns a [`ScanScratch`] —
//! the LZAH decoder workspace, a reusable [`HashFilter`], and the matched
//! range vector — reused across the page loop. After warm-up, a page with
//! no matches is scanned without a single heap allocation; a page with k
//! matches allocates exactly the k output `String`s. The per-page `Vec`s
//! the old path allocated (decoder table, decompressed text, kept-line
//! vectors) are gone.
//!
//! **Page cache:** when the system configures a [`PageCache`], both scan
//! entry points consult it before touching the device. A hit charges the
//! consumer's as-if-solo ledger exactly what a fresh read would have
//! (pages_read + bytes_read of the stored page) and records the physical
//! saving as `cache_hits`/`cache_bytes_saved` on the device-bound ledger —
//! so outcomes and modeled times are byte-identical with and without the
//! cache, like `shared_reads`.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;
use std::thread;

use mithrilog_compress::{compress_paged, Lzah, LzahConfig, LzahScratch, PagedLog};
use mithrilog_filter::{FilterPipeline, HashFilter};
use mithrilog_query::Query;
use mithrilog_storage::{CostLedger, PageId, PageStore, SimSsd, SsdReader, StorageError};

use crate::cache::PageCache;
use crate::control::CancelToken;

/// Whether a storage error is survivable by skipping the affected page:
/// corruption, exhausted transient retries, and quarantined pages lose one
/// page of data; anything else (out-of-range access, host I/O failure) is a
/// real bug or environment failure and must propagate.
pub(crate) fn page_is_skippable(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::Corrupt { .. }
            | StorageError::TransientRead { .. }
            | StorageError::Quarantined { .. }
    )
}

/// The filtering engine a scan runs with: the compiled hardware pipeline
/// when the query fit the filter's resources, or the software evaluator
/// otherwise. Shared immutably across workers; each evaluation builds its
/// own per-line filter state, so `&self` access is enough.
pub(crate) enum Engine<'q> {
    /// Offloaded path: the cuckoo-hash filter model.
    Hardware(&'q FilterPipeline),
    /// Fallback path: reference software evaluation of the query AST.
    Software(&'q Query),
}

/// How pages map to cache generations for one scan.
///
/// The segmented store gives every segment (sealed or open) its own
/// generation, so invalidation is per-segment: retention drops or
/// corruption drills retire only the affected segment's cache entries
/// while the rest of the store stays warm. A scan carries either a single
/// uniform generation (tests, simple stores) or a borrowed per-page map
/// (the system's live `page → generation` view).
#[derive(Clone, Copy, Debug)]
pub(crate) enum GenMap<'c> {
    /// Every page shares one generation. Production scans always carry the
    /// per-page map; the uniform form keeps the scan kernels testable
    /// without a system.
    #[cfg(test)]
    Uniform(u64),
    /// Per-page generations; pages absent from the map bypass the cache.
    PerPage(&'c HashMap<u64, u64>),
}

impl GenMap<'_> {
    fn of(&self, page: u64) -> Option<u64> {
        match self {
            #[cfg(test)]
            GenMap::Uniform(g) => Some(*g),
            GenMap::PerPage(m) => m.get(&page).copied(),
        }
    }
}

/// The page cache view a scan runs against: the cache plus the generation
/// map resolving each page's cache key. `None` means caching is disabled.
pub(crate) type CacheView<'c> = Option<(&'c PageCache, GenMap<'c>)>;

/// Consults the cache for `page` under its current generation, if any.
fn cache_lookup(cache: CacheView<'_>, page: u64) -> Option<crate::cache::CachedPage> {
    let (cache, gens) = cache?;
    cache.get(gens.of(page)?, page)
}

/// Stores one decompressed page under its current generation, if any.
fn cache_store(cache: CacheView<'_>, page: u64, text: &[u8], raw_len: u64) {
    if let Some((cache, gens)) = cache {
        if let Some(generation) = gens.of(page) {
            cache.insert(generation, page, Arc::new(text.to_vec()), raw_len);
        }
    }
}

/// Outcome of scanning one page.
enum Scanned {
    /// The page decompressed and was filtered.
    Page(PageScan),
    /// The page was skipped (corrupt, unreadable, or undecompressible).
    Skipped(u64),
}

/// One filtered page: its matched lines (materialized inside the scan, so
/// page text never outlives the page loop) plus per-page stats.
struct PageScan {
    /// Matching lines of this page, in line order.
    lines: Vec<String>,
    /// Decompressed length of the page.
    bytes: u64,
    lines_scanned: u64,
}

/// Per-worker reusable scan state: the decoder workspace, the hash-filter
/// evaluation state (hardware engines only), and the matched-range vector.
/// One of these per worker turns the page loop allocation-free.
struct ScanScratch<'q> {
    lzah: LzahScratch,
    filter: Option<HashFilter<'q>>,
    ranges: Vec<Range<usize>>,
}

impl<'q> ScanScratch<'q> {
    fn for_engine(engine: &Engine<'q>) -> Self {
        ScanScratch {
            lzah: LzahScratch::new(),
            filter: match engine {
                Engine::Hardware(pipeline) => Some(HashFilter::new(pipeline.compiled())),
                Engine::Software(_) => None,
            },
            ranges: Vec::new(),
        }
    }
}

/// Per-worker tally of page-cache hits, folded into the as-if-solo and
/// physical ledgers once the worker joins.
#[derive(Debug, Clone, Copy, Default)]
struct HitTally {
    pages: u64,
    bytes: u64,
}

impl HitTally {
    /// The as-if-solo charge for the hits: exactly what fresh reads of the
    /// same pages would have recorded.
    fn solo_charge(&self, base: CostLedger) -> CostLedger {
        CostLedger {
            pages_read: base.pages_read + self.pages,
            bytes_read: base.bytes_read + self.bytes,
            ..base
        }
    }

    /// The physical record of the hits: device work avoided.
    fn physical_charge(&self, base: CostLedger) -> CostLedger {
        CostLedger {
            cache_hits: base.cache_hits + self.pages,
            cache_bytes_saved: base.cache_bytes_saved + self.bytes,
            ..base
        }
    }
}

/// Merged result of a (possibly parallel) page scan.
pub(crate) struct ScanResult {
    /// Matching lines in plan order.
    pub lines: Vec<String>,
    /// Source page id of each matching line, parallel to `lines`. The
    /// attribution lets a multi-device merge reconstruct global storage
    /// order without re-scanning.
    pub line_pages: Vec<u64>,
    /// Skipped page ids, in plan order.
    pub skipped_pages: Vec<u64>,
    /// Lines examined across all scanned pages.
    pub lines_scanned: u64,
    /// Decompressed bytes pushed through the filter.
    pub bytes_filtered: u64,
    /// Pages that decompressed and were filtered (excludes skips).
    pub pages_filtered: u64,
    /// As-if-solo charges: cache hits are charged as the full page reads
    /// they replaced, so this ledger is byte-identical to an uncached run.
    pub ledger: CostLedger,
    /// Physical device charges plus `cache_hits`/`cache_bytes_saved`; fold
    /// into the device with [`SimSsd::merge_ledger`]. Equal to `ledger`
    /// when no cache is in play.
    pub physical: CostLedger,
    /// First non-survivable storage error, by plan position. The ledger
    /// above still accounts every read issued before workers stopped.
    pub error: Option<StorageError>,
}

/// Scans `pages` through `engine`, striped across `threads` workers.
///
/// `threads == 1` runs the identical per-page code inline (no threads
/// spawned); any `threads >= 1` produces byte-identical results — see the
/// module docs for the determinism argument.
///
/// `cancel` is checked at every page boundary: once the token trips, each
/// worker stops before its next page, so the scan quiesces within one page
/// per worker. Pages scanned before the trip are charged exactly as usual;
/// unvisited pages charge nothing and produce nothing.
pub(crate) fn scan_pages<S: PageStore>(
    ssd: &SimSsd<S>,
    lzah: LzahConfig,
    engine: &Engine<'_>,
    pages: &[PageId],
    threads: usize,
    cache: CacheView<'_>,
    cancel: Option<&CancelToken>,
) -> ScanResult {
    let workers = threads.max(1).min(pages.len().max(1));
    let mut slots: Vec<Option<Scanned>> = Vec::with_capacity(pages.len());
    slots.resize_with(pages.len(), || None);
    let mut ledger = CostLedger::default();
    let mut physical = CostLedger::default();
    // (plan position, error) pairs; the earliest plan position wins so the
    // propagated error does not depend on worker interleaving.
    let mut errors: Vec<(usize, StorageError)> = Vec::new();

    if workers <= 1 {
        let mut reader = ssd.reader();
        let codec = Lzah::new(lzah);
        let mut scratch = ScanScratch::for_engine(engine);
        let mut hits = HitTally::default();
        for (slot, page) in pages.iter().enumerate() {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                break;
            }
            match scan_one(
                &mut reader,
                &codec,
                engine,
                *page,
                cache,
                &mut scratch,
                &mut hits,
            ) {
                Ok(scanned) => slots[slot] = Some(scanned),
                Err(e) => {
                    errors.push((slot, e));
                    break;
                }
            }
        }
        let reads = reader.into_ledger();
        ledger.merge(&hits.solo_charge(reads));
        physical.merge(&hits.physical_charge(reads));
    } else {
        let outputs: Vec<WorkerOutput> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = WorkerOutput::default();
                        let mut reader = ssd.reader();
                        let codec = Lzah::new(lzah);
                        let mut scratch = ScanScratch::for_engine(engine);
                        let mut hits = HitTally::default();
                        for slot in (w..pages.len()).step_by(workers) {
                            if cancel.is_some_and(CancelToken::is_cancelled) {
                                break;
                            }
                            match scan_one(
                                &mut reader,
                                &codec,
                                engine,
                                pages[slot],
                                cache,
                                &mut scratch,
                                &mut hits,
                            ) {
                                Ok(scanned) => out.scans.push((slot, scanned)),
                                Err(e) => {
                                    out.error = Some((slot, e));
                                    break;
                                }
                            }
                        }
                        let reads = reader.into_ledger();
                        out.ledger = hits.solo_charge(reads);
                        out.physical = hits.physical_charge(reads);
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        for out in outputs {
            ledger.merge(&out.ledger);
            physical.merge(&out.physical);
            for (slot, scanned) in out.scans {
                slots[slot] = Some(scanned);
            }
            if let Some(err) = out.error {
                errors.push(err);
            }
        }
    }
    errors.sort_by_key(|(slot, _)| *slot);
    let error = errors.into_iter().next().map(|(_, e)| e);

    // Order-preserving merge: matched lines were materialized inside the
    // page loop, so the merge only moves them into plan order.
    let mut result = ScanResult {
        lines: Vec::new(),
        line_pages: Vec::new(),
        skipped_pages: Vec::new(),
        lines_scanned: 0,
        bytes_filtered: 0,
        pages_filtered: 0,
        ledger,
        physical,
        error,
    };
    for (slot, scanned) in slots.into_iter().enumerate() {
        let Some(scanned) = scanned else { continue };
        match scanned {
            Scanned::Page(p) => {
                result.lines_scanned += p.lines_scanned;
                result.bytes_filtered += p.bytes;
                result.pages_filtered += 1;
                let total = result.line_pages.len() + p.lines.len();
                result.line_pages.resize(total, pages[slot].0);
                result.lines.extend(p.lines);
            }
            Scanned::Skipped(page) => result.skipped_pages.push(page),
        }
    }
    result
}

#[derive(Default)]
struct WorkerOutput {
    scans: Vec<(usize, Scanned)>,
    ledger: CostLedger,
    physical: CostLedger,
    error: Option<(usize, StorageError)>,
}

/// One worker step: (cache lookup →) read → decompress → filter a single
/// page. Pure in the page id given the device contents — the cache serves
/// only text a fresh read of the same generation would produce — so
/// striping cannot change results.
#[allow(clippy::too_many_arguments)]
fn scan_one<'q, S: PageStore>(
    reader: &mut SsdReader<'_, S>,
    codec: &Lzah,
    engine: &Engine<'q>,
    page: PageId,
    cache: CacheView<'_>,
    scratch: &mut ScanScratch<'q>,
    hits: &mut HitTally,
) -> Result<Scanned, StorageError> {
    let ScanScratch {
        lzah,
        filter,
        ranges,
    } = scratch;
    // Quarantine is checked before the cache: a scrub may quarantine a page
    // after its text was cached, and the skip decision must match what an
    // uncached read would produce (an up-front `Quarantined` error with
    // zero ledger charges) so cached and uncached runs stay byte-identical.
    if reader.is_quarantined(page) {
        return Ok(Scanned::Skipped(page.0));
    }
    if let Some(cached) = cache_lookup(cache, page.0) {
        hits.pages += 1;
        hits.bytes += cached.raw_len;
        return Ok(Scanned::Page(filter_to_scan(
            engine,
            &cached.text,
            filter,
            ranges,
        )));
    }
    let raw = match reader.read(page) {
        Ok(raw) => raw,
        Err(e) if page_is_skippable(&e) => return Ok(Scanned::Skipped(page.0)),
        Err(e) => return Err(e),
    };
    // Corruption the checksum missed (or pages written before the sidecar
    // existed) still gets caught by the decoder's internal consistency
    // checks; one bad page is not worth the query.
    let text = match codec.decompress_into(&raw, lzah) {
        Ok(text) => text,
        Err(_) => return Ok(Scanned::Skipped(page.0)),
    };
    cache_store(cache, page.0, text, raw.len() as u64);
    Ok(Scanned::Page(filter_to_scan(engine, text, filter, ranges)))
}

/// Filters one page's decompressed text and materializes the matched lines.
/// Pure in `text`, so the same page fanned out to N queries (or served from
/// the cache) produces exactly what N solo scans would have.
fn filter_to_scan<'q>(
    engine: &Engine<'q>,
    text: &[u8],
    filter: &mut Option<HashFilter<'q>>,
    ranges: &mut Vec<Range<usize>>,
) -> PageScan {
    let lines_scanned = filter_page_into(engine, text, filter, ranges);
    let mut lines = Vec::with_capacity(ranges.len());
    for range in ranges.iter() {
        lines.push(String::from_utf8_lossy(&text[range.clone()]).into_owned());
    }
    PageScan {
        lines,
        bytes: text.len() as u64,
        lines_scanned,
    }
}

/// The filter half of a page scan: run `engine` over decompressed `text`,
/// filling `ranges` with the matched line ranges (cleared first) and
/// returning the number of lines examined.
fn filter_page_into<'q>(
    engine: &Engine<'q>,
    text: &[u8],
    filter: &mut Option<HashFilter<'q>>,
    ranges: &mut Vec<Range<usize>>,
) -> u64 {
    match engine {
        Engine::Hardware(pipeline) => {
            let filter = filter
                .as_mut()
                .expect("hardware scratch carries a hash filter");
            pipeline
                .filter_text_with_stats_into(text, filter, ranges)
                .lines_in
        }
        Engine::Software(query) => {
            ranges.clear();
            let mut lines_scanned = 0u64;
            let mut offset = 0usize;
            for line in text.split(|b| *b == b'\n') {
                let start = offset;
                offset += line.len() + 1;
                if line.is_empty() {
                    continue;
                }
                lines_scanned += 1;
                // Log lines are overwhelmingly valid UTF-8: evaluate
                // borrowed. The lossy copy is reserved for invalid lines,
                // where replacement characters cannot introduce matches the
                // byte view lacks (query tokens are valid UTF-8).
                let matched = match std::str::from_utf8(line) {
                    Ok(s) => query.matches_line(s),
                    Err(_) => query.matches_line(&String::from_utf8_lossy(line)),
                };
                if matched {
                    ranges.push(start..start + line.len());
                }
            }
            lines_scanned
        }
    }
}

/// Per-query result of a cross-query shared scan ([`scan_pages_fanout`]).
pub(crate) struct FanoutQueryScan {
    /// Matching lines in this query's plan order, materialized once.
    pub lines: Vec<String>,
    /// Source page id of each matching line, parallel to `lines` (see
    /// [`ScanResult::line_pages`]).
    pub line_pages: Vec<u64>,
    /// Skipped page ids, in this query's plan order.
    pub skipped_pages: Vec<u64>,
    /// Lines examined across this query's scanned pages.
    pub lines_scanned: u64,
    /// Decompressed bytes this query's filter consumed.
    pub bytes_filtered: u64,
    /// Pages that decompressed and were filtered for this query.
    pub pages_filtered: u64,
    /// As-if-solo charges: every page this query planned is charged in
    /// full, exactly as a solo scan would have, even when the physical read
    /// was shared. Shared-read savings live on the device ledger instead.
    pub ledger: CostLedger,
}

/// Merged result of a cross-query shared scan.
pub(crate) struct FanoutResult {
    /// One scan result per input query, in input order.
    pub queries: Vec<FanoutQueryScan>,
    /// Physical device charges: each union page read once, plus
    /// `shared_reads` counting every duplicate read the fan-out avoided.
    /// Fold into the device with [`SimSsd::merge_ledger`].
    pub device_ledger: CostLedger,
    /// First non-survivable storage error, by union plan position.
    pub error: Option<StorageError>,
}

/// One query's contribution to a fan-out scan: its filtering engine, its
/// page plan, and an optional cancellation token. A query whose token trips
/// mid-wave drops out of every subsequent union slot — it is neither
/// filtered nor charged for pages it never reached, and a slot every
/// planner has abandoned is not read at all.
pub(crate) struct FanQuery<'q> {
    /// The filtering engine this query scans with.
    pub engine: Engine<'q>,
    /// The query's page plan, in plan order.
    pub pages: Vec<PageId>,
    /// Cooperative cancellation, checked at each union-slot boundary.
    pub cancel: Option<CancelToken>,
}

impl<'q> FanQuery<'q> {
    fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }
}

/// Outcome of loading one union page in a fan-out scan.
enum FanBody {
    /// The page decompressed; `per_query` holds, for each query index live
    /// at scan time, the matched lines (materialized inside the page loop,
    /// so page text never outlives it) and the lines examined.
    Scanned {
        bytes: u64,
        per_query: Vec<(usize, Vec<String>, u64)>,
    },
    /// The page is survivably lost for every live query that planned it
    /// (`interested` holds those query indexes).
    Skipped { interested: Vec<usize> },
    /// Every query that planned this page was cancelled before its slot
    /// came up: no read was issued and nothing is charged to anyone.
    Abandoned,
}

/// Per-worker reusable fan-out scan state: one decoder workspace and
/// matched-range vector (pages process serially within a worker), plus one
/// [`HashFilter`] per hardware-engine query.
struct FanScratch<'q> {
    lzah: LzahScratch,
    filters: Vec<Option<HashFilter<'q>>>,
    ranges: Vec<Range<usize>>,
}

impl<'q> FanScratch<'q> {
    fn for_queries(queries: &[FanQuery<'q>]) -> Self {
        FanScratch {
            lzah: LzahScratch::new(),
            filters: queries
                .iter()
                .map(|fq| match &fq.engine {
                    Engine::Hardware(pipeline) => Some(HashFilter::new(pipeline.compiled())),
                    Engine::Software(_) => None,
                })
                .collect(),
            ranges: Vec::new(),
        }
    }
}

/// Fans one decompressed page out to every interested query: filter, then
/// materialize the matched lines. Pure in `text`, so each query's share is
/// exactly what its solo scan of the page would have produced.
fn fan_filter<'q>(
    queries: &[FanQuery<'q>],
    interested: &[usize],
    text: &[u8],
    filters: &mut [Option<HashFilter<'q>>],
    ranges: &mut Vec<Range<usize>>,
) -> Vec<(usize, Vec<String>, u64)> {
    let mut per_query = Vec::with_capacity(interested.len());
    for &q in interested {
        let lines_scanned = filter_page_into(&queries[q].engine, text, &mut filters[q], ranges);
        let mut lines = Vec::with_capacity(ranges.len());
        for range in ranges.iter() {
            lines.push(String::from_utf8_lossy(&text[range.clone()]).into_owned());
        }
        per_query.push((q, lines, lines_scanned));
    }
    per_query
}

/// One processed union slot: the page body plus the exact device cost of
/// loading it (read, retries, bytes) — the charge a solo scan of this page
/// would have paid.
struct FanSlot {
    cost: CostLedger,
    body: FanBody,
}

/// Scans the union of the queries' page plans, reading and decompressing
/// each distinct page once and fanning its text out to every query that
/// planned it (the paper's single flash stream feeding multiple pattern
/// matchers). Union pages are striped across the worker pool exactly like
/// [`scan_pages`].
///
/// **Determinism:** each query's output is byte-identical to scanning its
/// plan alone — page loading and filtering are the same pure per-page
/// functions solo scans use, and per-query results merge in that query's
/// plan order. Only the physical read count (the device ledger) changes
/// with sharing or cache hits. A cancelled query stops within one union
/// slot per worker and is charged only for pages it actually reached; live
/// co-batched queries are unaffected, because a slot's cost and filter
/// output never depend on how many queries fanned from it.
pub(crate) fn scan_pages_fanout<'q, S: PageStore>(
    ssd: &SimSsd<S>,
    lzah: LzahConfig,
    queries: &[FanQuery<'q>],
    threads: usize,
    cache: CacheView<'_>,
) -> FanoutResult {
    // Union of all plans, ascending by page id, with the interested query
    // indexes per page (ascending, since we insert in query order).
    let mut union: std::collections::BTreeMap<PageId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (q, fq) in queries.iter().enumerate() {
        for page in &fq.pages {
            union.entry(*page).or_default().push(q);
        }
    }
    let union: Vec<(PageId, Vec<usize>)> = union.into_iter().collect();
    let slot_of: std::collections::HashMap<PageId, usize> = union
        .iter()
        .enumerate()
        .map(|(i, (page, _))| (*page, i))
        .collect();

    let union_len = union.len();
    let workers = threads.max(1).min(union_len.max(1));
    let mut slots: Vec<Option<FanSlot>> = Vec::with_capacity(union_len);
    slots.resize_with(union_len, || None);
    let mut device_ledger = CostLedger::default();
    let mut errors: Vec<(usize, StorageError)> = Vec::new();

    let scan_slot = |reader: &mut SsdReader<'_, S>,
                     codec: &Lzah,
                     slot: usize,
                     scratch: &mut FanScratch<'q>,
                     hits: &mut HitTally|
     -> Result<FanSlot, StorageError> {
        let (page, interested) = &union[slot];
        // Queries cancelled by the time their slot comes up drop out of it:
        // they are neither filtered nor charged, and a slot every planner
        // abandoned is not read at all.
        let live: Vec<usize> = interested
            .iter()
            .copied()
            .filter(|&q| !queries[q].is_cancelled())
            .collect();
        if live.is_empty() {
            return Ok(FanSlot {
                cost: CostLedger::default(),
                body: FanBody::Abandoned,
            });
        }
        let before = *reader.ledger();
        let FanScratch {
            lzah: lz,
            filters,
            ranges,
        } = scratch;
        // Quarantine is checked before the cache so cached and uncached
        // runs agree: an uncached read would fail up front with zero
        // charges, so the slot skips for every live query at zero cost.
        if reader.is_quarantined(*page) {
            return Ok(FanSlot {
                cost: CostLedger::default(),
                body: FanBody::Skipped { interested: live },
            });
        }
        // An as-if-solo slot charge replayed on a cache hit: the full read
        // a fresh load of this page would have recorded.
        let mut hit_charge = None;
        let body = if let Some(cached) = cache_lookup(cache, page.0) {
            hits.pages += 1;
            hits.bytes += cached.raw_len;
            hit_charge = Some(cached.raw_len);
            FanBody::Scanned {
                bytes: cached.text.len() as u64,
                per_query: fan_filter(queries, &live, &cached.text, filters, ranges),
            }
        } else {
            match reader.read(*page) {
                Ok(raw) => match codec.decompress_into(&raw, lz) {
                    Ok(text) => {
                        cache_store(cache, page.0, text, raw.len() as u64);
                        FanBody::Scanned {
                            bytes: text.len() as u64,
                            per_query: fan_filter(queries, &live, text, filters, ranges),
                        }
                    }
                    // Corruption the checksum missed still gets caught by
                    // the decoder; one bad page is not worth the batch.
                    Err(_) => FanBody::Skipped { interested: live },
                },
                Err(e) if page_is_skippable(&e) => FanBody::Skipped { interested: live },
                Err(e) => return Err(e),
            }
        };
        let mut cost = reader.ledger().since(&before);
        if let Some(raw_len) = hit_charge {
            cost.pages_read += 1;
            cost.bytes_read += raw_len;
        }
        Ok(FanSlot { cost, body })
    };

    if workers <= 1 {
        let mut reader = ssd.reader();
        let codec = Lzah::new(lzah);
        let mut scratch = FanScratch::for_queries(queries);
        let mut hits = HitTally::default();
        for (slot, out) in slots.iter_mut().enumerate() {
            match scan_slot(&mut reader, &codec, slot, &mut scratch, &mut hits) {
                Ok(done) => *out = Some(done),
                Err(e) => {
                    errors.push((slot, e));
                    break;
                }
            }
        }
        device_ledger.merge(&hits.physical_charge(reader.into_ledger()));
    } else {
        struct FanWorker {
            scans: Vec<(usize, FanSlot)>,
            ledger: CostLedger,
            error: Option<(usize, StorageError)>,
        }
        let outputs: Vec<FanWorker> = thread::scope(|scope| {
            let scan_slot = &scan_slot;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = FanWorker {
                            scans: Vec::new(),
                            ledger: CostLedger::default(),
                            error: None,
                        };
                        let mut reader = ssd.reader();
                        let codec = Lzah::new(lzah);
                        let mut scratch = FanScratch::for_queries(queries);
                        let mut hits = HitTally::default();
                        for slot in (w..union_len).step_by(workers) {
                            match scan_slot(&mut reader, &codec, slot, &mut scratch, &mut hits) {
                                Ok(done) => out.scans.push((slot, done)),
                                Err(e) => {
                                    out.error = Some((slot, e));
                                    break;
                                }
                            }
                        }
                        out.ledger = hits.physical_charge(reader.into_ledger());
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fan-out scan worker panicked"))
                .collect()
        });
        for out in outputs {
            device_ledger.merge(&out.ledger);
            for (slot, done) in out.scans {
                slots[slot] = Some(done);
            }
            if let Some(err) = out.error {
                errors.push(err);
            }
        }
    }
    errors.sort_by_key(|(slot, _)| *slot);
    let error = errors.into_iter().next().map(|(_, e)| e);

    // Every processed page shared by k live queries saved k-1 physical
    // reads; abandoned slots issued no read and saved nothing.
    for done in slots.iter().flatten() {
        let fanned = match &done.body {
            FanBody::Scanned { per_query, .. } => per_query.len(),
            FanBody::Skipped { interested } => interested.len(),
            FanBody::Abandoned => 0,
        };
        device_ledger.shared_reads += (fanned as u64).saturating_sub(1);
    }

    // Per-query assembly, each in its own plan order. Lines were
    // materialized inside the page loop, so assembly only moves them. A
    // query absent from a slot's live set was cancelled before the slot
    // ran: it never scanned the page, so it is not charged for it.
    let results = queries
        .iter()
        .enumerate()
        .map(|(q, fq)| {
            let mut scan = FanoutQueryScan {
                lines: Vec::new(),
                line_pages: Vec::new(),
                skipped_pages: Vec::new(),
                lines_scanned: 0,
                bytes_filtered: 0,
                pages_filtered: 0,
                ledger: CostLedger::default(),
            };
            for page in &fq.pages {
                // A slot left empty means a worker stopped on a hard error;
                // the whole batch fails via `error`, so nothing to merge.
                let Some(done) = slots[slot_of[page]].as_mut() else {
                    continue;
                };
                match &mut done.body {
                    FanBody::Scanned { bytes, per_query } => {
                        let Some((_, matched, lines)) =
                            per_query.iter_mut().find(|(qi, _, _)| *qi == q)
                        else {
                            continue;
                        };
                        scan.ledger.merge(&done.cost);
                        scan.lines_scanned += *lines;
                        scan.bytes_filtered += *bytes;
                        scan.pages_filtered += 1;
                        let total = scan.line_pages.len() + matched.len();
                        scan.line_pages.resize(total, page.0);
                        scan.lines.extend(std::mem::take(matched));
                    }
                    FanBody::Skipped { interested } => {
                        if interested.contains(&q) {
                            scan.ledger.merge(&done.cost);
                            scan.skipped_pages.push(page.0);
                        }
                    }
                    FanBody::Abandoned => {}
                }
            }
            scan
        })
        .collect();

    FanoutResult {
        queries: results,
        device_ledger,
        error,
    }
}

/// Byte target for one ingest compression shard. Shard boundaries are a
/// deterministic function of the input alone — never of the worker count —
/// so the device page layout is identical no matter how many threads
/// compress it (seeded fault plans and the determinism tests rely on that).
/// One shard spans hundreds of 4 KB pages, amortizing the per-shard codec
/// reset to noise; inputs below the target compress exactly as before the
/// pool existed.
const COMPRESS_SHARD_BYTES: usize = 1 << 20;

/// Compresses `text` into page-sized LZAH frames using up to `threads`
/// workers: the input splits at line boundaries into fixed-size shards,
/// each shard compresses independently (pages already reset the codec's
/// hash table, so sharding costs no compression ratio), and the shards
/// return in input order. Concatenating every shard's pages yields frames
/// whose `raw_len`s tile `text` exactly, like a single `compress_paged`.
pub(crate) fn compress_paged_striped(
    text: &[u8],
    config: LzahConfig,
    page_bytes: usize,
    threads: usize,
) -> Vec<PagedLog> {
    let shards = shard_at_lines(text, COMPRESS_SHARD_BYTES);
    let workers = threads.max(1).min(shards.len().max(1));
    if workers <= 1 {
        return shards
            .into_iter()
            .map(|s| compress_paged(s, config, page_bytes))
            .collect();
    }
    let mut slots: Vec<Option<PagedLog>> = Vec::with_capacity(shards.len());
    slots.resize_with(shards.len(), || None);
    let compressed: Vec<(usize, PagedLog)> = thread::scope(|scope| {
        let shards = &shards;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..shards.len())
                        .step_by(workers)
                        .map(|i| (i, compress_paged(shards[i], config, page_bytes)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compression worker panicked"))
            .collect()
    });
    for (slot, paged) in compressed {
        slots[slot] = Some(paged);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every shard compressed"))
        .collect()
}

/// Splits `text` into chunks of roughly `target` bytes, never inside a
/// line. A single line longer than `target` stays whole in its shard.
fn shard_at_lines(text: &[u8], target: usize) -> Vec<&[u8]> {
    let mut shards = Vec::new();
    let mut start = 0usize;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end - 1] != b'\n' {
            end += 1;
        }
        shards.push(&text[start..end]);
        start = end;
    }
    if shards.is_empty() {
        shards.push(text);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_compress::Codec;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd_with_pages(texts: &[&str]) -> (SimSsd<MemStore>, Vec<PageId>) {
        let config = LzahConfig::default();
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let mut pages = Vec::new();
        for t in texts {
            let paged = compress_paged(t.as_bytes(), config, 4096);
            for frame in paged.pages() {
                pages.push(ssd.append(frame.data()).unwrap());
            }
        }
        (ssd, pages)
    }

    #[test]
    fn parallel_scan_matches_sequential_exactly() {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("alpha event {i}\nbeta event {i}\ngamma noise {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("event AND NOT beta").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let engine = Engine::Hardware(&pipeline);
        let seq = scan_pages(&ssd, LzahConfig::default(), &engine, &pages, 1, None, None);
        for threads in [2, 3, 4, 8] {
            let par = scan_pages(
                &ssd,
                LzahConfig::default(),
                &engine,
                &pages,
                threads,
                None,
                None,
            );
            assert_eq!(par.lines, seq.lines, "{threads} threads");
            assert_eq!(par.lines_scanned, seq.lines_scanned);
            assert_eq!(par.bytes_filtered, seq.bytes_filtered);
            assert_eq!(par.ledger, seq.ledger);
            assert_eq!(par.skipped_pages, seq.skipped_pages);
        }
        assert_eq!(seq.lines.len(), 12);
        assert!(seq.lines[0].contains("alpha event 0"));
    }

    #[test]
    fn fanout_matches_solo_scans_and_dedupes_device_reads() {
        let texts: Vec<String> = (0..10)
            .map(|i| format!("alpha event {i}\nbeta event {i}\ngamma noise {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let qa = mithrilog_query::parse("alpha").unwrap();
        let qb = mithrilog_query::parse("event AND NOT beta").unwrap();
        let pa = FilterPipeline::compile(&qa).unwrap();
        let pb = FilterPipeline::compile(&qb).unwrap();
        // Overlapping plans: query A wants pages [0..8), B wants [4..10).
        let plan_a = pages[..8].to_vec();
        let plan_b = pages[4..].to_vec();
        let lzah = LzahConfig::default();

        let solo_a = scan_pages(&ssd, lzah, &Engine::Hardware(&pa), &plan_a, 3, None, None);
        let solo_b = scan_pages(&ssd, lzah, &Engine::Hardware(&pb), &plan_b, 3, None, None);
        for threads in [1, 3, 8] {
            let fan = scan_pages_fanout(
                &ssd,
                lzah,
                &[
                    FanQuery {
                        engine: Engine::Hardware(&pa),
                        pages: plan_a.clone(),
                        cancel: None,
                    },
                    FanQuery {
                        engine: Engine::Hardware(&pb),
                        pages: plan_b.clone(),
                        cancel: None,
                    },
                ],
                threads,
                None,
            );
            assert!(fan.error.is_none());
            for (got, want) in fan.queries.iter().zip([&solo_a, &solo_b]) {
                assert_eq!(got.lines, want.lines, "{threads} threads");
                assert_eq!(got.lines_scanned, want.lines_scanned);
                assert_eq!(got.bytes_filtered, want.bytes_filtered);
                assert_eq!(got.skipped_pages, want.skipped_pages);
                // As-if-solo charges match the solo ledger exactly.
                assert_eq!(got.ledger, want.ledger);
            }
            // Physically: 10 distinct pages read once; the 4 overlapping
            // pages each saved one duplicate read.
            assert_eq!(fan.device_ledger.pages_read, 10);
            assert_eq!(fan.device_ledger.shared_reads, 4);
            assert_eq!(fan.device_ledger.demanded_reads(), 14);
            assert!(
                fan.device_ledger.pages_read < solo_a.ledger.pages_read + solo_b.ledger.pages_read
            );
        }
    }

    #[test]
    fn software_engine_agrees_with_hardware_engine() {
        let texts: Vec<String> = (0..6)
            .map(|i| format!("RAS KERNEL INFO ok {i}\nRAS KERNEL FATAL bad {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("FATAL").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let hw = scan_pages(
            &ssd,
            LzahConfig::default(),
            &Engine::Hardware(&pipeline),
            &pages,
            3,
            None,
            None,
        );
        let sw = scan_pages(
            &ssd,
            LzahConfig::default(),
            &Engine::Software(&query),
            &pages,
            3,
            None,
            None,
        );
        assert_eq!(hw.lines, sw.lines);
        assert_eq!(hw.lines_scanned, sw.lines_scanned);
    }

    #[test]
    fn engines_agree_on_invalid_utf8_lines() {
        // Lines with invalid UTF-8 bytes around valid tokens: the software
        // engine's borrowed fast path must fall back to the lossy copy and
        // agree with the hardware engine byte-for-byte.
        let mut text = Vec::new();
        text.extend_from_slice(b"RAS KERNEL FATAL broken \xff\xfe sensor\n");
        text.extend_from_slice(b"RAS KERNEL INFO fine \xf0\x28\x8c\x28 reading\n");
        text.extend_from_slice(b"RAS KERNEL FATAL clean line\n");
        let config = LzahConfig::default();
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let mut pages = Vec::new();
        for frame in compress_paged(&text, config, 4096).pages() {
            pages.push(ssd.append(frame.data()).unwrap());
        }
        let query = mithrilog_query::parse("FATAL").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let hw = scan_pages(
            &ssd,
            config,
            &Engine::Hardware(&pipeline),
            &pages,
            1,
            None,
            None,
        );
        let sw = scan_pages(
            &ssd,
            config,
            &Engine::Software(&query),
            &pages,
            1,
            None,
            None,
        );
        assert_eq!(hw.lines, sw.lines);
        assert_eq!(hw.lines_scanned, sw.lines_scanned);
        assert_eq!(sw.lines.len(), 2);
        assert!(sw.lines[0].contains('\u{FFFD}'), "lossy replacement kept");
    }

    #[test]
    fn cache_hits_leave_results_and_solo_ledgers_identical() {
        let texts: Vec<String> = (0..8)
            .map(|i| format!("alpha event {i}\nbeta event {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("alpha").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let engine = Engine::Hardware(&pipeline);
        let lzah = LzahConfig::default();
        let cold = scan_pages(&ssd, lzah, &engine, &pages, 3, None, None);

        let cache = PageCache::new(1 << 20);
        let view: CacheView<'_> = Some((&cache, GenMap::Uniform(7)));
        let warm_up = scan_pages(&ssd, lzah, &engine, &pages, 3, view, None);
        assert_eq!(warm_up.lines, cold.lines);
        assert_eq!(warm_up.ledger, cold.ledger, "cold cache: identical run");
        assert_eq!(warm_up.physical.cache_hits, 0);

        let warm = scan_pages(&ssd, lzah, &engine, &pages, 3, view, None);
        assert_eq!(warm.lines, cold.lines);
        assert_eq!(warm.lines_scanned, cold.lines_scanned);
        assert_eq!(warm.bytes_filtered, cold.bytes_filtered);
        // As-if-solo ledger is byte-identical; the physical ledger shows
        // every read served from the cache instead of the device.
        assert_eq!(warm.ledger, cold.ledger);
        assert_eq!(warm.physical.pages_read, 0);
        assert_eq!(warm.physical.cache_hits, pages.len() as u64);
        assert_eq!(warm.physical.cache_bytes_saved, cold.ledger.bytes_read);
        assert_eq!(warm.physical.demanded_reads(), cold.ledger.pages_read);

        // A different generation never sees the cached text.
        let stale: CacheView<'_> = Some((&cache, GenMap::Uniform(8)));
        let fresh = scan_pages(&ssd, lzah, &engine, &pages, 3, stale, None);
        assert_eq!(fresh.physical.cache_hits, 0);
        assert_eq!(fresh.physical.pages_read, cold.ledger.pages_read);
    }

    #[test]
    fn fanout_cache_hits_preserve_solo_accounting() {
        let texts: Vec<String> = (0..10)
            .map(|i| format!("alpha event {i}\nbeta event {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let qa = mithrilog_query::parse("alpha").unwrap();
        let qb = mithrilog_query::parse("beta").unwrap();
        let pa = FilterPipeline::compile(&qa).unwrap();
        let pb = FilterPipeline::compile(&qb).unwrap();
        let plan_a = pages[..8].to_vec();
        let plan_b = pages[4..].to_vec();
        let lzah = LzahConfig::default();
        let queries = [
            FanQuery {
                engine: Engine::Hardware(&pa),
                pages: plan_a.clone(),
                cancel: None,
            },
            FanQuery {
                engine: Engine::Hardware(&pb),
                pages: plan_b.clone(),
                cancel: None,
            },
        ];
        let cold = scan_pages_fanout(&ssd, lzah, &queries, 3, None);

        let cache = PageCache::new(1 << 20);
        let view: CacheView<'_> = Some((&cache, GenMap::Uniform(1)));
        let warm_up = scan_pages_fanout(&ssd, lzah, &queries, 3, view);
        let warm = scan_pages_fanout(&ssd, lzah, &queries, 3, view);
        for run in [&warm_up, &warm] {
            for (got, want) in run.queries.iter().zip(&cold.queries) {
                assert_eq!(got.lines, want.lines);
                assert_eq!(got.ledger, want.ledger, "as-if-solo must not move");
            }
        }
        // Fully warm: zero physical reads, one hit per union page, and the
        // same demanded total (10 union + 4 overlap) as the cold run.
        assert_eq!(warm.device_ledger.pages_read, 0);
        assert_eq!(warm.device_ledger.cache_hits, 10);
        assert_eq!(warm.device_ledger.shared_reads, 4);
        assert_eq!(warm.device_ledger.demanded_reads(), 14);
        assert_eq!(cold.device_ledger.demanded_reads(), 14);
    }

    #[test]
    fn pre_cancelled_scan_visits_no_pages() {
        let texts: Vec<String> = (0..6).map(|i| format!("alpha event {i}\n")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("alpha").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let engine = Engine::Hardware(&pipeline);
        let token = CancelToken::new();
        token.cancel();
        for threads in [1, 4] {
            let out = scan_pages(
                &ssd,
                LzahConfig::default(),
                &engine,
                &pages,
                threads,
                None,
                Some(&token),
            );
            assert!(out.lines.is_empty(), "{threads} threads");
            assert_eq!(out.pages_filtered, 0);
            assert_eq!(out.ledger, CostLedger::default());
            assert!(out.error.is_none());
        }
    }

    #[test]
    fn quarantined_pages_skip_at_zero_cost_even_with_a_warm_cache() {
        let texts: Vec<String> = (0..4).map(|i| format!("alpha event {i}\n")).collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (mut ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("alpha").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let lzah = LzahConfig::default();

        // Warm the cache with every page, then quarantine one of them.
        let cache = PageCache::new(1 << 20);
        let view: CacheView<'_> = Some((&cache, GenMap::Uniform(1)));
        {
            let engine = Engine::Hardware(&pipeline);
            scan_pages(&ssd, lzah, &engine, &pages, 1, view, None);
        }
        let victim = pages[1];
        ssd.quarantine_page(victim.0);

        // Cached and uncached runs agree: the quarantined page is skipped
        // with zero charges in both, even though its text is still cached.
        let engine = Engine::Hardware(&pipeline);
        let cached = scan_pages(&ssd, lzah, &engine, &pages, 1, view, None);
        let uncached = scan_pages(&ssd, lzah, &engine, &pages, 1, None, None);
        assert_eq!(cached.skipped_pages, vec![victim.0]);
        assert_eq!(cached.lines, uncached.lines);
        assert_eq!(cached.skipped_pages, uncached.skipped_pages);
        assert_eq!(cached.ledger, uncached.ledger, "as-if-solo must agree");
        assert_eq!(uncached.ledger.pages_read, pages.len() as u64 - 1);

        // Fan-out path agrees too.
        let fan = scan_pages_fanout(
            &ssd,
            lzah,
            &[FanQuery {
                engine: Engine::Hardware(&pipeline),
                pages: pages.clone(),
                cancel: None,
            }],
            1,
            view,
        );
        assert!(fan.error.is_none());
        assert_eq!(fan.queries[0].lines, uncached.lines);
        assert_eq!(fan.queries[0].skipped_pages, uncached.skipped_pages);
        assert_eq!(fan.queries[0].ledger, uncached.ledger);
    }

    #[test]
    fn cancelled_fanout_query_leaves_live_queries_byte_identical() {
        let texts: Vec<String> = (0..10)
            .map(|i| format!("alpha event {i}\nbeta event {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let qa = mithrilog_query::parse("alpha").unwrap();
        let qb = mithrilog_query::parse("beta").unwrap();
        let pa = FilterPipeline::compile(&qa).unwrap();
        let pb = FilterPipeline::compile(&qb).unwrap();
        let lzah = LzahConfig::default();
        let solo_a = scan_pages(&ssd, lzah, &Engine::Hardware(&pa), &pages, 3, None, None);

        // Query B is cancelled before the wave starts; A shares every page.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let fan = scan_pages_fanout(
            &ssd,
            lzah,
            &[
                FanQuery {
                    engine: Engine::Hardware(&pa),
                    pages: pages.clone(),
                    cancel: None,
                },
                FanQuery {
                    engine: Engine::Hardware(&pb),
                    pages: pages.clone(),
                    cancel: Some(cancelled),
                },
            ],
            3,
            None,
        );
        assert!(fan.error.is_none());
        // The live query is byte-identical to its solo run.
        assert_eq!(fan.queries[0].lines, solo_a.lines);
        assert_eq!(fan.queries[0].ledger, solo_a.ledger);
        // The cancelled query scanned nothing and was charged nothing.
        assert!(fan.queries[1].lines.is_empty());
        assert_eq!(fan.queries[1].ledger, CostLedger::default());
        // No duplicate reads were saved: only one query was live per slot.
        assert_eq!(fan.device_ledger.shared_reads, 0);
        assert_eq!(fan.device_ledger.pages_read, pages.len() as u64);
    }

    #[test]
    fn sharded_compression_tiles_the_input_exactly() {
        let mut text = Vec::new();
        for i in 0..40_000 {
            text.extend_from_slice(
                format!("log line number {i} with some routine text\n").as_bytes(),
            );
        }
        assert!(text.len() > COMPRESS_SHARD_BYTES, "must span shards");
        for threads in [1, 2, 4] {
            let shards = compress_paged_striped(&text, LzahConfig::default(), 4096, threads);
            let mut rebuilt = Vec::new();
            for frame in shards.iter().flat_map(|p| p.pages()) {
                rebuilt.extend_from_slice(&Lzah::default().decompress(frame.data()).unwrap());
            }
            assert_eq!(rebuilt, text, "{threads} threads");
        }
        // Layout is a function of the input, not of the worker count.
        let one = compress_paged_striped(&text, LzahConfig::default(), 4096, 1);
        let four = compress_paged_striped(&text, LzahConfig::default(), 4096, 4);
        let frames = |logs: &[PagedLog]| {
            logs.iter()
                .flat_map(|p| p.pages())
                .map(|f| f.data().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(frames(&one), frames(&four));
    }

    #[test]
    fn small_inputs_compress_identically_to_the_unsharded_path() {
        let text = b"alpha\nbeta\ngamma\n".repeat(50);
        let sharded = compress_paged_striped(&text, LzahConfig::default(), 4096, 4);
        let direct = compress_paged(&text, LzahConfig::default(), 4096);
        assert_eq!(sharded.len(), 1);
        let a: Vec<Vec<u8>> = sharded[0]
            .pages()
            .iter()
            .map(|f| f.data().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = direct.pages().iter().map(|f| f.data().to_vec()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_boundaries_respect_lines() {
        let text = b"0123456789\nabcdefghij\nklmnopqrst\n".repeat(10);
        let shards = shard_at_lines(&text, 40);
        assert!(shards.len() > 1);
        let rebuilt: Vec<u8> = shards.concat();
        assert_eq!(rebuilt, text);
        for shard in &shards {
            assert_eq!(*shard.last().unwrap(), b'\n');
        }
    }
}
