//! Parallel multi-pipeline execution engine (paper §5, Figure 7).
//!
//! The prototype instantiates N token-filter pipelines, each fed by its own
//! flash channel, and saturates the device's internal bandwidth by keeping
//! all N busy. This module is the software realization of that dataflow: a
//! fixed-size pool of scoped worker threads, one per modeled channel
//! (`SystemConfig::query_threads`), over which the query page plan is
//! striped round-robin — page *i* of the plan rides channel `i mod N`,
//! exactly how pages interleave across flash channels on the device.
//!
//! Each worker owns a complete pipeline replica: a private
//! [`SsdReader`] (shared-access reads with a thread-local cost ledger), a
//! thread-local LZAH codec, and the compiled filter (shared immutably —
//! filtering is `&self`). Workers never exchange state mid-scan.
//!
//! **Determinism invariant:** the merged result is byte-identical to a
//! sequential scan for every worker count. Three properties guarantee it:
//!
//! 1. page outcomes (matched line ranges, skip decisions, retry counts) are
//!    pure per-page functions — no cross-page state exists in the scan;
//! 2. results merge in plan order (by slot), so matched lines and
//!    `skipped_pages` keep exactly the sequential order;
//! 3. ledger counters are additive, so per-worker ledgers merged in any
//!    order sum to the sequential totals.
//!
//! Matched lines are carried as byte ranges into each page's decompressed
//! text and materialized into `String`s once, after the merge — a single
//! exact-capacity allocation pass instead of a per-line allocation inside
//! the scan loop.

use std::ops::Range;
use std::thread;

use mithrilog_compress::{compress_paged, Codec, Lzah, LzahConfig, PagedLog};
use mithrilog_filter::FilterPipeline;
use mithrilog_query::Query;
use mithrilog_storage::{CostLedger, PageId, PageStore, SimSsd, SsdReader, StorageError};

/// Whether a storage error is survivable by skipping the affected page:
/// corruption and exhausted transient retries lose one page of data;
/// anything else (out-of-range access, host I/O failure) is a real bug or
/// environment failure and must propagate.
pub(crate) fn page_is_skippable(e: &StorageError) -> bool {
    matches!(
        e,
        StorageError::Corrupt { .. } | StorageError::TransientRead { .. }
    )
}

/// The filtering engine a scan runs with: the compiled hardware pipeline
/// when the query fit the filter's resources, or the software evaluator
/// otherwise. Shared immutably across workers; each evaluation builds its
/// own per-line filter state, so `&self` access is enough.
pub(crate) enum Engine<'q> {
    /// Offloaded path: the cuckoo-hash filter model.
    Hardware(&'q FilterPipeline),
    /// Fallback path: reference software evaluation of the query AST.
    Software(&'q Query),
}

/// Outcome of scanning one page.
enum Scanned {
    /// The page decompressed and was filtered.
    Page(PageScan),
    /// The page was skipped (corrupt, unreadable, or undecompressible).
    Skipped(u64),
}

/// One filtered page: its decompressed text plus the matched line ranges.
struct PageScan {
    text: Vec<u8>,
    /// Byte ranges of matching lines within `text`, in line order.
    matches: Vec<Range<usize>>,
    lines_scanned: u64,
}

/// Merged result of a (possibly parallel) page scan.
pub(crate) struct ScanResult {
    /// Matching lines in plan order, materialized once after the merge.
    pub lines: Vec<String>,
    /// Skipped page ids, in plan order.
    pub skipped_pages: Vec<u64>,
    /// Lines examined across all scanned pages.
    pub lines_scanned: u64,
    /// Decompressed bytes pushed through the filter.
    pub bytes_filtered: u64,
    /// Pages that decompressed and were filtered (excludes skips).
    pub pages_filtered: u64,
    /// Summed per-worker device costs; fold into the device with
    /// [`SimSsd::merge_ledger`].
    pub ledger: CostLedger,
    /// First non-survivable storage error, by plan position. The ledger
    /// above still accounts every read issued before workers stopped.
    pub error: Option<StorageError>,
}

/// Scans `pages` through `engine`, striped across `threads` workers.
///
/// `threads == 1` runs the identical per-page code inline (no threads
/// spawned); any `threads >= 1` produces byte-identical results — see the
/// module docs for the determinism argument.
pub(crate) fn scan_pages<S: PageStore>(
    ssd: &SimSsd<S>,
    lzah: LzahConfig,
    engine: &Engine<'_>,
    pages: &[PageId],
    threads: usize,
) -> ScanResult {
    let workers = threads.max(1).min(pages.len().max(1));
    let mut slots: Vec<Option<Scanned>> = Vec::with_capacity(pages.len());
    slots.resize_with(pages.len(), || None);
    let mut ledger = CostLedger::default();
    // (plan position, error) pairs; the earliest plan position wins so the
    // propagated error does not depend on worker interleaving.
    let mut errors: Vec<(usize, StorageError)> = Vec::new();

    if workers <= 1 {
        let mut reader = ssd.reader();
        let codec = Lzah::new(lzah);
        for (slot, page) in pages.iter().enumerate() {
            match scan_one(&mut reader, &codec, engine, *page) {
                Ok(scanned) => slots[slot] = Some(scanned),
                Err(e) => {
                    errors.push((slot, e));
                    break;
                }
            }
        }
        ledger.merge(&reader.into_ledger());
    } else {
        let outputs: Vec<WorkerOutput> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = WorkerOutput::default();
                        let mut reader = ssd.reader();
                        let codec = Lzah::new(lzah);
                        for slot in (w..pages.len()).step_by(workers) {
                            match scan_one(&mut reader, &codec, engine, pages[slot]) {
                                Ok(scanned) => out.scans.push((slot, scanned)),
                                Err(e) => {
                                    out.error = Some((slot, e));
                                    break;
                                }
                            }
                        }
                        out.ledger = reader.into_ledger();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .collect()
        });
        for out in outputs {
            ledger.merge(&out.ledger);
            for (slot, scanned) in out.scans {
                slots[slot] = Some(scanned);
            }
            if let Some(err) = out.error {
                errors.push(err);
            }
        }
    }
    errors.sort_by_key(|(slot, _)| *slot);
    let error = errors.into_iter().next().map(|(_, e)| e);

    // Order-preserving merge, then one exact-capacity materialization pass.
    let mut result = ScanResult {
        lines: Vec::new(),
        skipped_pages: Vec::new(),
        lines_scanned: 0,
        bytes_filtered: 0,
        pages_filtered: 0,
        ledger,
        error,
    };
    let total_matches: usize = slots
        .iter()
        .flatten()
        .map(|s| match s {
            Scanned::Page(p) => p.matches.len(),
            Scanned::Skipped(_) => 0,
        })
        .sum();
    result.lines.reserve_exact(total_matches);
    for scanned in slots.into_iter().flatten() {
        match scanned {
            Scanned::Page(p) => {
                result.lines_scanned += p.lines_scanned;
                result.bytes_filtered += p.text.len() as u64;
                result.pages_filtered += 1;
                for range in &p.matches {
                    result
                        .lines
                        .push(String::from_utf8_lossy(&p.text[range.clone()]).into_owned());
                }
            }
            Scanned::Skipped(page) => result.skipped_pages.push(page),
        }
    }
    result
}

#[derive(Default)]
struct WorkerOutput {
    scans: Vec<(usize, Scanned)>,
    ledger: CostLedger,
    error: Option<(usize, StorageError)>,
}

/// One worker step: read → decompress → filter a single page. Pure in the
/// page id given the device contents, so striping cannot change results.
fn scan_one<S: PageStore>(
    reader: &mut SsdReader<'_, S>,
    codec: &Lzah,
    engine: &Engine<'_>,
    page: PageId,
) -> Result<Scanned, StorageError> {
    let text = match load_page(reader, codec, page)? {
        Some(text) => text,
        None => return Ok(Scanned::Skipped(page.0)),
    };
    let (matches, lines_scanned) = filter_page(engine, &text);
    Ok(Scanned::Page(PageScan {
        text,
        matches,
        lines_scanned,
    }))
}

/// The load half of a page scan: read (with retries) and decompress.
/// `Ok(None)` means the page is survivably lost (corrupt, unreadable after
/// retries, or undecompressible) and should be skipped.
fn load_page<S: PageStore>(
    reader: &mut SsdReader<'_, S>,
    codec: &Lzah,
    page: PageId,
) -> Result<Option<Vec<u8>>, StorageError> {
    let raw = match reader.read(page) {
        Ok(raw) => raw,
        Err(e) if page_is_skippable(&e) => return Ok(None),
        Err(e) => return Err(e),
    };
    // Corruption the checksum missed (or pages written before the sidecar
    // existed) still gets caught by the decoder's internal consistency
    // checks; one bad page is not worth the query.
    match codec.decompress(&raw) {
        Ok(text) => Ok(Some(text)),
        Err(_) => Ok(None),
    }
}

/// The filter half of a page scan: run `engine` over decompressed `text`,
/// returning the matched line ranges and the number of lines examined. Pure
/// in `text`, so the same page fanned out to N queries produces exactly what
/// N solo scans would have.
fn filter_page(engine: &Engine<'_>, text: &[u8]) -> (Vec<Range<usize>>, u64) {
    let base = text.as_ptr() as usize;
    let mut matches = Vec::new();
    let mut lines_scanned = 0u64;
    match engine {
        Engine::Hardware(pipeline) => {
            let (kept, stats) = pipeline.filter_text_with_stats(text);
            lines_scanned = stats.lines_in;
            matches.reserve_exact(kept.len());
            for line in kept {
                let start = line.as_ptr() as usize - base;
                matches.push(start..start + line.len());
            }
        }
        Engine::Software(query) => {
            for line in text.split(|b| *b == b'\n') {
                if line.is_empty() {
                    continue;
                }
                lines_scanned += 1;
                let s = String::from_utf8_lossy(line);
                if query.matches_line(&s) {
                    let start = line.as_ptr() as usize - base;
                    matches.push(start..start + line.len());
                }
            }
        }
    }
    (matches, lines_scanned)
}

/// Per-query result of a cross-query shared scan ([`scan_pages_fanout`]).
pub(crate) struct FanoutQueryScan {
    /// Matching lines in this query's plan order, materialized once.
    pub lines: Vec<String>,
    /// Skipped page ids, in this query's plan order.
    pub skipped_pages: Vec<u64>,
    /// Lines examined across this query's scanned pages.
    pub lines_scanned: u64,
    /// Decompressed bytes this query's filter consumed.
    pub bytes_filtered: u64,
    /// Pages that decompressed and were filtered for this query.
    pub pages_filtered: u64,
    /// As-if-solo charges: every page this query planned is charged in
    /// full, exactly as a solo scan would have, even when the physical read
    /// was shared. Shared-read savings live on the device ledger instead.
    pub ledger: CostLedger,
}

/// Merged result of a cross-query shared scan.
pub(crate) struct FanoutResult {
    /// One scan result per input query, in input order.
    pub queries: Vec<FanoutQueryScan>,
    /// Physical device charges: each union page read once, plus
    /// `shared_reads` counting every duplicate read the fan-out avoided.
    /// Fold into the device with [`SimSsd::merge_ledger`].
    pub device_ledger: CostLedger,
    /// First non-survivable storage error, by union plan position.
    pub error: Option<StorageError>,
}

/// Outcome of loading one union page in a fan-out scan.
enum FanBody {
    /// The page decompressed; `per_query` holds, for each interested query
    /// index, the matched ranges into `text` and the lines examined.
    Scanned {
        text: Vec<u8>,
        per_query: Vec<(usize, Vec<Range<usize>>, u64)>,
    },
    /// The page is survivably lost for every query that planned it.
    Skipped,
}

/// One processed union slot: the page body plus the exact device cost of
/// loading it (read, retries, bytes) — the charge a solo scan of this page
/// would have paid.
struct FanSlot {
    cost: CostLedger,
    body: FanBody,
}

/// Scans the union of the queries' page plans, reading and decompressing
/// each distinct page once and fanning its text out to every query that
/// planned it (the paper's single flash stream feeding multiple pattern
/// matchers). Union pages are striped across the worker pool exactly like
/// [`scan_pages`].
///
/// **Determinism:** each query's output is byte-identical to scanning its
/// plan alone — page loading and filtering are the same pure per-page
/// functions solo scans use ([`load_page`], [`filter_page`]), and per-query
/// results merge in that query's plan order. Only the physical read count
/// (the device ledger) changes with sharing.
pub(crate) fn scan_pages_fanout<S: PageStore>(
    ssd: &SimSsd<S>,
    lzah: LzahConfig,
    queries: &[(Engine<'_>, Vec<PageId>)],
    threads: usize,
) -> FanoutResult {
    // Union of all plans, ascending by page id, with the interested query
    // indexes per page (ascending, since we insert in query order).
    let mut union: std::collections::BTreeMap<PageId, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (q, (_, pages)) in queries.iter().enumerate() {
        for page in pages {
            union.entry(*page).or_default().push(q);
        }
    }
    let union: Vec<(PageId, Vec<usize>)> = union.into_iter().collect();
    let slot_of: std::collections::HashMap<PageId, usize> = union
        .iter()
        .enumerate()
        .map(|(i, (page, _))| (*page, i))
        .collect();

    let union_len = union.len();
    let workers = threads.max(1).min(union_len.max(1));
    let mut slots: Vec<Option<FanSlot>> = Vec::with_capacity(union_len);
    slots.resize_with(union_len, || None);
    let mut device_ledger = CostLedger::default();
    let mut errors: Vec<(usize, StorageError)> = Vec::new();

    let scan_slot = |reader: &mut SsdReader<'_, S>,
                     codec: &Lzah,
                     slot: usize|
     -> Result<FanSlot, StorageError> {
        let (page, interested) = &union[slot];
        let before = *reader.ledger();
        let body = match load_page(reader, codec, *page)? {
            Some(text) => {
                let per_query = interested
                    .iter()
                    .map(|&q| {
                        let (matches, lines) = filter_page(&queries[q].0, &text);
                        (q, matches, lines)
                    })
                    .collect();
                FanBody::Scanned { text, per_query }
            }
            None => FanBody::Skipped,
        };
        Ok(FanSlot {
            cost: reader.ledger().since(&before),
            body,
        })
    };

    if workers <= 1 {
        let mut reader = ssd.reader();
        let codec = Lzah::new(lzah);
        for (slot, out) in slots.iter_mut().enumerate() {
            match scan_slot(&mut reader, &codec, slot) {
                Ok(done) => *out = Some(done),
                Err(e) => {
                    errors.push((slot, e));
                    break;
                }
            }
        }
        device_ledger.merge(&reader.into_ledger());
    } else {
        struct FanWorker {
            scans: Vec<(usize, FanSlot)>,
            ledger: CostLedger,
            error: Option<(usize, StorageError)>,
        }
        let outputs: Vec<FanWorker> = thread::scope(|scope| {
            let scan_slot = &scan_slot;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = FanWorker {
                            scans: Vec::new(),
                            ledger: CostLedger::default(),
                            error: None,
                        };
                        let mut reader = ssd.reader();
                        let codec = Lzah::new(lzah);
                        for slot in (w..union_len).step_by(workers) {
                            match scan_slot(&mut reader, &codec, slot) {
                                Ok(done) => out.scans.push((slot, done)),
                                Err(e) => {
                                    out.error = Some((slot, e));
                                    break;
                                }
                            }
                        }
                        out.ledger = reader.into_ledger();
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("fan-out scan worker panicked"))
                .collect()
        });
        for out in outputs {
            device_ledger.merge(&out.ledger);
            for (slot, done) in out.scans {
                slots[slot] = Some(done);
            }
            if let Some(err) = out.error {
                errors.push(err);
            }
        }
    }
    errors.sort_by_key(|(slot, _)| *slot);
    let error = errors.into_iter().next().map(|(_, e)| e);

    // Every processed page shared by k queries saved k-1 physical reads.
    for (slot, (_, interested)) in union.iter().enumerate() {
        if slots[slot].is_some() {
            device_ledger.shared_reads += interested.len() as u64 - 1;
        }
    }

    // Per-query assembly, each in its own plan order.
    let results = queries
        .iter()
        .enumerate()
        .map(|(q, (_, pages))| {
            let mut scan = FanoutQueryScan {
                lines: Vec::new(),
                skipped_pages: Vec::new(),
                lines_scanned: 0,
                bytes_filtered: 0,
                pages_filtered: 0,
                ledger: CostLedger::default(),
            };
            let total_matches: usize = pages
                .iter()
                .filter_map(|page| slots[slot_of[page]].as_ref())
                .map(|done| match &done.body {
                    FanBody::Scanned { per_query, .. } => per_query
                        .iter()
                        .find(|(qi, _, _)| *qi == q)
                        .map_or(0, |(_, m, _)| m.len()),
                    FanBody::Skipped => 0,
                })
                .sum();
            scan.lines.reserve_exact(total_matches);
            for page in pages {
                // A slot left empty means a worker stopped on a hard error;
                // the whole batch fails via `error`, so nothing to merge.
                let Some(done) = slots[slot_of[page]].as_ref() else {
                    continue;
                };
                scan.ledger.merge(&done.cost);
                match &done.body {
                    FanBody::Scanned { text, per_query } => {
                        let (_, matches, lines) = per_query
                            .iter()
                            .find(|(qi, _, _)| *qi == q)
                            .expect("every interested query has a filter result");
                        scan.lines_scanned += lines;
                        scan.bytes_filtered += text.len() as u64;
                        scan.pages_filtered += 1;
                        for range in matches {
                            scan.lines
                                .push(String::from_utf8_lossy(&text[range.clone()]).into_owned());
                        }
                    }
                    FanBody::Skipped => scan.skipped_pages.push(page.0),
                }
            }
            scan
        })
        .collect();

    FanoutResult {
        queries: results,
        device_ledger,
        error,
    }
}

/// Byte target for one ingest compression shard. Shard boundaries are a
/// deterministic function of the input alone — never of the worker count —
/// so the device page layout is identical no matter how many threads
/// compress it (seeded fault plans and the determinism tests rely on that).
/// One shard spans hundreds of 4 KB pages, amortizing the per-shard codec
/// reset to noise; inputs below the target compress exactly as before the
/// pool existed.
const COMPRESS_SHARD_BYTES: usize = 1 << 20;

/// Compresses `text` into page-sized LZAH frames using up to `threads`
/// workers: the input splits at line boundaries into fixed-size shards,
/// each shard compresses independently (pages already reset the codec's
/// hash table, so sharding costs no compression ratio), and the shards
/// return in input order. Concatenating every shard's pages yields frames
/// whose `raw_len`s tile `text` exactly, like a single `compress_paged`.
pub(crate) fn compress_paged_striped(
    text: &[u8],
    config: LzahConfig,
    page_bytes: usize,
    threads: usize,
) -> Vec<PagedLog> {
    let shards = shard_at_lines(text, COMPRESS_SHARD_BYTES);
    let workers = threads.max(1).min(shards.len().max(1));
    if workers <= 1 {
        return shards
            .into_iter()
            .map(|s| compress_paged(s, config, page_bytes))
            .collect();
    }
    let mut slots: Vec<Option<PagedLog>> = Vec::with_capacity(shards.len());
    slots.resize_with(shards.len(), || None);
    let compressed: Vec<(usize, PagedLog)> = thread::scope(|scope| {
        let shards = &shards;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    (w..shards.len())
                        .step_by(workers)
                        .map(|i| (i, compress_paged(shards[i], config, page_bytes)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("compression worker panicked"))
            .collect()
    });
    for (slot, paged) in compressed {
        slots[slot] = Some(paged);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every shard compressed"))
        .collect()
}

/// Splits `text` into chunks of roughly `target` bytes, never inside a
/// line. A single line longer than `target` stays whole in its shard.
fn shard_at_lines(text: &[u8], target: usize) -> Vec<&[u8]> {
    let mut shards = Vec::new();
    let mut start = 0usize;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end - 1] != b'\n' {
            end += 1;
        }
        shards.push(&text[start..end]);
        start = end;
    }
    if shards.is_empty() {
        shards.push(text);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_storage::{DevicePerfModel, MemStore};

    fn ssd_with_pages(texts: &[&str]) -> (SimSsd<MemStore>, Vec<PageId>) {
        let config = LzahConfig::default();
        let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype());
        let mut pages = Vec::new();
        for t in texts {
            let paged = compress_paged(t.as_bytes(), config, 4096);
            for frame in paged.pages() {
                pages.push(ssd.append(frame.data()).unwrap());
            }
        }
        (ssd, pages)
    }

    #[test]
    fn parallel_scan_matches_sequential_exactly() {
        let texts: Vec<String> = (0..12)
            .map(|i| format!("alpha event {i}\nbeta event {i}\ngamma noise {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("event AND NOT beta").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let engine = Engine::Hardware(&pipeline);
        let seq = scan_pages(&ssd, LzahConfig::default(), &engine, &pages, 1);
        for threads in [2, 3, 4, 8] {
            let par = scan_pages(&ssd, LzahConfig::default(), &engine, &pages, threads);
            assert_eq!(par.lines, seq.lines, "{threads} threads");
            assert_eq!(par.lines_scanned, seq.lines_scanned);
            assert_eq!(par.bytes_filtered, seq.bytes_filtered);
            assert_eq!(par.ledger, seq.ledger);
            assert_eq!(par.skipped_pages, seq.skipped_pages);
        }
        assert_eq!(seq.lines.len(), 12);
        assert!(seq.lines[0].contains("alpha event 0"));
    }

    #[test]
    fn fanout_matches_solo_scans_and_dedupes_device_reads() {
        let texts: Vec<String> = (0..10)
            .map(|i| format!("alpha event {i}\nbeta event {i}\ngamma noise {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let qa = mithrilog_query::parse("alpha").unwrap();
        let qb = mithrilog_query::parse("event AND NOT beta").unwrap();
        let pa = FilterPipeline::compile(&qa).unwrap();
        let pb = FilterPipeline::compile(&qb).unwrap();
        // Overlapping plans: query A wants pages [0..8), B wants [4..10).
        let plan_a = pages[..8].to_vec();
        let plan_b = pages[4..].to_vec();
        let lzah = LzahConfig::default();

        let solo_a = scan_pages(&ssd, lzah, &Engine::Hardware(&pa), &plan_a, 3);
        let solo_b = scan_pages(&ssd, lzah, &Engine::Hardware(&pb), &plan_b, 3);
        for threads in [1, 3, 8] {
            let fan = scan_pages_fanout(
                &ssd,
                lzah,
                &[
                    (Engine::Hardware(&pa), plan_a.clone()),
                    (Engine::Hardware(&pb), plan_b.clone()),
                ],
                threads,
            );
            assert!(fan.error.is_none());
            for (got, want) in fan.queries.iter().zip([&solo_a, &solo_b]) {
                assert_eq!(got.lines, want.lines, "{threads} threads");
                assert_eq!(got.lines_scanned, want.lines_scanned);
                assert_eq!(got.bytes_filtered, want.bytes_filtered);
                assert_eq!(got.skipped_pages, want.skipped_pages);
                // As-if-solo charges match the solo ledger exactly.
                assert_eq!(got.ledger, want.ledger);
            }
            // Physically: 10 distinct pages read once; the 4 overlapping
            // pages each saved one duplicate read.
            assert_eq!(fan.device_ledger.pages_read, 10);
            assert_eq!(fan.device_ledger.shared_reads, 4);
            assert_eq!(fan.device_ledger.demanded_reads(), 14);
            assert!(
                fan.device_ledger.pages_read < solo_a.ledger.pages_read + solo_b.ledger.pages_read
            );
        }
    }

    #[test]
    fn software_engine_agrees_with_hardware_engine() {
        let texts: Vec<String> = (0..6)
            .map(|i| format!("RAS KERNEL INFO ok {i}\nRAS KERNEL FATAL bad {i}\n"))
            .collect();
        let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let (ssd, pages) = ssd_with_pages(&refs);
        let query = mithrilog_query::parse("FATAL").unwrap();
        let pipeline = FilterPipeline::compile(&query).unwrap();
        let hw = scan_pages(
            &ssd,
            LzahConfig::default(),
            &Engine::Hardware(&pipeline),
            &pages,
            3,
        );
        let sw = scan_pages(
            &ssd,
            LzahConfig::default(),
            &Engine::Software(&query),
            &pages,
            3,
        );
        assert_eq!(hw.lines, sw.lines);
        assert_eq!(hw.lines_scanned, sw.lines_scanned);
    }

    #[test]
    fn sharded_compression_tiles_the_input_exactly() {
        let mut text = Vec::new();
        for i in 0..40_000 {
            text.extend_from_slice(
                format!("log line number {i} with some routine text\n").as_bytes(),
            );
        }
        assert!(text.len() > COMPRESS_SHARD_BYTES, "must span shards");
        for threads in [1, 2, 4] {
            let shards = compress_paged_striped(&text, LzahConfig::default(), 4096, threads);
            let mut rebuilt = Vec::new();
            for frame in shards.iter().flat_map(|p| p.pages()) {
                rebuilt.extend_from_slice(&Lzah::default().decompress(frame.data()).unwrap());
            }
            assert_eq!(rebuilt, text, "{threads} threads");
        }
        // Layout is a function of the input, not of the worker count.
        let one = compress_paged_striped(&text, LzahConfig::default(), 4096, 1);
        let four = compress_paged_striped(&text, LzahConfig::default(), 4096, 4);
        let frames = |logs: &[PagedLog]| {
            logs.iter()
                .flat_map(|p| p.pages())
                .map(|f| f.data().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(frames(&one), frames(&four));
    }

    #[test]
    fn small_inputs_compress_identically_to_the_unsharded_path() {
        let text = b"alpha\nbeta\ngamma\n".repeat(50);
        let sharded = compress_paged_striped(&text, LzahConfig::default(), 4096, 4);
        let direct = compress_paged(&text, LzahConfig::default(), 4096);
        assert_eq!(sharded.len(), 1);
        let a: Vec<Vec<u8>> = sharded[0]
            .pages()
            .iter()
            .map(|f| f.data().to_vec())
            .collect();
        let b: Vec<Vec<u8>> = direct.pages().iter().map(|f| f.data().to_vec()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_boundaries_respect_lines() {
        let text = b"0123456789\nabcdefghij\nklmnopqrst\n".repeat(10);
        let shards = shard_at_lines(&text, 40);
        assert!(shards.len() > 1);
        let rebuilt: Vec<u8> = shards.concat();
        assert_eq!(rebuilt, text);
        for shard in &shards {
            assert_eq!(*shard.last().unwrap(), b'\n');
        }
    }
}
