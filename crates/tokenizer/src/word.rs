use std::fmt;

/// One beat of the tokenized datapath (paper Figure 4).
///
/// Carries up to `width` bytes of one token, zero-padded to the datapath
/// width, plus the two hardware flags. A token longer than the datapath is
/// emitted over multiple consecutive words; only the final word has
/// `last_of_token` set.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TokenWord {
    bytes: Vec<u8>,
    /// Number of useful (non-padding) bytes at the front of `bytes`.
    len: usize,
    last_of_token: bool,
    last_of_line: bool,
    /// Zero-based token position within the line (prefix-tree extension,
    /// paper §4.3: "a small field … specifying the column each token should
    /// appear at").
    column: u32,
}

impl TokenWord {
    /// Builds a word from a token fragment, padding with zero bytes.
    ///
    /// # Panics
    ///
    /// Panics if `fragment` is longer than `width` or empty.
    pub fn new(
        fragment: &[u8],
        width: usize,
        last_of_token: bool,
        last_of_line: bool,
        column: u32,
    ) -> Self {
        assert!(!fragment.is_empty(), "token fragment must not be empty");
        assert!(
            fragment.len() <= width,
            "fragment of {} bytes exceeds datapath width {}",
            fragment.len(),
            width
        );
        let mut bytes = vec![0u8; width];
        bytes[..fragment.len()].copy_from_slice(fragment);
        TokenWord {
            bytes,
            len: fragment.len(),
            last_of_token,
            last_of_line,
            column,
        }
    }

    /// The full datapath word including zero padding.
    pub fn datapath_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The useful token-fragment bytes, without padding.
    pub fn token_bytes(&self) -> &[u8] {
        &self.bytes[..self.len]
    }

    /// Number of useful bytes in this word.
    pub fn useful_len(&self) -> usize {
        self.len
    }

    /// Datapath width this word was emitted on.
    pub fn width(&self) -> usize {
        self.bytes.len()
    }

    /// Number of zero padding bytes in this word.
    pub fn padding_len(&self) -> usize {
        self.bytes.len() - self.len
    }

    /// Whether this word completes its token.
    pub fn is_last_of_token(&self) -> bool {
        self.last_of_token
    }

    /// Whether this word completes its line.
    pub fn is_last_of_line(&self) -> bool {
        self.last_of_line
    }

    /// Zero-based column (token index within the line).
    pub fn column(&self) -> u32 {
        self.column
    }
}

impl fmt::Debug for TokenWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TokenWord({:?}, col={}, eot={}, eol={})",
            String::from_utf8_lossy(self.token_bytes()),
            self.column,
            self.last_of_token,
            self.last_of_line
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_pads_with_zeros() {
        let w = TokenWord::new(b"RAS", 16, true, false, 0);
        assert_eq!(w.useful_len(), 3);
        assert_eq!(w.padding_len(), 13);
        assert_eq!(w.datapath_bytes().len(), 16);
        assert_eq!(&w.datapath_bytes()[3..], &[0u8; 13]);
        assert_eq!(w.token_bytes(), b"RAS");
    }

    #[test]
    fn flags_and_column_round_trip() {
        let w = TokenWord::new(b"x", 16, false, true, 7);
        assert!(!w.is_last_of_token());
        assert!(w.is_last_of_line());
        assert_eq!(w.column(), 7);
    }

    #[test]
    fn full_width_word_has_no_padding() {
        let w = TokenWord::new(&[b'a'; 16], 16, false, false, 0);
        assert_eq!(w.padding_len(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds datapath width")]
    fn oversized_fragment_panics() {
        TokenWord::new(&[b'a'; 17], 16, true, false, 0);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_fragment_panics() {
        TokenWord::new(b"", 16, true, false, 0);
    }

    #[test]
    fn debug_is_nonempty_and_readable() {
        let w = TokenWord::new(b"KERNEL", 16, true, true, 2);
        let s = format!("{w:?}");
        assert!(s.contains("KERNEL"));
        assert!(s.contains("col=2"));
    }
}
