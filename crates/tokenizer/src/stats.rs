use crate::config::TokenizerConfig;
use crate::tokenizer::Tokenizer;
use crate::wire::{get_u64, get_usize, put_u64};

/// Statistics of the tokenized datapath over a corpus (paper §7.4.1).
///
/// Collected by streaming text through a [`Tokenizer`]; everything the
/// accelerator throughput model needs is here:
///
/// * `useful_ratio` — Figure 13's "percentage of useful bits in the
///   tokenized datapath" (≈0.5 on the HPC4 datasets, motivating two hash
///   filters per pipeline);
/// * `amplification` — tokenized bytes (including padding) per raw input
///   byte; the paper observes "typically a factor of two data amplification";
/// * token length histogram, used to justify the 16-byte datapath.
#[derive(Debug, Clone, PartialEq)]
pub struct DatapathStats {
    raw_bytes: u64,
    useful_bytes: u64,
    datapath_bytes: u64,
    words: u64,
    tokens: u64,
    lines: u64,
    /// Histogram of token lengths; index = length in bytes, saturating at
    /// the last bucket.
    token_len_hist: Vec<u64>,
    /// Sum and sum-of-squares of line lengths, for imbalance statistics.
    line_len_sum: u64,
    line_len_sq_sum: u128,
    max_line_len: usize,
}

/// Maximum token length tracked exactly by the histogram; longer tokens land
/// in the final bucket.
const HIST_BUCKETS: usize = 129;

impl DatapathStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        DatapathStats {
            raw_bytes: 0,
            useful_bytes: 0,
            datapath_bytes: 0,
            words: 0,
            tokens: 0,
            lines: 0,
            token_len_hist: vec![0; HIST_BUCKETS],
            line_len_sum: 0,
            line_len_sq_sum: 0,
            max_line_len: 0,
        }
    }

    /// Accumulates one line of raw text tokenized under `config`.
    pub fn record_line(&mut self, tokenizer: &Tokenizer, line: &[u8]) {
        let width = tokenizer.config().word_bytes;
        self.raw_bytes += line.len() as u64 + 1; // +1 for the newline
        self.lines += 1;
        self.line_len_sum += line.len() as u64;
        self.line_len_sq_sum += (line.len() as u128) * (line.len() as u128);
        self.max_line_len = self.max_line_len.max(line.len());
        for token in tokenizer.tokens(line) {
            self.tokens += 1;
            let bucket = token.len().min(HIST_BUCKETS - 1);
            self.token_len_hist[bucket] += 1;
            let words = token.len().div_ceil(width) as u64;
            self.words += words;
            self.useful_bytes += token.len() as u64;
            self.datapath_bytes += words * width as u64;
        }
    }

    /// Streams a whole text buffer (lines split on `\n`).
    pub fn record_text(&mut self, tokenizer: &Tokenizer, text: &[u8]) {
        for line in text.split(|b| *b == b'\n') {
            if !line.is_empty() {
                self.record_line(tokenizer, line);
            }
        }
    }

    /// Computes statistics for a corpus in one call.
    pub fn of_text(config: &TokenizerConfig, text: &[u8]) -> Self {
        let tokenizer = Tokenizer::new(config.clone());
        let mut stats = DatapathStats::new();
        stats.record_text(&tokenizer, text);
        stats
    }

    /// Fraction of useful (non-padding) bytes in the tokenized datapath —
    /// the Figure 13 metric. Returns 0 for an empty corpus.
    pub fn useful_ratio(&self) -> f64 {
        if self.datapath_bytes == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / self.datapath_bytes as f64
        }
    }

    /// Tokenized datapath bytes per raw input byte (data amplification).
    pub fn amplification(&self) -> f64 {
        if self.raw_bytes == 0 {
            0.0
        } else {
            self.datapath_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Total raw input bytes recorded (including newlines).
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Total tokens observed.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Total datapath words emitted.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total lines observed.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Mean token length in bytes.
    pub fn mean_token_len(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / self.tokens as f64
        }
    }

    /// Mean line length in bytes (excluding the newline).
    pub fn mean_line_len(&self) -> f64 {
        if self.lines == 0 {
            0.0
        } else {
            self.line_len_sum as f64 / self.lines as f64
        }
    }

    /// Coefficient of variation of line lengths; the paper attributes part
    /// of the filter/decompressor throughput gap to "imbalance between
    /// lengths of consecutive log lines".
    pub fn line_len_cv(&self) -> f64 {
        if self.lines == 0 {
            return 0.0;
        }
        let mean = self.mean_line_len();
        if mean == 0.0 {
            return 0.0;
        }
        let n = self.lines as f64;
        let var = (self.line_len_sq_sum as f64 / n) - mean * mean;
        var.max(0.0).sqrt() / mean
    }

    /// Token length histogram; index = token length, last bucket saturates.
    pub fn token_len_hist(&self) -> &[u64] {
        &self.token_len_hist
    }

    /// Fraction of tokens no longer than `len` bytes.
    pub fn fraction_tokens_at_most(&self, len: usize) -> f64 {
        if self.tokens == 0 {
            return 0.0;
        }
        let upto: u64 = self.token_len_hist[..=len.min(HIST_BUCKETS - 1)]
            .iter()
            .sum();
        upto as f64 / self.tokens as f64
    }

    /// Serializes the accumulator for a durability checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.raw_bytes);
        put_u64(&mut buf, self.useful_bytes);
        put_u64(&mut buf, self.datapath_bytes);
        put_u64(&mut buf, self.words);
        put_u64(&mut buf, self.tokens);
        put_u64(&mut buf, self.lines);
        put_u64(&mut buf, self.line_len_sum);
        put_u64(&mut buf, self.line_len_sq_sum as u64);
        put_u64(&mut buf, (self.line_len_sq_sum >> 64) as u64);
        put_u64(&mut buf, self.max_line_len as u64);
        put_u64(&mut buf, self.token_len_hist.len() as u64);
        for &bucket in &self.token_len_hist {
            put_u64(&mut buf, bucket);
        }
        buf
    }

    /// Restores an accumulator written by [`DatapathStats::to_bytes`].
    /// Returns `None` for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let cur = &mut &bytes[..];
        let raw_bytes = get_u64(cur)?;
        let useful_bytes = get_u64(cur)?;
        let datapath_bytes = get_u64(cur)?;
        let words = get_u64(cur)?;
        let tokens = get_u64(cur)?;
        let lines = get_u64(cur)?;
        let line_len_sum = get_u64(cur)?;
        let sq_lo = get_u64(cur)?;
        let sq_hi = get_u64(cur)?;
        let max_line_len = get_usize(cur)?;
        let hist_len = get_usize(cur)?;
        if hist_len != HIST_BUCKETS {
            return None;
        }
        let mut token_len_hist = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            token_len_hist.push(get_u64(cur)?);
        }
        if !cur.is_empty() {
            return None;
        }
        Some(DatapathStats {
            raw_bytes,
            useful_bytes,
            datapath_bytes,
            words,
            tokens,
            lines,
            token_len_hist,
            line_len_sum,
            line_len_sq_sum: u128::from(sq_lo) | (u128::from(sq_hi) << 64),
            max_line_len,
        })
    }

    /// Merges another accumulator into this one (for parallel collection).
    pub fn merge(&mut self, other: &DatapathStats) {
        self.raw_bytes += other.raw_bytes;
        self.useful_bytes += other.useful_bytes;
        self.datapath_bytes += other.datapath_bytes;
        self.words += other.words;
        self.tokens += other.tokens;
        self.lines += other.lines;
        for (a, b) in self.token_len_hist.iter_mut().zip(&other.token_len_hist) {
            *a += b;
        }
        self.line_len_sum += other.line_len_sum;
        self.line_len_sq_sum += other.line_len_sq_sum;
        self.max_line_len = self.max_line_len.max(other.max_line_len);
    }
}

impl Default for DatapathStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_of(text: &str) -> DatapathStats {
        DatapathStats::of_text(&TokenizerConfig::default(), text.as_bytes())
    }

    #[test]
    fn empty_corpus_is_all_zero() {
        let s = stats_of("");
        assert_eq!(s.useful_ratio(), 0.0);
        assert_eq!(s.amplification(), 0.0);
        assert_eq!(s.tokens(), 0);
    }

    #[test]
    fn short_tokens_give_low_useful_ratio() {
        // "ab cd\n": two 2-byte tokens → 4 useful bytes over 32 datapath bytes.
        let s = stats_of("ab cd\n");
        assert!((s.useful_ratio() - 4.0 / 32.0).abs() < 1e-12);
        assert_eq!(s.words(), 2);
        assert_eq!(s.tokens(), 2);
    }

    #[test]
    fn full_width_tokens_have_ratio_one() {
        let token = "x".repeat(16);
        let s = stats_of(&format!("{token} {token}\n"));
        assert!((s.useful_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amplification_matches_hand_computation() {
        // line "ab cd" = 5 bytes + newline = 6 raw; datapath = 32.
        let s = stats_of("ab cd\n");
        assert!((s.amplification() - 32.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn hpc_like_lines_are_roughly_half_useful() {
        // Typical syslog tokens are 3–10 bytes, so the 16-byte datapath is
        // roughly half-utilized — the Figure 13 observation.
        let line = "Jun 12 04:01:22 tbird-admin1 kernel: e1000 device eth0\n";
        let s = stats_of(&line.repeat(100));
        let r = s.useful_ratio();
        assert!(r > 0.3 && r < 0.7, "ratio {r} outside the plausible band");
    }

    #[test]
    fn long_token_counts_multiple_words() {
        let s = stats_of(&format!("{}\n", "y".repeat(40)));
        assert_eq!(s.tokens(), 1);
        assert_eq!(s.words(), 3);
        assert!((s.useful_ratio() - 40.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn line_cv_zero_for_identical_lines() {
        let s = stats_of(&"same length line\n".repeat(10));
        assert!(s.line_len_cv().abs() < 1e-9);
    }

    #[test]
    fn line_cv_positive_for_imbalanced_lines() {
        let s = stats_of("a\nsomething much much longer than before\nb\n");
        assert!(s.line_len_cv() > 0.5);
    }

    #[test]
    fn fraction_tokens_at_most_is_monotone() {
        let s = stats_of("a bb ccc dddd eeeee\n");
        let f4 = s.fraction_tokens_at_most(4);
        let f5 = s.fraction_tokens_at_most(5);
        assert!(f4 <= f5);
        assert!((f5 - 1.0).abs() < 1e-12);
        assert!((s.fraction_tokens_at_most(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let cfg = TokenizerConfig::default();
        let mut a = DatapathStats::of_text(&cfg, b"alpha beta\n");
        let b = DatapathStats::of_text(&cfg, b"gamma delta epsilon\n");
        a.merge(&b);
        let whole = DatapathStats::of_text(&cfg, b"alpha beta\ngamma delta epsilon\n");
        assert_eq!(a, whole);
    }

    #[test]
    fn stats_round_trip_through_bytes() {
        let s = stats_of("Jun 12 04:01:22 tbird-admin1 kernel: e1000 device eth0\nshort\n");
        let restored = DatapathStats::from_bytes(&s.to_bytes()).expect("valid blob");
        assert_eq!(restored, s);
        // Continued accumulation after restore matches the original path.
        assert_eq!(restored.lines(), 2);
    }

    #[test]
    fn stats_from_bytes_rejects_malformed_input() {
        let blob = stats_of("a bb ccc\n").to_bytes();
        assert!(DatapathStats::from_bytes(&blob[..blob.len() - 4]).is_none());
        let mut long = blob.clone();
        long.push(0);
        assert!(DatapathStats::from_bytes(&long).is_none());
        // Wrong histogram size.
        let mut bad = blob;
        bad[80..88].copy_from_slice(&7u64.to_le_bytes());
        assert!(DatapathStats::from_bytes(&bad).is_none());
    }

    #[test]
    fn narrower_datapath_increases_useful_ratio() {
        let text = "short toks here every where\n".repeat(20);
        let wide = DatapathStats::of_text(&TokenizerConfig::with_word_bytes(32), text.as_bytes());
        let narrow = DatapathStats::of_text(&TokenizerConfig::with_word_bytes(8), text.as_bytes());
        assert!(narrow.useful_ratio() > wide.useful_ratio());
    }
}
