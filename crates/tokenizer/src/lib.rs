//! Datapath-accurate model of the MithriLog tokenizer array (paper §4.1).
//!
//! The hardware tokenizer ingests raw log text and emits *tokens aligned to
//! the datapath*: each output beat is a fixed-width word (16 bytes on the
//! prototype) carrying up to one token fragment, zero-padded, tagged with two
//! single-bit flags — `last_of_token` (a token longer than the word width
//! spans several beats) and `last_of_line`. Lines are scattered round-robin
//! across eight two-byte-per-cycle tokenizer lanes and gathered in the same
//! order, so downstream hash filters observe lines in order.
//!
//! This crate models that behaviour bit-exactly at the word-stream level and
//! additionally collects the statistics the paper's evaluation depends on:
//!
//! * the fraction of useful (non-padding) bytes in the tokenized datapath
//!   (Figure 13), which drives the "two hash filters per pipeline" design;
//! * the data amplification factor of tokenization;
//! * per-lane occupancy imbalance of the round-robin scatter (one source of
//!   the small gap between filter and decompressor throughput in §7.4.1).
//!
//! # Example
//!
//! ```
//! use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};
//!
//! let tok = Tokenizer::new(TokenizerConfig::default());
//! let words = tok.tokenize_line(b"RAS KERNEL INFO");
//! assert_eq!(words.len(), 3);
//! assert!(words[2].is_last_of_line());
//! assert_eq!(words[0].token_bytes(), b"RAS");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod scatter;
mod stats;
mod tokenizer;
mod wire;
mod word;

pub use config::TokenizerConfig;
pub use scatter::{LaneOccupancy, ScatterGather};
pub use stats::DatapathStats;
pub use tokenizer::{LineWords, Tokenizer};
pub use word::TokenWord;
