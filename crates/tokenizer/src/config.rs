/// Configuration of a tokenizer array, mirroring the prototype's parameters.
///
/// Defaults match the paper's FPGA prototype: a 16-byte (128-bit) datapath,
/// eight tokenizer lanes each ingesting two bytes per cycle, and ASCII
/// whitespace delimiters.
///
/// # Example
///
/// ```
/// use mithrilog_tokenizer::TokenizerConfig;
///
/// let cfg = TokenizerConfig::default();
/// assert_eq!(cfg.word_bytes, 16);
/// assert_eq!(cfg.lanes, 8);
/// let wide = TokenizerConfig::with_word_bytes(32);
/// assert_eq!(wide.word_bytes, 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizerConfig {
    /// Datapath word width in bytes (prototype: 16).
    pub word_bytes: usize,
    /// Number of parallel tokenizer lanes per pipeline (prototype: 8).
    pub lanes: usize,
    /// Bytes each lane ingests per clock cycle (prototype: 2, chosen in
    /// design-space exploration over 1/2/4 for best performance per LUT).
    pub bytes_per_cycle_per_lane: usize,
    /// Delimiter byte set. A token is a maximal run of non-delimiter bytes.
    pub delimiters: Vec<u8>,
}

impl TokenizerConfig {
    /// Prototype configuration with a different datapath width, used by the
    /// datapath-width ablation (§7.4.1 discusses 8/16/32-byte trade-offs).
    pub fn with_word_bytes(word_bytes: usize) -> Self {
        TokenizerConfig {
            word_bytes,
            ..Self::default()
        }
    }

    /// Returns true if `b` is a delimiter under this configuration.
    #[inline]
    pub fn is_delimiter(&self, b: u8) -> bool {
        self.delimiters.contains(&b)
    }

    /// Total ingest bandwidth of the lane array in bytes per cycle.
    ///
    /// The prototype's 8 lanes × 2 B/cycle = 16 B/cycle, matching the
    /// datapath so the array sustains wire speed.
    pub fn ingest_bytes_per_cycle(&self) -> usize {
        self.lanes * self.bytes_per_cycle_per_lane
    }
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        TokenizerConfig {
            word_bytes: 16,
            lanes: 8,
            bytes_per_cycle_per_lane: 2,
            delimiters: vec![b' ', b'\t', b'\r', b'\n'],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_prototype() {
        let c = TokenizerConfig::default();
        assert_eq!(c.word_bytes, 16);
        assert_eq!(c.lanes, 8);
        assert_eq!(c.bytes_per_cycle_per_lane, 2);
        assert_eq!(c.ingest_bytes_per_cycle(), 16);
    }

    #[test]
    fn whitespace_are_delimiters() {
        let c = TokenizerConfig::default();
        assert!(c.is_delimiter(b' '));
        assert!(c.is_delimiter(b'\n'));
        assert!(!c.is_delimiter(b':'));
        assert!(!c.is_delimiter(b'a'));
    }

    #[test]
    fn with_word_bytes_overrides_only_width() {
        let c = TokenizerConfig::with_word_bytes(8);
        assert_eq!(c.word_bytes, 8);
        assert_eq!(c.lanes, 8);
    }
}
