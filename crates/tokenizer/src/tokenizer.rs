use crate::config::TokenizerConfig;
use crate::word::TokenWord;

/// The tokenizer: converts log lines into datapath-aligned token words.
///
/// Functionally equivalent to one lane of the hardware tokenizer array; the
/// round-robin scatter/gather across lanes lives in
/// [`ScatterGather`](crate::ScatterGather) and only affects the timing model,
/// never the word stream (gather restores order).
#[derive(Debug, Clone)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        assert!(config.word_bytes > 0, "datapath width must be positive");
        Tokenizer { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Splits a line into raw tokens (maximal runs of non-delimiter bytes).
    ///
    /// This is the delimiter semantics shared with the reference query
    /// evaluator; under the default configuration it agrees with
    /// `str::split_ascii_whitespace`.
    pub fn tokens<'a>(&'a self, line: &'a [u8]) -> impl Iterator<Item = &'a [u8]> + 'a {
        line.split(|b| self.config.is_delimiter(*b))
            .filter(|t| !t.is_empty())
    }

    /// Tokenizes one line into datapath words (paper Figure 4).
    ///
    /// Every token is emitted as one or more width-aligned words; the final
    /// word of the final token carries `last_of_line`. A line with no tokens
    /// (empty or all delimiters) produces no words, matching the hardware
    /// which forwards nothing for blank lines.
    pub fn tokenize_line(&self, line: &[u8]) -> Vec<TokenWord> {
        let width = self.config.word_bytes;
        let mut words = Vec::new();
        let tokens: Vec<&[u8]> = self.tokens(line).collect();
        let last_token_idx = match tokens.len().checked_sub(1) {
            Some(i) => i,
            None => return words,
        };
        for (col, token) in tokens.iter().enumerate() {
            let mut chunks = token.chunks(width).peekable();
            while let Some(chunk) = chunks.next() {
                let last_of_token = chunks.peek().is_none();
                let last_of_line = last_of_token && col == last_token_idx;
                words.push(TokenWord::new(
                    chunk,
                    width,
                    last_of_token,
                    last_of_line,
                    col as u32,
                ));
            }
        }
        words
    }

    /// Tokenizes a multi-line text buffer, yielding the word stream per line.
    ///
    /// Lines are separated by `\n`; blank lines are skipped (they carry no
    /// tokens). This is the stream the hash filters consume.
    pub fn tokenize_text<'a>(&'a self, text: &'a [u8]) -> LineWords<'a> {
        fn is_newline(b: &u8) -> bool {
            *b == b'\n'
        }
        LineWords {
            tokenizer: self,
            lines: text.split(is_newline as fn(&u8) -> bool),
        }
    }

    /// Number of cycles one lane needs to ingest a line of `len` bytes.
    ///
    /// The hardware lane processes a fixed number of bytes per cycle
    /// (prototype: 2), so ingest time is `ceil(len / rate)`.
    pub fn lane_cycles(&self, len: usize) -> u64 {
        let rate = self.config.bytes_per_cycle_per_lane.max(1);
        len.div_ceil(rate) as u64
    }
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new(TokenizerConfig::default())
    }
}

/// Iterator over per-line word vectors produced by
/// [`Tokenizer::tokenize_text`].
#[derive(Debug)]
pub struct LineWords<'a> {
    tokenizer: &'a Tokenizer,
    lines: std::slice::Split<'a, u8, fn(&u8) -> bool>,
}

impl<'a> Iterator for LineWords<'a> {
    type Item = Vec<TokenWord>;

    fn next(&mut self) -> Option<Self::Item> {
        for line in self.lines.by_ref() {
            let words = self.tokenizer.tokenize_line(line);
            if !words.is_empty() {
                return Some(words);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok() -> Tokenizer {
        Tokenizer::default()
    }

    #[test]
    fn simple_line_one_word_per_token() {
        let words = tok().tokenize_line(b"RAS KERNEL INFO");
        assert_eq!(words.len(), 3);
        assert_eq!(words[0].token_bytes(), b"RAS");
        assert_eq!(words[1].token_bytes(), b"KERNEL");
        assert_eq!(words[2].token_bytes(), b"INFO");
        assert!(words.iter().all(TokenWord::is_last_of_token));
        assert_eq!(
            words.iter().filter(|w| w.is_last_of_line()).count(),
            1,
            "exactly one last-of-line flag"
        );
        assert!(words[2].is_last_of_line());
    }

    #[test]
    fn columns_increase_per_token() {
        let words = tok().tokenize_line(b"a b c");
        let cols: Vec<u32> = words.iter().map(TokenWord::column).collect();
        assert_eq!(cols, vec![0, 1, 2]);
    }

    #[test]
    fn figure4_long_token_spans_multiple_words() {
        // Paper Figure 4 example: tokens longer than 16 bytes are sent over
        // multiple beats with last_of_token only on the final beat.
        let long = b"ciod:_Error_loading_/bgl/apps/x"; // 31 bytes, one token
        let words = tok().tokenize_line(long);
        assert_eq!(words.len(), 2);
        assert!(!words[0].is_last_of_token());
        assert!(words[0].padding_len() == 0);
        assert!(words[1].is_last_of_token());
        assert!(words[1].is_last_of_line());
        assert_eq!(words[0].column(), words[1].column());
        let mut rebuilt = words[0].token_bytes().to_vec();
        rebuilt.extend_from_slice(words[1].token_bytes());
        assert_eq!(rebuilt, long);
    }

    #[test]
    fn exact_multiple_of_width_has_single_full_words() {
        let t = [b'x'; 32];
        let mut line = t.to_vec();
        line.extend_from_slice(b" y");
        let words = tok().tokenize_line(&line);
        assert_eq!(words.len(), 3);
        assert!(!words[0].is_last_of_token());
        assert!(words[1].is_last_of_token());
        assert_eq!(words[1].padding_len(), 0);
        assert_eq!(words[2].token_bytes(), b"y");
    }

    #[test]
    fn repeated_delimiters_and_edges_ignored() {
        let words = tok().tokenize_line(b"  a\t\t b  ");
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].token_bytes(), b"a");
        assert_eq!(words[1].token_bytes(), b"b");
    }

    #[test]
    fn empty_and_blank_lines_produce_nothing() {
        assert!(tok().tokenize_line(b"").is_empty());
        assert!(tok().tokenize_line(b"   \t ").is_empty());
    }

    #[test]
    fn punctuation_stays_inside_tokens() {
        // Log tokens such as "pbs_mom:" or "R24-M0-NC-I:" keep punctuation.
        let words = tok().tokenize_line(b"R24-M0-NC-I: pbs_mom: up");
        assert_eq!(words[0].token_bytes(), b"R24-M0-NC-I:");
        assert_eq!(words[1].token_bytes(), b"pbs_mom:");
    }

    #[test]
    fn tokenize_text_skips_blank_lines_and_orders() {
        let text = b"one two\n\nthree\n";
        let lines: Vec<_> = tok().tokenize_text(text).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), 2);
        assert_eq!(lines[1][0].token_bytes(), b"three");
    }

    #[test]
    fn agrees_with_split_ascii_whitespace() {
        let line = "Jun  3 04:01:02 node-17 kernel: oops at 0xbeef";
        let t = tok();
        let ours: Vec<&[u8]> = t.tokens(line.as_bytes()).collect();
        let std: Vec<&[u8]> = line.split_ascii_whitespace().map(str::as_bytes).collect();
        assert_eq!(ours, std);
    }

    #[test]
    fn narrow_datapath_splits_more() {
        let t = Tokenizer::new(TokenizerConfig::with_word_bytes(4));
        let words = t.tokenize_line(b"abcdefgh");
        assert_eq!(words.len(), 2);
        assert_eq!(words[0].token_bytes(), b"abcd");
        assert_eq!(words[1].token_bytes(), b"efgh");
    }

    #[test]
    fn lane_cycles_rounds_up() {
        let t = tok();
        assert_eq!(t.lane_cycles(0), 0);
        assert_eq!(t.lane_cycles(1), 1);
        assert_eq!(t.lane_cycles(2), 1);
        assert_eq!(t.lane_cycles(3), 2);
        assert_eq!(t.lane_cycles(80), 40);
    }

    #[test]
    fn custom_delimiters_supported() {
        let cfg = TokenizerConfig {
            delimiters: vec![b',', b' '],
            ..TokenizerConfig::default()
        };
        let t = Tokenizer::new(cfg);
        let toks: Vec<&[u8]> = t.tokens(b"a,b c").collect();
        assert_eq!(
            toks,
            vec![b"a".as_slice(), b"b".as_slice(), b"c".as_slice()]
        );
    }
}
