use crate::tokenizer::Tokenizer;
use crate::wire::{get_u64, get_usize, put_u64};

/// Timing model of the round-robin line scatter across tokenizer lanes.
///
/// The hardware scatters lines round-robin over `lanes` tokenizers and
/// gathers them in the same order (paper §4.1), so ordering is preserved by
/// construction. What round-robin does *not* guarantee is balance: a lane
/// that receives a long line stalls its successors in the gather order. This
/// model replays that schedule to quantify the stall overhead — one of the
/// contributors to the filter engines running slightly below the 12.8 GB/s
/// decompressor ceiling in §7.4.1.
#[derive(Debug, Clone)]
pub struct ScatterGather {
    lane_free_at: Vec<u64>,
    next_lane: usize,
    /// Cycle at which the most recently gathered line completed.
    gather_cycle: u64,
    busy_cycles: u64,
    lines: u64,
}

/// Occupancy summary of a scatter/gather run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneOccupancy {
    /// Total cycles in which at least the gather path was waiting on a lane.
    pub makespan_cycles: u64,
    /// Sum of per-line processing cycles across all lanes.
    pub busy_cycles: u64,
    /// Number of lines processed.
    pub lines: u64,
    /// Effective utilization: busy cycles / (makespan × lanes). 1.0 means
    /// perfectly balanced lanes; lower values indicate stalls from line
    /// length imbalance.
    pub utilization: f64,
}

impl ScatterGather {
    /// Creates a scheduler model for `lanes` parallel tokenizer lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(lanes: usize) -> Self {
        assert!(lanes > 0, "lane count must be positive");
        ScatterGather {
            lane_free_at: vec![0; lanes],
            next_lane: 0,
            gather_cycle: 0,
            busy_cycles: 0,
            lines: 0,
        }
    }

    /// Number of lanes in the model.
    pub fn lanes(&self) -> usize {
        self.lane_free_at.len()
    }

    /// Schedules one line of `len` bytes on the next lane in round-robin
    /// order; returns the cycle at which its output is gathered.
    ///
    /// The gather stage consumes lines strictly in arrival order, so a line
    /// is gathered no earlier than its predecessor (in-order guarantee) and
    /// no earlier than its own lane finishes.
    pub fn schedule_line(&mut self, tokenizer: &Tokenizer, len: usize) -> u64 {
        let cycles = tokenizer.lane_cycles(len);
        let lane = self.next_lane;
        self.next_lane = (self.next_lane + 1) % self.lane_free_at.len();
        // The lane can start once it is free; it was freed when its previous
        // line was gathered (output buffering of one line per lane).
        let start = self.lane_free_at[lane];
        let done = start + cycles;
        let gathered = done.max(self.gather_cycle);
        self.gather_cycle = gathered;
        self.lane_free_at[lane] = gathered;
        self.busy_cycles += cycles;
        self.lines += 1;
        gathered
    }

    /// Replays a whole text buffer through the schedule.
    pub fn schedule_text(&mut self, tokenizer: &Tokenizer, text: &[u8]) {
        for line in text.split(|b| *b == b'\n') {
            if !line.is_empty() {
                self.schedule_line(tokenizer, line.len());
            }
        }
    }

    /// Serializes the scheduler state for a durability checkpoint.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.lane_free_at.len() as u64);
        for &free_at in &self.lane_free_at {
            put_u64(&mut buf, free_at);
        }
        put_u64(&mut buf, self.next_lane as u64);
        put_u64(&mut buf, self.gather_cycle);
        put_u64(&mut buf, self.busy_cycles);
        put_u64(&mut buf, self.lines);
        buf
    }

    /// Restores a scheduler written by [`ScatterGather::to_bytes`].
    /// Returns `None` for malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let cur = &mut &bytes[..];
        let lanes = get_usize(cur)?;
        if lanes == 0 {
            return None;
        }
        let mut lane_free_at = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            lane_free_at.push(get_u64(cur)?);
        }
        let next_lane = get_usize(cur)?;
        if next_lane >= lanes {
            return None;
        }
        let gather_cycle = get_u64(cur)?;
        let busy_cycles = get_u64(cur)?;
        let lines = get_u64(cur)?;
        if !cur.is_empty() {
            return None;
        }
        Some(ScatterGather {
            lane_free_at,
            next_lane,
            gather_cycle,
            busy_cycles,
            lines,
        })
    }

    /// Returns the occupancy summary so far.
    pub fn occupancy(&self) -> LaneOccupancy {
        let makespan = self.gather_cycle;
        let denom = makespan.saturating_mul(self.lane_free_at.len() as u64);
        LaneOccupancy {
            makespan_cycles: makespan,
            busy_cycles: self.busy_cycles,
            lines: self.lines,
            utilization: if denom == 0 {
                0.0
            } else {
                self.busy_cycles as f64 / denom as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TokenizerConfig;

    fn tok() -> Tokenizer {
        Tokenizer::new(TokenizerConfig::default())
    }

    #[test]
    #[should_panic(expected = "lane count must be positive")]
    fn zero_lanes_panics() {
        ScatterGather::new(0);
    }

    #[test]
    fn single_lane_is_sequential() {
        let t = tok();
        let mut sg = ScatterGather::new(1);
        let g1 = sg.schedule_line(&t, 20); // 10 cycles
        let g2 = sg.schedule_line(&t, 20);
        assert_eq!(g1, 10);
        assert_eq!(g2, 20);
        assert!((sg.occupancy().utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_lines_reach_full_utilization() {
        let t = tok();
        let mut sg = ScatterGather::new(4);
        for _ in 0..400 {
            sg.schedule_line(&t, 64); // 32 cycles each
        }
        let occ = sg.occupancy();
        assert_eq!(occ.lines, 400);
        // Perfectly balanced: utilization approaches lanes/lanes = 1, but the
        // in-order gather serializes identical lines, so each gather advances
        // by cycles/lanes on average once the pipe is full.
        assert!(occ.utilization > 0.95, "utilization {}", occ.utilization);
    }

    #[test]
    fn imbalanced_lines_reduce_utilization() {
        let t = tok();
        let mut bal = ScatterGather::new(4);
        let mut imb = ScatterGather::new(4);
        for i in 0..400 {
            bal.schedule_line(&t, 100);
            // Same total bytes, but alternating very long / very short.
            imb.schedule_line(&t, if i % 2 == 0 { 196 } else { 4 });
        }
        assert!(imb.occupancy().utilization < bal.occupancy().utilization);
    }

    #[test]
    fn gather_preserves_order() {
        let t = tok();
        let mut sg = ScatterGather::new(8);
        let mut last = 0;
        for len in [5usize, 500, 3, 3, 3, 900, 2, 2, 2, 2] {
            let g = sg.schedule_line(&t, len);
            assert!(g >= last, "gather order must be monotone");
            last = g;
        }
    }

    #[test]
    fn schedule_text_counts_nonempty_lines() {
        let t = tok();
        let mut sg = ScatterGather::new(8);
        sg.schedule_text(&t, b"one\ntwo\n\nthree\n");
        assert_eq!(sg.occupancy().lines, 3);
    }

    #[test]
    fn scheduler_round_trips_through_bytes() {
        let t = tok();
        let mut sg = ScatterGather::new(4);
        for i in 0..37 {
            sg.schedule_line(&t, 10 + (i % 7) * 30);
        }
        let restored = ScatterGather::from_bytes(&sg.to_bytes()).expect("valid blob");
        assert_eq!(restored.occupancy(), sg.occupancy());
        // Restored state continues the schedule identically.
        let mut a = sg.clone();
        let mut b = restored;
        assert_eq!(a.schedule_line(&t, 123), b.schedule_line(&t, 123));
    }

    #[test]
    fn scheduler_from_bytes_rejects_malformed_input() {
        let sg = ScatterGather::new(4);
        let blob = sg.to_bytes();
        assert!(ScatterGather::from_bytes(&blob[..blob.len() - 1]).is_none());
        // next_lane out of range.
        let mut bad = blob.clone();
        bad[40..48].copy_from_slice(&9u64.to_le_bytes());
        assert!(ScatterGather::from_bytes(&bad).is_none());
        // Zero lanes.
        assert!(ScatterGather::from_bytes(&0u64.to_le_bytes()).is_none());
    }

    #[test]
    fn empty_schedule_has_zero_utilization() {
        let sg = ScatterGather::new(8);
        let occ = sg.occupancy();
        assert_eq!(occ.makespan_cycles, 0);
        assert_eq!(occ.utilization, 0.0);
    }
}
