//! Tiny little-endian cursor helpers for checkpoint serialization.

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn get_u64(cursor: &mut &[u8]) -> Option<u64> {
    let (head, rest) = cursor.split_first_chunk::<8>()?;
    *cursor = rest;
    Some(u64::from_le_bytes(*head))
}

pub(crate) fn get_usize(cursor: &mut &[u8]) -> Option<usize> {
    usize::try_from(get_u64(cursor)?).ok()
}
