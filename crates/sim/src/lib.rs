//! Analytic hardware models of the MithriLog accelerator: throughput
//! (Figure 14), chip resources (Tables 2 and 4), platform constants
//! (Table 3), and power (Table 8).
//!
//! The FPGA prototype's performance is *deterministic* — every stage moves
//! a fixed number of bytes per 200 MHz cycle — so its throughput is a
//! closed-form function of measurable dataset statistics (compression
//! ratio, datapath padding ratio, line-length imbalance). This crate holds
//! those closed forms plus the published resource/power figures, so the
//! benchmark harness can regenerate the paper's tables from data measured
//! by the functional models in the sibling crates.
//!
//! # Example
//!
//! ```
//! use mithrilog_sim::{AcceleratorConfig, DatasetInputs, ThroughputModel};
//!
//! let model = ThroughputModel::new(AcceleratorConfig::prototype());
//! let t = model.effective_throughput(&DatasetInputs {
//!     compression_ratio: 3.85,   // Liberty2, Table 5
//!     tokenized_amplification: 2.0,
//!     lane_utilization: 0.97,
//! });
//! assert!(t.total_gbps > 11.0 && t.total_gbps < 12.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod platform;
mod power;
mod resources;
mod throughput;

pub use platform::{PlatformSpec, COMPARISON_PLATFORM, MITHRILOG_PLATFORM};
pub use power::{PowerBreakdown, PowerModel};
pub use resources::{
    codec_resource_table, hare_comparison, pipeline_resource_table, CodecResource, ModuleResource,
    VC707_LUTS, VC707_RAMB18, VC707_RAMB36,
};
pub use throughput::{
    AcceleratorConfig, DatasetInputs, PipelineScaling, Throughput, ThroughputModel,
};
