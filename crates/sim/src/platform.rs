//! Platform constants (paper Table 3 and §7.2).

/// Computation and storage of one evaluation platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatformSpec {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Computation description.
    pub computation: &'static str,
    /// Host-visible storage bandwidth in GB/s.
    pub external_gbps: f64,
    /// Device-internal bandwidth in GB/s (equals external when no
    /// near-storage path exists).
    pub internal_gbps: f64,
    /// Worker threads available to software (hyper-threads).
    pub threads: usize,
}

/// The MithriLog prototype platform (2× Virtex-7, 4 BlueDBM cards).
pub const MITHRILOG_PLATFORM: PlatformSpec = PlatformSpec {
    name: "MithriLog",
    computation: "2x Virtex-7",
    external_gbps: 3.1,
    internal_gbps: 4.8,
    threads: 0,
};

/// The software comparison platform (i7-8700K, RAID-0 NVMe).
pub const COMPARISON_PLATFORM: PlatformSpec = PlatformSpec {
    name: "Comparison",
    computation: "i7-8700K",
    external_gbps: 7.0,
    internal_gbps: 7.0,
    threads: 12,
};

impl PlatformSpec {
    /// The internal-to-external bandwidth differential the near-storage
    /// placement exploits (≈1.55× on the prototype; Samsung publishes 1.8×
    /// for the SmartSSD).
    pub fn internal_external_ratio(&self) -> f64 {
        self.internal_gbps / self.external_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants() {
        assert_eq!(MITHRILOG_PLATFORM.computation, "2x Virtex-7");
        assert!((MITHRILOG_PLATFORM.external_gbps - 3.1).abs() < 1e-9);
        assert!((MITHRILOG_PLATFORM.internal_gbps - 4.8).abs() < 1e-9);
        assert_eq!(COMPARISON_PLATFORM.computation, "i7-8700K");
        assert!((COMPARISON_PLATFORM.external_gbps - 7.0).abs() < 1e-9);
        assert_eq!(COMPARISON_PLATFORM.threads, 12);
    }

    #[test]
    fn comparison_storage_is_deliberately_faster() {
        // §7.2: "the storage performance of the comparison system is much
        // higher than MithriLog, to err on the side of caution".
        let (sw, hw) = (COMPARISON_PLATFORM, MITHRILOG_PLATFORM);
        assert!(sw.external_gbps > hw.internal_gbps);
    }

    #[test]
    fn internal_ratio_is_realistic() {
        let r = MITHRILOG_PLATFORM.internal_external_ratio();
        assert!(r > 1.5 && r < 1.8, "ratio {r}");
    }
}
