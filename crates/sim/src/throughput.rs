//! The deterministic pipeline throughput model (paper §7.4.1, Figure 14).
//!
//! Every stage of the accelerator moves a fixed number of bytes per cycle,
//! so end-to-end throughput is the minimum over four ceilings:
//!
//! 1. **decompressor** — each pipeline's decoder emits one 16-byte word per
//!    cycle: `pipelines × word × clock` (12.8 GB/s on the prototype);
//! 2. **storage supply** — the device's internal bandwidth multiplied by
//!    the dataset's LZAH compression ratio (this is the ceiling that makes
//!    BGL2, with its low 2.63× ratio, storage-bound at ~12.6 GB/s);
//! 3. **hash filters** — tokenization amplifies data by the padding factor
//!    (≈2×); two filters per pipeline absorb 2× amplification exactly, and
//!    anything beyond that eats into raw throughput;
//! 4. **tokenizer gather** — round-robin line scatter loses a few percent
//!    to line-length imbalance (the lane-occupancy statistic).

use mithrilog_tokenizer::DatapathStats;

/// Static configuration of the accelerator (prototype defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Filter pipelines instantiated (prototype: 4, across two FPGAs).
    pub pipelines: usize,
    /// Clock frequency in Hz (prototype: 200 MHz).
    pub clock_hz: f64,
    /// Datapath word width in bytes (prototype: 16).
    pub word_bytes: usize,
    /// Hash filter modules per pipeline (prototype: 2, sized for the ~2×
    /// tokenization amplification).
    pub hash_filters_per_pipeline: usize,
    /// Device internal bandwidth in GB/s feeding the decompressors.
    pub storage_internal_gbps: f64,
}

impl AcceleratorConfig {
    /// The paper's prototype configuration.
    pub fn prototype() -> Self {
        AcceleratorConfig {
            pipelines: 4,
            clock_hz: 200e6,
            word_bytes: 16,
            hash_filters_per_pipeline: 2,
            storage_internal_gbps: 4.8,
        }
    }

    /// Aggregate decompressor ceiling in GB/s
    /// (`pipelines × word × clock`).
    pub fn decompressor_gbps(&self) -> f64 {
        self.pipelines as f64 * self.word_bytes as f64 * self.clock_hz / 1e9
    }
}

/// Per-dataset inputs to the model, measured by the functional crates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetInputs {
    /// LZAH compression ratio (Table 5 row).
    pub compression_ratio: f64,
    /// Tokenized bytes (with padding) per raw byte
    /// ([`DatapathStats::amplification`]).
    pub tokenized_amplification: f64,
    /// Tokenizer lane utilization under round-robin scatter
    /// (`ScatterGather` occupancy; 1.0 = perfectly balanced lines).
    pub lane_utilization: f64,
}

impl DatasetInputs {
    /// Derives the inputs from measured datapath statistics plus the
    /// compression ratio.
    pub fn from_stats(
        stats: &DatapathStats,
        compression_ratio: f64,
        lane_utilization: f64,
    ) -> Self {
        DatasetInputs {
            compression_ratio,
            tokenized_amplification: stats.amplification(),
            lane_utilization,
        }
    }
}

/// Model output: the binding ceiling and the resulting throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Effective filtering throughput over raw (decompressed) text, GB/s.
    pub total_gbps: f64,
    /// Decompressor ceiling, GB/s.
    pub decompressor_gbps: f64,
    /// Storage-supply ceiling, GB/s.
    pub storage_gbps: f64,
    /// Hash-filter ceiling, GB/s.
    pub filter_gbps: f64,
    /// Tokenizer-gather ceiling, GB/s.
    pub tokenizer_gbps: f64,
    /// Name of the binding stage.
    pub bound_by: &'static str,
}

/// One point of a pipeline-scaling sweep (see
/// [`ThroughputModel::pipeline_scaling`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineScaling {
    /// Filter pipelines instantiated at this point.
    pub pipelines: usize,
    /// Modeled effective throughput at this count, GB/s.
    pub modeled_gbps: f64,
    /// Throughput relative to a single pipeline on the same device.
    pub modeled_speedup: f64,
    /// `modeled_speedup / pipelines` — 1.0 while pipelines scale
    /// perfectly, falling once a shared ceiling (storage supply) binds.
    pub efficiency: f64,
    /// The binding stage at this pipeline count.
    pub bound_by: &'static str,
}

/// The throughput model.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputModel {
    config: AcceleratorConfig,
}

impl ThroughputModel {
    /// Creates a model for a configuration.
    pub fn new(config: AcceleratorConfig) -> Self {
        ThroughputModel { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Evaluates the four ceilings for one dataset.
    pub fn effective_throughput(&self, inputs: &DatasetInputs) -> Throughput {
        let c = &self.config;
        let per_pipeline_word_rate = c.word_bytes as f64 * c.clock_hz / 1e9; // GB/s raw
        let decompressor = c.pipelines as f64 * per_pipeline_word_rate;
        let storage = c.storage_internal_gbps * inputs.compression_ratio.max(1.0);
        // Each hash filter absorbs one word per cycle of *tokenized* data;
        // raw throughput is tokenized capacity divided by amplification.
        let tokenized_capacity =
            c.pipelines as f64 * c.hash_filters_per_pipeline as f64 * per_pipeline_word_rate;
        let filter = tokenized_capacity / inputs.tokenized_amplification.max(1.0);
        let tokenizer = decompressor * inputs.lane_utilization.clamp(0.0, 1.0);
        let (total, bound_by) = [
            (decompressor, "decompressor"),
            (storage, "storage"),
            (filter, "hash-filter"),
            (tokenizer, "tokenizer"),
        ]
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("four candidates");
        Throughput {
            total_gbps: total,
            decompressor_gbps: decompressor,
            storage_gbps: storage,
            filter_gbps: filter,
            tokenizer_gbps: tokenizer,
            bound_by,
        }
    }

    /// Sweeps the pipeline count over `counts`, holding the storage device
    /// and per-pipeline resources fixed — the §7.4.1 scaling argument
    /// ("adding more pipelines to the same storage device will improve
    /// performance, but for BGL2 we have reached the limit"). Speedups are
    /// relative to a single pipeline on the same device, so a sweep shows
    /// near-linear scaling until the dataset's storage-supply ceiling
    /// binds, then a flat line.
    pub fn pipeline_scaling(
        &self,
        inputs: &DatasetInputs,
        counts: &[usize],
    ) -> Vec<PipelineScaling> {
        let at = |pipelines: usize| {
            ThroughputModel::new(AcceleratorConfig {
                pipelines,
                ..self.config
            })
            .effective_throughput(inputs)
        };
        let base = at(1).total_gbps.max(f64::MIN_POSITIVE);
        counts
            .iter()
            .map(|&n| {
                let t = at(n.max(1));
                PipelineScaling {
                    pipelines: n.max(1),
                    modeled_gbps: t.total_gbps,
                    modeled_speedup: t.total_gbps / base,
                    efficiency: t.total_gbps / base / n.max(1) as f64,
                    bound_by: t.bound_by,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThroughputModel {
        ThroughputModel::new(AcceleratorConfig::prototype())
    }

    #[test]
    fn prototype_decompressor_ceiling_is_12_8() {
        assert!((AcceleratorConfig::prototype().decompressor_gbps() - 12.8).abs() < 1e-9);
    }

    #[test]
    fn bgl2_is_storage_bound_near_12_6() {
        // Table 5: BGL2 compresses only 2.63×; §7.4.1 reports 12.62 GB/s of
        // decompressed supply — "we have reached the limit of performance
        // attainable with the backing storage".
        let t = model().effective_throughput(&DatasetInputs {
            compression_ratio: 2.63,
            tokenized_amplification: 1.9,
            lane_utilization: 1.0,
        });
        assert_eq!(t.bound_by, "storage");
        assert!((t.total_gbps - 12.62).abs() < 0.05, "{:.3}", t.total_gbps);
    }

    #[test]
    fn high_ratio_datasets_are_filter_or_tokenizer_bound_at_11_to_12() {
        // Liberty2/Spirit2/Thunderbird: ratio well above 2.67 keeps the
        // decompressors busy; the filter engines land at 11–12 GB/s.
        for (ratio, amp, util) in [(3.85, 2.15, 0.97), (6.60, 2.2, 0.96), (7.35, 2.1, 0.98)] {
            let t = model().effective_throughput(&DatasetInputs {
                compression_ratio: ratio,
                tokenized_amplification: amp,
                lane_utilization: util,
            });
            assert!(
                t.total_gbps > 11.0 && t.total_gbps < 12.6,
                "ratio {ratio}: {:.2} GB/s ({})",
                t.total_gbps,
                t.bound_by
            );
            assert_ne!(t.bound_by, "storage");
        }
    }

    #[test]
    fn amplification_of_two_exactly_fills_two_filters() {
        let t = model().effective_throughput(&DatasetInputs {
            compression_ratio: 10.0,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        });
        // filter ceiling equals the decompressor ceiling: 2 filters × 16B ÷ 2.
        assert!((t.filter_gbps - t.decompressor_gbps).abs() < 1e-9);
        assert!((t.total_gbps - 12.8).abs() < 1e-9);
    }

    #[test]
    fn excess_amplification_binds_the_filters() {
        let t = model().effective_throughput(&DatasetInputs {
            compression_ratio: 10.0,
            tokenized_amplification: 3.0,
            lane_utilization: 1.0,
        });
        assert_eq!(t.bound_by, "hash-filter");
        assert!((t.total_gbps - 12.8 * 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn more_pipelines_help_until_storage_binds() {
        // §7.4.1: "for Liberty2, Spirit2, and Thunderbird, adding more
        // pipelines to the same storage device will improve performance,
        // but for BGL2 we have reached the limit".
        let six = AcceleratorConfig {
            pipelines: 6,
            ..AcceleratorConfig::prototype()
        };
        let liberty = DatasetInputs {
            compression_ratio: 3.85,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        };
        let bgl = DatasetInputs {
            compression_ratio: 2.63,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        };
        let m4 = model();
        let m6 = ThroughputModel::new(six);
        assert!(
            m6.effective_throughput(&liberty).total_gbps
                > m4.effective_throughput(&liberty).total_gbps
        );
        assert!(
            (m6.effective_throughput(&bgl).total_gbps - m4.effective_throughput(&bgl).total_gbps)
                .abs()
                < 1e-9,
            "BGL2 is storage-bound either way"
        );
    }

    #[test]
    fn pipeline_scaling_is_linear_until_storage_binds() {
        // High-ratio dataset: storage supplies 48 GB/s of decompressed
        // bytes, so 1→4 pipelines scale linearly (compute-bound).
        let liberty = DatasetInputs {
            compression_ratio: 10.0,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        };
        let sweep = model().pipeline_scaling(&liberty, &[1, 2, 4, 8]);
        assert!((sweep[0].modeled_speedup - 1.0).abs() < 1e-9);
        assert!((sweep[1].modeled_speedup - 2.0).abs() < 1e-9);
        assert!((sweep[2].modeled_speedup - 4.0).abs() < 1e-9);
        assert!((sweep[2].efficiency - 1.0).abs() < 1e-9);

        // Low-ratio dataset: storage binds early and extra pipelines only
        // flatten the curve — efficiency decays.
        let bgl = DatasetInputs {
            compression_ratio: 2.63,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        };
        let sweep = model().pipeline_scaling(&bgl, &[1, 4, 8]);
        let last = sweep.last().unwrap();
        assert_eq!(last.bound_by, "storage");
        assert!(last.modeled_speedup < 8.0 * 0.9);
        assert!(last.efficiency < sweep[0].efficiency);
        // Speedup never decreases as pipelines are added.
        for pair in sweep.windows(2) {
            assert!(pair[1].modeled_speedup >= pair[0].modeled_speedup - 1e-12);
        }
    }

    #[test]
    fn lane_imbalance_reduces_throughput() {
        let balanced = model().effective_throughput(&DatasetInputs {
            compression_ratio: 8.0,
            tokenized_amplification: 2.0,
            lane_utilization: 1.0,
        });
        let imbalanced = model().effective_throughput(&DatasetInputs {
            compression_ratio: 8.0,
            tokenized_amplification: 2.0,
            lane_utilization: 0.85,
        });
        assert!(imbalanced.total_gbps < balanced.total_gbps);
        assert_eq!(imbalanced.bound_by, "tokenizer");
    }
}
