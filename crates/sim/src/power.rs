//! Power model (paper Table 8, §7.6).
//!
//! The paper measured the BlueDBM cards and FPGA boards with wall-port
//! monitors, took the SSD figure from Samsung's datasheet, and attributed
//! the remainder to CPU+memory. Those constants are encoded here along
//! with the derived efficiency arithmetic.

/// Power breakdown of one platform, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// Platform name.
    pub name: &'static str,
    /// CPU plus DRAM.
    pub cpu_memory_w: f64,
    /// Storage devices (4 BlueDBM cards / 2 NVMe drives).
    pub storage_w: f64,
    /// FPGA boards (0 for the software platform).
    pub fpga_w: f64,
}

impl PowerBreakdown {
    /// Total platform power.
    pub fn total_w(&self) -> f64 {
        self.cpu_memory_w + self.storage_w + self.fpga_w
    }
}

/// The power model with both platforms and efficiency arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct PowerModel {
    mithrilog: PowerBreakdown,
    software: PowerBreakdown,
}

impl PowerModel {
    /// The paper's measured/estimated breakdowns (Table 8).
    pub fn paper() -> Self {
        PowerModel {
            mithrilog: PowerBreakdown {
                name: "MithriLog",
                cpu_memory_w: 90.0,
                storage_w: 24.0,
                fpga_w: 36.0,
            },
            software: PowerBreakdown {
                name: "Software",
                cpu_memory_w: 160.0,
                storage_w: 10.0,
                fpga_w: 0.0,
            },
        }
    }

    /// The MithriLog platform breakdown.
    pub fn mithrilog(&self) -> &PowerBreakdown {
        &self.mithrilog
    }

    /// The software platform breakdown.
    pub fn software(&self) -> &PowerBreakdown {
        &self.software
    }

    /// Performance-per-watt improvement of MithriLog given a measured
    /// speedup: `speedup × (software W / mithrilog W)`.
    pub fn efficiency_improvement(&self, speedup: f64) -> f64 {
        speedup * self.software.total_w() / self.mithrilog.total_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_totals() {
        let m = PowerModel::paper();
        assert!((m.mithrilog().total_w() - 150.0).abs() < 1e-9);
        assert!((m.software().total_w() - 170.0).abs() < 1e-9);
    }

    #[test]
    fn accelerated_platform_draws_less_total_power() {
        // §7.6: "by using power-efficient FPGAs for computation, the total
        // power consumption of the system actually decreased".
        let m = PowerModel::paper();
        assert!(m.mithrilog().total_w() < m.software().total_w());
        // But its storage+FPGA components draw more than plain SSDs.
        assert!(m.mithrilog().storage_w + m.mithrilog().fpga_w > m.software().storage_w);
    }

    #[test]
    fn order_of_magnitude_speedup_gives_order_of_magnitude_efficiency() {
        let m = PowerModel::paper();
        let eff = m.efficiency_improvement(10.0);
        assert!(
            eff > 11.0,
            "power advantage compounds the speedup: {eff:.1}"
        );
    }
}
