//! Chip resource models (paper Tables 2 and 4, §7.4.3).
//!
//! These are the published synthesis results of the prototype on a Xilinx
//! VC707 (XC7VX485T: 303,600 LUTs, 1,030 RAMB36, 2,060 RAMB18), encoded as
//! data so the benchmark harness can regenerate the tables and recompute
//! the derived efficiency columns.

/// One row of Table 2: a module's utilization on the VC707.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleResource {
    /// Module name as printed in the paper.
    pub module: &'static str,
    /// Lookup tables used.
    pub luts: u32,
    /// 36 Kb block RAMs used.
    pub ramb36: u32,
    /// 18 Kb block RAMs used.
    pub ramb18: u32,
}

/// VC707 totals for percentage columns.
pub const VC707_LUTS: u32 = 303_600;
/// RAMB36 blocks on the VC707.
pub const VC707_RAMB36: u32 = 1_030;
/// RAMB18 blocks on the VC707.
pub const VC707_RAMB18: u32 = 2_060;

impl ModuleResource {
    /// LUT utilization as a fraction of the VC707.
    pub fn lut_fraction(&self) -> f64 {
        f64::from(self.luts) / f64::from(VC707_LUTS)
    }

    /// RAMB36 utilization as a fraction of the VC707.
    pub fn ramb36_fraction(&self) -> f64 {
        f64::from(self.ramb36) / f64::from(VC707_RAMB36)
    }

    /// RAMB18 utilization as a fraction of the VC707.
    pub fn ramb18_fraction(&self) -> f64 {
        f64::from(self.ramb18) / f64::from(VC707_RAMB18)
    }
}

/// Table 2 of the paper.
pub fn pipeline_resource_table() -> Vec<ModuleResource> {
    vec![
        ModuleResource {
            module: "1x Decompr.",
            luts: 4_245,
            ramb36: 4,
            ramb18: 0,
        },
        ModuleResource {
            module: "1x Tokenizer",
            luts: 1_134,
            ramb36: 0,
            ramb18: 0,
        },
        ModuleResource {
            module: "1x Filter",
            luts: 30_334,
            ramb36: 10,
            ramb18: 2,
        },
        ModuleResource {
            module: "1x Pipeline",
            luts: 61_698,
            ramb36: 66,
            ramb18: 18,
        },
        ModuleResource {
            module: "Total",
            luts: 225_793,
            ramb36: 430,
            ramb18: 43,
        },
    ]
}

/// One row of Table 4: a compression accelerator's efficiency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecResource {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Decompression throughput in GB/s.
    pub gbps: f64,
    /// Thousands of LUTs.
    pub kluts: f64,
    /// Source of the figure (citation in the paper).
    pub source: &'static str,
}

impl CodecResource {
    /// The derived efficiency column: GB/s per KLUT.
    pub fn gbps_per_klut(&self) -> f64 {
        self.gbps / self.kluts
    }
}

/// Table 4 of the paper: FPGA codec implementations on similar Xilinx
/// parts.
pub fn codec_resource_table() -> Vec<CodecResource> {
    vec![
        CodecResource {
            algorithm: "LZ4",
            gbps: 1.68,
            kluts: 35.0,
            source: "Xilinx xil_lz4",
        },
        CodecResource {
            algorithm: "LZRW",
            gbps: 0.175,
            kluts: 0.64,
            source: "Helion",
        },
        CodecResource {
            algorithm: "Snappy",
            gbps: 1.72,
            kluts: 35.0,
            source: "Xilinx xil_snappy",
        },
        CodecResource {
            algorithm: "LZAH",
            gbps: 3.2,
            kluts: 4.0,
            source: "This work",
        },
    ]
}

/// §7.4.3 back-of-the-envelope: KLUTs needed per GB/s of end-to-end log
/// filtering, HARE + Helion LZRW versus MithriLog + LZAH.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HareComparison {
    /// HARE+LZRW resource cost in KLUTs per GB/s.
    pub hare_kluts_per_gbps: f64,
    /// MithriLog+LZAH resource cost in KLUTs per GB/s.
    pub mithrilog_kluts_per_gbps: f64,
}

/// Computes the §7.4.3 comparison from first principles.
///
/// HARE sustains 0.4 GB/s in ~55 KLUTs; scaling to 1 GB/s costs
/// 55 / 0.4 = 137.5 KLUTs, plus LZRW decompressors (0.64 KLUT per
/// 0.175 GB/s ⇒ ~3.7 KLUT/GBps) ≈ 141 KLUTs — the paper rounds the total
/// to "about 145 KLUTs". MithriLog: one pipeline (61.7 KLUTs including its
/// decompressors) sustains 3.2 GB/s ⇒ ~19 KLUTs per GB/s.
pub fn hare_comparison() -> HareComparison {
    let hare = 55.0 / 0.4 + 0.64 / 0.175;
    let mithrilog = 61.698 / 3.2;
    HareComparison {
        hare_kluts_per_gbps: hare,
        mithrilog_kluts_per_gbps: mithrilog,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals_match_paper_percentages() {
        let table = pipeline_resource_table();
        let total = table.last().unwrap();
        assert_eq!(total.luts, 225_793);
        // Paper prints 74% / 41% / 2% for the total row.
        assert!((total.lut_fraction() - 0.74).abs() < 0.01);
        assert!((total.ramb36_fraction() - 0.41).abs() < 0.01);
        assert!((total.ramb18_fraction() - 0.02).abs() < 0.01);
        let pipeline = &table[3];
        assert!((pipeline.lut_fraction() - 0.20).abs() < 0.01);
    }

    #[test]
    fn table4_efficiency_column() {
        let table = codec_resource_table();
        let lzah = table.iter().find(|c| c.algorithm == "LZAH").unwrap();
        assert!((lzah.gbps_per_klut() - 0.8).abs() < 1e-9);
        let lz4 = table.iter().find(|c| c.algorithm == "LZ4").unwrap();
        assert!((lz4.gbps_per_klut() - 0.048).abs() < 0.001);
        // LZAH dominates every other codec on GB/s per KLUT.
        for c in &table {
            if c.algorithm != "LZAH" {
                assert!(lzah.gbps_per_klut() > c.gbps_per_klut(), "{}", c.algorithm);
            }
        }
    }

    #[test]
    fn lzah_is_fastest_absolute_too() {
        let table = codec_resource_table();
        let lzah = table.iter().find(|c| c.algorithm == "LZAH").unwrap();
        for c in &table {
            assert!(lzah.gbps >= c.gbps);
        }
    }

    #[test]
    fn hare_comparison_is_an_order_of_magnitude() {
        let h = hare_comparison();
        assert!((h.hare_kluts_per_gbps - 145.0).abs() < 10.0, "{h:?}");
        assert!((h.mithrilog_kluts_per_gbps - 19.0).abs() < 1.0, "{h:?}");
        assert!(h.hare_kluts_per_gbps / h.mithrilog_kluts_per_gbps > 7.0);
    }
}
