//! `mithrilog` — command-line interface to the MithriLog system.
//!
//! ```text
//! mithrilog query  <logfile> [--threads <n>] [--explain] <query...>
//!                                           run a token query end to end
//!                                           (--explain: print the plan — index
//!                                           decision, bitmap pruning — no scan)
//! mithrilog tag    <logfile> [-n <k>]       extract templates and tag traffic
//! mithrilog stats  <logfile>                dataset/compression/datapath stats
//! mithrilog spikes <logfile> [--threads <n>] <query...>
//!                                           filter, histogram, flag rate spikes
//! mithrilog gen    <profile> <mb> <out>     generate a synthetic HPC4-profile log
//! mithrilog scrub  <logfile> [--flip-rate <p>] [--seed <n>] [--online]
//!                                           fault drill: inject bit rot, verify scrub
//!                                           (--online: via the service's idle scrub
//!                                           lane with page quarantine)
//!                                           (exit 0 clean, 2 corruption found, 1 error)
//! mithrilog serve  <logfile> [--port <p>] [--threads <n>] [--max-queue <n>]
//!                  [--max-batch <n>] [--budget <n>] [--deadline <micros>]
//!                  [--scrub-batch <pages>] [--retain <segments>]
//!                  [--shards <n>] [--route-mode <line-hash|tenant>]
//!                  [--route-salt <n>] [--tenant-queue <n>]
//!                  [--tenant-budget <pages>] [--no-overlap]
//!                                           concurrent query service over TCP
//!                                           (--shards: scatter-gather over N devices)
//! mithrilog retention <storefile> --keep <segments>
//!                                           drop the oldest sealed segments, crash-safely
//! mithrilog segments <storefile>            list sealed segments: pages, lines, crc,
//!                                           bitmap sidecars
//! mithrilog recover <storefile>             mount an on-disk store, run crash recovery
//! mithrilog recover --self-check [--points <k>] [--seed <n>]
//!                                           crash drill: power-loss matrix, verify recovery
//! ```
//!
//! Queries use the accelerator's language: `AND`, `OR`, `NOT`, parentheses,
//! quoted tokens — e.g. `mithrilog query sys.log 'failed AND NOT "pbs_mom:"'`.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "query" => commands::query(rest),
            "tag" => commands::tag(rest),
            "stats" => commands::stats(rest),
            "spikes" => commands::spikes(rest),
            "gen" => commands::gen(rest),
            // Scrub has a three-way exit contract: 0 = clean device,
            // 2 = corruption found, 1 = operational error (like every
            // other command) — so scripts can gate on device health.
            "scrub" => match commands::scrub(rest) {
                Ok(commands::ScrubOutcome::Clean) => Ok(()),
                Ok(commands::ScrubOutcome::CorruptionFound) => return ExitCode::from(2),
                Err(e) => Err(e),
            },
            "serve" => commands::serve(rest),
            "retention" => commands::retention(rest),
            "segments" => commands::segments(rest),
            "recover" => commands::recover(rest),
            "help" | "--help" | "-h" => {
                print_usage();
                Ok(())
            }
            other => Err(format!("unknown command {other:?}; try `mithrilog help`").into()),
        },
        None => {
            print_usage();
            Ok(())
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "mithrilog — near-storage accelerated log analytics (MICRO '21 reproduction)\n\
         \n\
         usage:\n\
         \x20 mithrilog query  <logfile> [--threads <n>] [--explain] <query...>\n\
         \x20                                           run a token query end to end\n\
         \x20                                           (--explain: plan only, no scan)\n\
         \x20 mithrilog tag    <logfile> [-n <k>]       extract templates and tag traffic\n\
         \x20 mithrilog stats  <logfile>                dataset/compression/datapath stats\n\
         \x20 mithrilog spikes <logfile> [--threads <n>] <query...>\n\
         \x20                                           filter, histogram, flag rate spikes\n\
         \x20 mithrilog gen    <profile> <mb> <out>     generate a synthetic HPC4-profile log\n\
         \x20 mithrilog scrub  <logfile> [--flip-rate <p>] [--seed <n>] [--online]\n\
         \x20                                           fault drill: inject bit rot, verify scrub\n\
         \x20                                           (--online: via the service's idle scrub\n\
         \x20                                           lane with page quarantine)\n\
         \x20                                           (exit 0 clean, 2 corruption found, 1 error)\n\
         \x20 mithrilog serve  <logfile> [--port <p>] [--threads <n>] [--max-queue <n>]\n\
         \x20                  [--max-batch <n>] [--budget <n>] [--deadline <micros>]\n\
         \x20                  [--scrub-batch <pages>] [--retain <segments>]\n\
         \x20                  [--shards <n>] [--route-mode <line-hash|tenant>]\n\
         \x20                  [--route-salt <n>] [--tenant-queue <n>]\n\
         \x20                  [--tenant-budget <pages>] [--no-overlap]\n\
         \x20                                           concurrent query service over TCP\n\
         \x20                                           (--shards: scatter-gather over N devices)\n\
         \x20 mithrilog retention <storefile> --keep <segments>\n\
         \x20                                           drop the oldest sealed segments, crash-safely\n\
         \x20 mithrilog segments <storefile>            list sealed segments: pages, lines, crc,\n\
         \x20                                           bitmap sidecars\n\
         \x20 mithrilog recover <storefile>             mount an on-disk store, run crash recovery\n\
         \x20 mithrilog recover --self-check [--points <k>] [--seed <n>]\n\
         \x20                                           crash drill: power-loss matrix, verify recovery\n\
         \n\
         query language: AND, OR, NOT, parentheses, quoted tokens.\n\
         profiles: bgl2 | liberty2 | spirit2 | thunderbird\n\
         --threads: 0 (default) = one worker per modeled flash channel; values\n\
         \x20          above 1024 are rejected. Results are byte-identical for\n\
         \x20          every thread count."
    );
}
