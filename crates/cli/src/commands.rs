//! Implementations of the CLI subcommands.

use std::error::Error;
use std::fs;
use std::time::Instant;

use mithrilog::{MithriLog, MithriLogError, SystemConfig};
use mithrilog_analytics::{RateSpikeDetector, TemplateCounts, TimeHistogram};
use mithrilog_compress::{Codec, Lzah};
use mithrilog_filter::FilterPipeline;
use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceBackend, ServiceConfig};
use mithrilog_shard::{RouteMode, ShardOptions, ShardedLog};
use mithrilog_storage::{CrashPlan, CrashStore, FaultPlan, FaultyStore, MemStore, StorageError};

type CliResult = Result<(), Box<dyn Error>>;

fn read_log(path: &str) -> Result<Vec<u8>, Box<dyn Error>> {
    Ok(fs::read(path).map_err(|e| format!("cannot read {path:?}: {e}"))?)
}

fn ingest(text: &[u8]) -> Result<MithriLog, Box<dyn Error>> {
    ingest_with_threads(text, None)
}

fn ingest_with_threads(text: &[u8], threads: Option<usize>) -> Result<MithriLog, Box<dyn Error>> {
    ingest_with_opts(text, threads, None)
}

fn ingest_with_opts(
    text: &[u8],
    threads: Option<usize>,
    page_cache: Option<usize>,
) -> Result<MithriLog, Box<dyn Error>> {
    let config = SystemConfig {
        query_threads: SystemConfig::checked_query_threads(threads.unwrap_or(0))?,
        page_cache_bytes: page_cache.map_or(SystemConfig::DEFAULT_PAGE_CACHE_BYTES, |b| b as u64),
        ..SystemConfig::default()
    };
    let mut system = MithriLog::new(config);
    let t0 = Instant::now();
    let report = system.ingest(text)?;
    eprintln!(
        "ingested {} lines / {} bytes into {} pages ({:.2}x LZAH) in {:.2?}",
        report.lines,
        report.raw_bytes,
        report.data_pages,
        report.compression_ratio(),
        t0.elapsed()
    );
    Ok(system)
}

/// `mithrilog query <logfile> [--threads <n>] [--page-cache <bytes>]
/// [--explain] <query...>`
///
/// `--threads` sets the parallel datapath's worker count (0 or omitted =
/// one worker per modeled flash channel; values above
/// [`SystemConfig::MAX_QUERY_THREADS`] are rejected). `--page-cache` sets
/// the decompressed-page cache budget in bytes (0 disables; omitted = the
/// 32 MiB default). Results are byte-identical for every value of either
/// flag; only physical device traffic and wall-clock time change.
/// `--explain` prints how the query would be planned — index decision,
/// per-segment bitmap pruning, clips — without scanning any data page.
pub fn query(args: &[String]) -> CliResult {
    let (threads, args) = take_usize_flag(args, "--threads")?;
    let (page_cache, args) = take_usize_flag(&args, "--page-cache")?;
    let (explain, args) = take_bool_flag(&args, "--explain");
    let (path, query_text) = split_path_query(&args, "query")?;
    let text = read_log(path)?;
    let mut system = ingest_with_opts(&text, threads, page_cache)?;
    if explain {
        let request = mithrilog::QueryRequest::parse(&query_text)?;
        let plan = system.explain(&request)?;
        println!("{plan}");
        return Ok(());
    }
    let outcome = system.query_str(&query_text)?;
    for line in &outcome.lines {
        println!("{line}");
    }
    eprintln!(
        "\n{} matching lines | offloaded: {} | index used: {} | pages scanned: {}/{} | \
         threads: {} | modeled device time: {:?} | wall: {:?}",
        outcome.match_count(),
        outcome.offloaded,
        outcome.used_index,
        outcome.pages_scanned,
        system.data_page_count(),
        system.config().resolved_query_threads(),
        outcome.modeled_time,
        outcome.wall_time,
    );
    if outcome.degraded.is_degraded() {
        eprintln!("DEGRADED: {}", outcome.degraded);
    }
    Ok(())
}

/// What a scrub drill concluded about the device, mapped by `main` onto
/// the documented exit codes: clean → 0, corruption found → 2 (operational
/// errors exit 1 like every other command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubOutcome {
    /// Every page checksum verified.
    Clean,
    /// At least one corrupt page was found (and matched the fault plan).
    CorruptionFound,
}

/// `mithrilog scrub <logfile> [--flip-rate <p>] [--seed <n>] [--online]`
///
/// A fault drill: the log is ingested onto a device whose backing store
/// rots one random bit per written page with probability `p` (default 0.02,
/// deterministic per seed). A full scrub then verifies every page checksum;
/// its findings are compared against the faults actually injected, and a
/// sample degraded query shows recovery in action.
///
/// With `--online` the scrub runs through the concurrent service's idle
/// lane instead: the system is handed to a service whose scheduler
/// verifies pages in bounded slices between waves, quarantining corrupt
/// ones, and the sample query then shows quarantined pages being skipped
/// deterministically as a degraded read.
///
/// Exits 0 when the scrub finds the device clean, 2 when corruption was
/// found (so scripts and CI can gate on device health), and 1 on
/// operational errors — see [`ScrubOutcome`].
pub fn scrub(args: &[String]) -> Result<ScrubOutcome, Box<dyn Error>> {
    let online = args.iter().any(|a| a == "--online");
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: mithrilog scrub <logfile> [--flip-rate <p>] [--seed <n>] [--online]")?;
    let flip_rate = parse_f64_flag(args, "--flip-rate")?.unwrap_or(0.02);
    if !(0.0..=1.0).contains(&flip_rate) {
        return Err("--flip-rate must be in [0, 1]".into());
    }
    let seed = parse_flag(args, "--seed")?.unwrap_or(42) as u64;
    let text = read_log(path)?;

    let config = SystemConfig::default();
    let plan = FaultPlan::seeded(seed).with_bit_rot_rate(flip_rate);
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config)?;
    let report = system.ingest(&text)?;
    eprintln!(
        "ingested {} lines into {} data pages (bit-rot rate {flip_rate}, seed {seed})",
        report.lines, report.data_pages
    );
    if online {
        return scrub_online(system);
    }

    let scrub = system.scrub();
    println!("{scrub}");
    let found: Vec<u64> = scrub.corrupt.iter().map(|c| c.page).collect();
    let planted = system.device().store().corrupted_pages();
    for c in &scrub.corrupt {
        println!(
            "  page {:>6}: checksum {:#010x}, expected {:#010x}",
            c.page, c.got, c.expected
        );
    }
    if found == planted {
        println!(
            "detection: scrub found exactly the {} pages the fault plan corrupted",
            planted.len()
        );
    } else {
        return Err(format!(
            "detection mismatch: scrub found {found:?}, fault plan corrupted {planted:?}"
        )
        .into());
    }

    let outcome = system.query_str("error OR failed OR FATAL")?;
    println!(
        "sample degraded query: {} matches from {} pages; {}",
        outcome.match_count(),
        outcome.pages_scanned,
        outcome.degraded
    );
    Ok(if found.is_empty() {
        ScrubOutcome::Clean
    } else {
        ScrubOutcome::CorruptionFound
    })
}

/// The `mithrilog scrub --online` drill: hand the faulted system to the
/// concurrent service, let its idle-time scrub lane verify every page in
/// bounded slices, then show quarantined pages being skipped
/// deterministically by a sample query.
fn scrub_online(system: MithriLog<FaultyStore<MemStore>>) -> Result<ScrubOutcome, Box<dyn Error>> {
    use std::time::Duration;
    let planted = system.device().store().corrupted_pages();
    let total_pages = system.device().page_count();
    let service = Service::spawn(
        system,
        ServiceConfig {
            scrub_batch: 64,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    // The scheduler is idle, so the scrub lane runs immediately; wait for
    // one full pass over the device (bounded — a wedged lane is an error,
    // not a hang).
    let deadline = Instant::now() + Duration::from_secs(60);
    let stats = loop {
        let stats = handle.stats();
        if stats.pages_scrubbed >= total_pages {
            break stats;
        }
        if Instant::now() > deadline {
            service.shutdown();
            return Err("online scrub did not complete a full pass in time".into());
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    println!(
        "online scrub: {} pages verified across {} idle slices; {} quarantined",
        stats.pages_scrubbed, stats.scrub_slices, stats.pages_quarantined
    );
    if stats.pages_quarantined != planted.len() as u64 {
        service.shutdown();
        return Err(format!(
            "detection mismatch: online scrub quarantined {} pages, fault plan \
             corrupted {:?}",
            stats.pages_quarantined, planted
        )
        .into());
    }
    println!(
        "detection: online scrub quarantined exactly the {} pages the fault plan corrupted",
        planted.len()
    );

    // Quarantined pages are skipped up front, at zero cost, deterministically.
    let id = handle
        .submit_str("error OR failed OR FATAL", Priority::Normal)
        .map_err(|e| e.to_string())?;
    match handle.wait(id).map_err(|e| e.to_string())? {
        JobOutput::Query { outcome, .. } => println!(
            "sample degraded query: {} matches from {} pages; {}",
            outcome.match_count(),
            outcome.pages_scanned,
            outcome.degraded
        ),
        other => {
            service.shutdown();
            return Err(format!("expected a query result, got {other:?}").into());
        }
    }
    service.shutdown();
    Ok(if planted.is_empty() {
        ScrubOutcome::Clean
    } else {
        ScrubOutcome::CorruptionFound
    })
}

/// `mithrilog recover <storefile>` — mount an existing on-disk store,
/// running crash recovery, and print the [`RecoveryReport`].
///
/// `mithrilog recover --self-check [--points <k>] [--seed <n>]` — a
/// bounded, in-memory crash-matrix drill over a generated loggen corpus:
/// `k` evenly spaced power-loss points are injected into a batched ingest
/// and each surviving store is remounted, asserting that no acknowledged
/// line is lost and no partial batch is visible.
///
/// [`RecoveryReport`]: mithrilog::RecoveryReport
pub fn recover(args: &[String]) -> CliResult {
    if args.first().is_some_and(|a| a == "--self-check") {
        return crash_self_check(args);
    }
    let path = args.first().ok_or(
        "usage: mithrilog recover <storefile> | \
         mithrilog recover --self-check [--points <k>] [--seed <n>]",
    )?;
    let t0 = Instant::now();
    let (system, report) = MithriLog::open(std::path::Path::new(path), SystemConfig::default())?;
    println!("{report}");
    println!(
        "mounted in {:.2?}: {} lines / {} raw bytes across {} data pages \
         ({:.2}x LZAH)",
        t0.elapsed(),
        system.lines(),
        system.raw_bytes(),
        system.data_page_count(),
        system.compression_ratio()
    );
    Ok(())
}

/// The bounded crash-matrix drill behind `mithrilog recover --self-check`.
fn crash_self_check(args: &[String]) -> CliResult {
    let points = parse_flag(args, "--points")?.unwrap_or(16).max(1) as u64;
    let seed = parse_flag(args, "--seed")?.unwrap_or(0xC0FFEE) as u64;
    let config = SystemConfig::for_tests();
    let text = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 120_000,
        seed: 11,
    })
    .into_text();
    let batches = batch_lines(&text, 8);
    let is_crash =
        |e: &MithriLogError| matches!(e, MithriLogError::Storage(StorageError::Crashed { .. }));

    // Baseline with the power held up, to size the matrix: batch line
    // boundaries (the only legal recovered states) and the total op count.
    let mut boundaries = Vec::new();
    let total_ops = {
        let store = CrashStore::new(MemStore::new(config.device.page_bytes), CrashPlan::never());
        let mut system = MithriLog::with_store(store, config.clone())?;
        let mut acc = 0u64;
        for batch in &batches {
            acc += system.ingest(batch)?.lines;
            boundaries.push(acc);
        }
        system.device().store().ops()
    };

    let step = (total_ops / points).max(1);
    let mut checked = 0u64;
    for op in (1..=total_ops).step_by(step as usize).chain([total_ops]) {
        let plan = CrashPlan::crash_at(op).with_seed(seed);
        let (store, handle) =
            CrashStore::with_handle(MemStore::new(config.device.page_bytes), plan);
        let mut acked = 0u64;
        match MithriLog::with_store(store, config.clone()) {
            Ok(mut system) => {
                for batch in &batches {
                    match system.ingest(batch) {
                        Ok(report) => acked += report.lines,
                        Err(e) if is_crash(&e) => break,
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            Err(e) if !is_crash(&e) => return Err(e.into()),
            Err(_) => {}
        }
        match MithriLog::open_store(handle.snapshot(), config.clone()) {
            Ok((system, report)) => {
                let recovered = system.lines();
                let next = boundaries
                    .iter()
                    .copied()
                    .find(|&b| b > acked)
                    .unwrap_or(acked);
                if recovered != acked && recovered != next {
                    return Err(format!(
                        "SELF-CHECK FAILED at crash op {op}: recovered \
                         {recovered} lines, acked {acked} (report: {report})"
                    )
                    .into());
                }
                println!(
                    "crash at op {op:>4}: acked {acked:>4}, recovered \
                     {recovered:>4} — ok ({report})"
                );
            }
            Err(e) if acked == 0 => {
                println!("crash at op {op:>4}: pre-format crash, store unmountable — ok ({e})");
            }
            Err(e) => {
                return Err(format!(
                    "SELF-CHECK FAILED at crash op {op}: {acked} lines were \
                     acked but the store no longer mounts: {e}"
                )
                .into());
            }
        }
        checked += 1;
    }
    println!(
        "self-check passed: {checked} of {total_ops} crash points verified \
         (seed {seed}); no acknowledged line lost, no partial batch visible"
    );
    Ok(())
}

/// Splits `text` into `n` chunks on line boundaries.
fn batch_lines(text: &[u8], n: usize) -> Vec<&[u8]> {
    let target = text.len().div_ceil(n);
    let mut out = Vec::new();
    let mut start = 0;
    while start < text.len() {
        let mut end = (start + target).min(text.len());
        while end < text.len() && text[end] != b'\n' {
            end += 1;
        }
        if end < text.len() {
            end += 1;
        }
        out.push(&text[start..end]);
        start = end;
    }
    out
}

/// `mithrilog tag <logfile> [-n <k>]`
pub fn tag(args: &[String]) -> CliResult {
    let path = args
        .first()
        .ok_or("usage: mithrilog tag <logfile> [-n <k>]")?;
    let k = parse_flag(args, "-n")?.unwrap_or(8);
    let text = read_log(path)?;
    let library = TemplateLibrary::extract(&text, &default_ftree());
    if library.is_empty() {
        return Err("no templates extractable from this corpus".into());
    }
    let ids: Vec<usize> = (0..library.len().min(k)).collect();
    let joined = library.joined_query(&ids);
    let pipeline = FilterPipeline::compile(&joined)?;
    let counts = TemplateCounts::scan(&pipeline, &text);
    println!(
        "traffic by template ({} of {} templates tagged):",
        ids.len(),
        library.len()
    );
    for (set, n) in counts.ranking() {
        let t = &library.templates()[ids[set]];
        println!(
            "  #{:<4} {:>8} lines ({:>5.1}%)  {:?}",
            t.id(),
            n,
            n as f64 / counts.total() as f64 * 100.0,
            t.tokens()
        );
    }
    println!(
        "  untagged: {} lines ({:.1}%)",
        counts.unmatched(),
        counts.unmatched() as f64 / counts.total() as f64 * 100.0
    );
    Ok(())
}

/// `mithrilog stats <logfile>`
pub fn stats(args: &[String]) -> CliResult {
    let path = args.first().ok_or("usage: mithrilog stats <logfile>")?;
    let text = read_log(path)?;
    let system = ingest(&text)?;
    let stats = system.datapath_stats();
    println!("lines:               {}", system.lines());
    println!("raw bytes:           {}", system.raw_bytes());
    println!("data pages:          {}", system.data_page_count());
    println!("paged LZAH ratio:    {:.2}x", system.compression_ratio());
    println!("whole-file LZAH:     {:.2}x", Lzah::default().ratio(&text));
    println!("tokens:              {}", stats.tokens());
    println!("mean token length:   {:.1} B", stats.mean_token_len());
    println!("datapath useful:     {:.1}%", stats.useful_ratio() * 100.0);
    println!("tokenized amplif.:   {:.2}x", stats.amplification());
    println!("mean line length:    {:.1} B", stats.mean_line_len());
    println!("line length CV:      {:.2}", stats.line_len_cv());
    let t = system.modeled_throughput();
    println!(
        "modeled accelerator: {:.2} GB/s (bound by {})",
        t.total_gbps, t.bound_by
    );
    Ok(())
}

/// `mithrilog spikes <logfile> [--threads <n>] <query...>`
pub fn spikes(args: &[String]) -> CliResult {
    let (threads, args) = take_usize_flag(args, "--threads")?;
    let (path, query_text) = split_path_query(&args, "spikes")?;
    let text = read_log(path)?;
    let mut system = ingest_with_threads(&text, threads)?;
    let outcome = system.query_str(&query_text)?;
    eprintln!("{} events match {:?}", outcome.match_count(), query_text);
    let mut histogram = TimeHistogram::new(60);
    histogram.record_lines(outcome.lines.iter().map(String::as_str));
    if histogram.total() == 0 {
        return Err("no matching lines carry an epoch token (expected HPC4 line format)".into());
    }
    println!(
        "histogram: {} one-minute buckets, mean {:.1} events/bucket",
        histogram.bucket_count(),
        histogram.mean_rate()
    );
    let spikes = RateSpikeDetector::new(2.5).detect(&histogram);
    if spikes.is_empty() {
        println!("no rate spikes above z=2.5");
    }
    for s in spikes {
        println!(
            "SPIKE at epoch {} ({} events, z={:.1})",
            s.bucket_start, s.count, s.z_score
        );
    }
    Ok(())
}

/// `mithrilog gen <profile> <mb> <out>`
pub fn gen(args: &[String]) -> CliResult {
    let [profile, mb, out] = args else {
        return Err(
            "usage: mithrilog gen <bgl2|liberty2|spirit2|thunderbird> <mb> <outfile>".into(),
        );
    };
    let profile = match profile.to_ascii_lowercase().as_str() {
        "bgl2" => DatasetProfile::Bgl2,
        "liberty2" => DatasetProfile::Liberty2,
        "spirit2" => DatasetProfile::Spirit2,
        "thunderbird" => DatasetProfile::Thunderbird,
        other => return Err(format!("unknown profile {other:?}").into()),
    };
    let mb: f64 = mb.parse().map_err(|_| "size must be a number (MB)")?;
    let ds = generate(&DatasetSpec {
        profile,
        target_bytes: (mb * 1_000_000.0) as usize,
        seed: 42,
    });
    fs::write(out, ds.text())?;
    println!(
        "wrote {} lines / {} bytes of {} to {out}",
        ds.lines(),
        ds.text().len(),
        ds.name()
    );
    Ok(())
}

/// `mithrilog serve <logfile> [--port <p>] [--threads <n>]
/// [--max-queue <n>] [--max-batch <n>] [--budget <n>]
/// [--page-cache <bytes>] [--deadline <micros>] [--scrub-batch <pages>]`
///
/// Ingests the log, then serves the concurrent query service's line
/// protocol on a loopback TCP port (`--port 0` or omitted = an ephemeral
/// port). The bound port is announced on stdout as `LISTENING <port>`
/// before the first connection is accepted, so scripts can wait for it.
/// Runs until a client sends `SHUTDOWN`.
///
/// `--max-queue` bounds the admission queue (overload is rejected, not
/// queued), `--max-batch` caps the queries per shared-scan wave,
/// `--budget` applies a default page (deadline) budget to queries that
/// carry none, and `--page-cache` sets the cross-wave decompressed-page
/// cache budget in bytes (0 disables; omitted = the 32 MiB default —
/// repeated queries across waves are served from host memory instead of
/// re-reading flash, visible as `cache_hits` in `STATS`).
///
/// `--deadline` applies a default modeled-time deadline (microseconds) to
/// queries that carry none: each plan is clipped to what the device model
/// can read in that time, reported honestly as a degraded read.
/// `--scrub-batch` turns on the online scrub lane: whenever the scheduler
/// is idle it verifies that many pages per slice, quarantining any that
/// fail, until a full pass completes (re-armed by every ingest).
/// `--retain` keeps at most that many sealed segments, dropping the
/// oldest crash-consistently after each ingest. `--no-overlap` disables
/// concurrent ingest preparation (stop-the-world ingest, the bench
/// baseline).
///
/// `--shards <n>` serves the log from `n` fully independent modeled
/// devices behind the same port: ingest frames are routed
/// deterministically (`--route-mode line-hash|tenant`, `--route-salt
/// <n>`), queries scatter to every shard and gather into
/// single-device-identical results, and `STATS` gains per-shard
/// `shard.<k>.*` rows. `--tenant-queue <n>` caps how many queued jobs a
/// single tenant tag may hold (excess is rejected with the tenant's own
/// queue depth, so one tenant cannot monopolize admission), and
/// `--tenant-budget <n>` applies a page budget to tenant-tagged queries
/// before the `--budget` default.
pub fn serve(args: &[String]) -> CliResult {
    let (threads, args) = take_usize_flag(args, "--threads")?;
    let (port, args) = take_usize_flag(&args, "--port")?;
    let (max_queue, args) = take_usize_flag(&args, "--max-queue")?;
    let (max_batch, args) = take_usize_flag(&args, "--max-batch")?;
    let (budget, args) = take_usize_flag(&args, "--budget")?;
    let (page_cache, args) = take_usize_flag(&args, "--page-cache")?;
    let (deadline, args) = take_usize_flag(&args, "--deadline")?;
    let (scrub_batch, args) = take_usize_flag(&args, "--scrub-batch")?;
    let (retain, args) = take_usize_flag(&args, "--retain")?;
    let (shards, args) = take_usize_flag(&args, "--shards")?;
    let (route_mode, args) = take_str_flag(&args, "--route-mode")?;
    let (route_salt, args) = take_usize_flag(&args, "--route-salt")?;
    let (tenant_queue, args) = take_usize_flag(&args, "--tenant-queue")?;
    let (tenant_budget, args) = take_usize_flag(&args, "--tenant-budget")?;
    let (no_overlap, args) = take_bool_flag(&args, "--no-overlap");
    let path = args.first().ok_or(
        "usage: mithrilog serve <logfile> [--port <p>] [--threads <n>] \
         [--max-queue <n>] [--max-batch <n>] [--budget <n>] \
         [--page-cache <bytes>] [--deadline <micros>] [--scrub-batch <pages>] \
         [--retain <segments>] [--shards <n>] [--route-mode <line-hash|tenant>] \
         [--route-salt <n>] [--tenant-queue <n>] [--tenant-budget <pages>] \
         [--no-overlap]",
    )?;
    let port = u16::try_from(port.unwrap_or(0)).map_err(|_| "--port must fit in 16 bits")?;
    let shards = shards.unwrap_or(1);
    if shards == 0 {
        return Err("--shards wants at least 1 device".into());
    }
    let mode = match route_mode.as_deref() {
        None => RouteMode::LineHash,
        Some(text) => RouteMode::parse(text)
            .ok_or_else(|| format!("--route-mode {text:?} is not line-hash or tenant"))?,
    };
    let text = read_log(path)?;
    let config = ServiceConfig {
        max_queue: max_queue.unwrap_or(ServiceConfig::default().max_queue),
        max_batch: max_batch.unwrap_or(ServiceConfig::default().max_batch),
        default_page_budget: budget.map(|b| b as u64),
        default_deadline: deadline.map(|us| std::time::Duration::from_micros(us as u64)),
        scrub_batch: scrub_batch.map_or(0, |b| b as u64),
        overlap_ingest: !no_overlap,
        retain_segments: retain.map(|n| n as u64),
        tenant_max_queued: tenant_queue,
        tenant_page_budget: tenant_budget.map(|b| b as u64),
    };
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))?;
    if shards == 1 {
        let system = ingest_with_opts(&text, threads, page_cache)?;
        serve_listener(listener, system, config)
    } else {
        let system_config = SystemConfig {
            query_threads: SystemConfig::checked_query_threads(threads.unwrap_or(0))?,
            page_cache_bytes: page_cache
                .map_or(SystemConfig::DEFAULT_PAGE_CACHE_BYTES, |b| b as u64),
            ..SystemConfig::default()
        };
        let opts = ShardOptions {
            shards: u32::try_from(shards).map_err(|_| "--shards must fit in 32 bits")?,
            mode,
            salt: route_salt.unwrap_or(0) as u64,
        };
        let mut sharded = ShardedLog::new(system_config, opts);
        let t0 = Instant::now();
        let report = sharded.ingest(&text)?;
        eprintln!(
            "ingested {} lines / {} bytes into {} pages across {} shards ({:.2}x LZAH) in {:.2?}",
            report.lines,
            report.raw_bytes,
            report.data_pages,
            shards,
            report.compression_ratio(),
            t0.elapsed()
        );
        serve_listener(listener, sharded, config)
    }
}

/// `mithrilog segments <storefile>`
///
/// Mounts an existing on-disk store (running crash recovery) and lists
/// every sealed segment: id, member data-page range, line count, the
/// seal-time CRC summary, and whether the segment still carries
/// token-bitmap sidecars the wave planner can prune with.
pub fn segments(args: &[String]) -> CliResult {
    let path = args
        .first()
        .ok_or("usage: mithrilog segments <storefile>")?;
    let (system, recovery) = MithriLog::open(std::path::Path::new(path), SystemConfig::default())?;
    println!("{recovery}");
    let sealed = system.sealed_segments();
    println!(
        "{} sealed segments, {} pages open, {} lines total",
        sealed.len(),
        system.open_segment_pages(),
        system.lines()
    );
    for segment in sealed {
        println!(
            "  segment {:>4}: pages {}..{} ({:>4}), {:>7} lines, crc {:#010x}, bitmaps {}",
            segment.id,
            segment.first_page,
            segment.last_page,
            segment.pages,
            segment.lines,
            segment.crc,
            if segment.has_bitmaps { "yes" } else { "no" }
        );
    }
    Ok(())
}

/// `mithrilog retention <storefile> --keep <segments>`
///
/// Mounts an existing on-disk store (running crash recovery), then drops
/// the oldest sealed segments until at most `--keep` remain. The drop is
/// journaled and committed through the same two-barrier protocol as an
/// ingest, so a crash mid-way either keeps or drops each segment whole —
/// a remount never sees half a retention pass. The open (unsealed)
/// segment is never dropped.
pub fn retention(args: &[String]) -> CliResult {
    let (keep, args) = take_usize_flag(args, "--keep")?;
    let path = args
        .first()
        .ok_or("usage: mithrilog retention <storefile> --keep <segments>")?;
    let keep = keep.ok_or("usage: mithrilog retention <storefile> --keep <segments>")? as u64;
    let (mut system, recovery) =
        MithriLog::open(std::path::Path::new(path), SystemConfig::default())?;
    println!("{recovery}");
    let before = system.sealed_segments();
    println!(
        "mounted: {} sealed segments, {} pages open, {} lines total",
        before.len(),
        system.open_segment_pages(),
        system.lines()
    );
    let report = system.apply_retention(keep)?;
    println!("{report}");
    for segment in system.sealed_segments() {
        println!(
            "  segment {:>4}: {} pages, {} lines, crc {:#010x}",
            segment.id, segment.pages, segment.lines, segment.crc
        );
    }
    Ok(())
}

/// The serve loop behind [`serve`], split out so tests (and embedders) can
/// bring their own listener: announces the bound port, runs the service
/// and the TCP front-end until `SHUTDOWN`, then shuts the service down.
fn serve_listener<B: ServiceBackend>(
    listener: std::net::TcpListener,
    system: B,
    config: ServiceConfig,
) -> CliResult {
    use std::io::Write;
    let port = listener.local_addr()?.port();
    let service = Service::spawn(system, config);
    println!("LISTENING {port}");
    std::io::stdout().flush()?;
    let result = mithrilog_service::server::serve(listener, &service.handle());
    service.shutdown();
    result?;
    eprintln!("serve: shut down cleanly");
    Ok(())
}

fn split_path_query<'a>(
    args: &'a [String],
    cmd: &str,
) -> Result<(&'a str, String), Box<dyn Error>> {
    let (path, rest) = args
        .split_first()
        .ok_or_else(|| format!("usage: mithrilog {cmd} <logfile> <query...>"))?;
    if rest.is_empty() {
        return Err(format!("usage: mithrilog {cmd} <logfile> <query...>").into());
    }
    Ok((path, rest.join(" ")))
}

/// Removes `flag <value>` from `args`, returning the parsed value and the
/// remaining arguments — for flags that may appear anywhere among
/// positional arguments that are later joined (query text).
fn take_usize_flag(
    args: &[String],
    flag: &str,
) -> Result<(Option<usize>, Vec<String>), Box<dyn Error>> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok((None, args.to_vec()));
    };
    let v = args
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?;
    let v: usize = v.parse().map_err(|_| format!("{flag} needs an integer"))?;
    let mut rest = args.to_vec();
    rest.drain(pos..=pos + 1);
    Ok((Some(v), rest))
}

/// Removes `flag <value>` from `args`, returning the raw string value and
/// the remaining arguments.
fn take_str_flag(
    args: &[String],
    flag: &str,
) -> Result<(Option<String>, Vec<String>), Box<dyn Error>> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok((None, args.to_vec()));
    };
    let v = args
        .get(pos + 1)
        .ok_or_else(|| format!("{flag} needs a value"))?
        .clone();
    let mut rest = args.to_vec();
    rest.drain(pos..=pos + 1);
    Ok((Some(v), rest))
}

/// Removes a value-less `flag` from `args`, returning whether it was
/// present and the remaining arguments.
fn take_bool_flag(args: &[String], flag: &str) -> (bool, Vec<String>) {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return (false, args.to_vec());
    };
    let mut rest = args.to_vec();
    rest.remove(pos);
    (true, rest)
}

fn parse_flag(args: &[String], flag: &str) -> Result<Option<usize>, Box<dyn Error>> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let v = args
            .get(pos + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        return Ok(Some(
            v.parse().map_err(|_| format!("{flag} needs an integer"))?,
        ));
    }
    Ok(None)
}

fn parse_f64_flag(args: &[String], flag: &str) -> Result<Option<f64>, Box<dyn Error>> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        let v = args
            .get(pos + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        return Ok(Some(
            v.parse().map_err(|_| format!("{flag} needs a number"))?,
        ));
    }
    Ok(None)
}

fn default_ftree() -> FtreeConfig {
    FtreeConfig {
        min_support: 8,
        max_children: 24,
        max_depth: 12,
        min_leaf_fraction: 0.0002,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn temp_log() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mithrilog-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("log-{}.txt", std::process::id()));
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Liberty2,
            target_bytes: 150_000,
            seed: 99,
        });
        std::fs::write(&path, ds.text()).unwrap();
        path
    }

    #[test]
    fn split_path_query_joins_arguments() {
        let args = strs(&["file.log", "failed", "AND", "NOT", "ok"]);
        let (path, q) = split_path_query(&args, "query").unwrap();
        assert_eq!(path, "file.log");
        assert_eq!(q, "failed AND NOT ok");
        assert!(split_path_query(&strs(&["file.log"]), "query").is_err());
        assert!(split_path_query(&[], "query").is_err());
    }

    #[test]
    fn parse_flag_extracts_values() {
        let args = strs(&["x.log", "-n", "12"]);
        assert_eq!(parse_flag(&args, "-n").unwrap(), Some(12));
        assert_eq!(parse_flag(&strs(&["x.log"]), "-n").unwrap(), None);
        assert!(parse_flag(&strs(&["-n"]), "-n").is_err());
        assert!(parse_flag(&strs(&["-n", "abc"]), "-n").is_err());
    }

    #[test]
    fn query_command_end_to_end() {
        let path = temp_log();
        let args = strs(&[path.to_str().unwrap(), "session", "AND", "opened"]);
        query(&args).expect("query command");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_command_explain_flag_plans_without_scanning() {
        let path = temp_log();
        let args = strs(&[
            path.to_str().unwrap(),
            "--explain",
            "session",
            "AND",
            "opened",
        ]);
        query(&args).expect("query --explain command");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn take_usize_flag_extracts_and_removes() {
        let args = strs(&["x.log", "--threads", "4", "failed", "AND", "ok"]);
        let (threads, rest) = take_usize_flag(&args, "--threads").unwrap();
        assert_eq!(threads, Some(4));
        assert_eq!(rest, strs(&["x.log", "failed", "AND", "ok"]));
        let (none, same) = take_usize_flag(&rest, "--threads").unwrap();
        assert_eq!(none, None);
        assert_eq!(same, rest);
        assert!(take_usize_flag(&strs(&["--threads"]), "--threads").is_err());
        assert!(take_usize_flag(&strs(&["--threads", "x"]), "--threads").is_err());
    }

    #[test]
    fn query_command_accepts_threads_flag() {
        let path = temp_log();
        for threads in ["1", "4"] {
            let args = strs(&[
                path.to_str().unwrap(),
                "--threads",
                threads,
                "session",
                "AND",
                "opened",
            ]);
            query(&args).expect("query with --threads");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn query_command_accepts_page_cache_flag() {
        let path = temp_log();
        // 0 disables the cache; a small budget enables it. Results are
        // byte-identical either way, so both must simply succeed.
        for cache in ["0", "1048576"] {
            let args = strs(&[
                path.to_str().unwrap(),
                "--page-cache",
                cache,
                "session",
                "AND",
                "opened",
            ]);
            query(&args).expect("query with --page-cache");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_and_tag_commands_end_to_end() {
        let path = temp_log();
        stats(&strs(&[path.to_str().unwrap()])).expect("stats command");
        tag(&strs(&[path.to_str().unwrap(), "-n", "4"])).expect("tag command");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn spikes_command_end_to_end() {
        let path = temp_log();
        spikes(&strs(&[path.to_str().unwrap(), "session"])).expect("spikes command");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gen_command_writes_profile() {
        let dir = std::env::temp_dir().join("mithrilog-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join(format!("gen-{}.log", std::process::id()));
        gen(&strs(&["bgl2", "0.05", out.to_str().unwrap()])).expect("gen command");
        let text = std::fs::read_to_string(&out).unwrap();
        assert!(text.lines().all(|l| l.contains(" RAS ")));
        assert!(gen(&strs(&["nosuch", "1", "/tmp/x"])).is_err());
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = query(&strs(&["/definitely/not/here.log", "x"])).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }

    #[test]
    fn scrub_command_end_to_end() {
        let path = temp_log();
        // Aggressive rot so the drill definitely corrupts some pages — and
        // reports it, so `main` can exit 2.
        let outcome = scrub(&strs(&[
            path.to_str().unwrap(),
            "--flip-rate",
            "0.2",
            "--seed",
            "7",
        ]))
        .expect("scrub command");
        assert_eq!(outcome, ScrubOutcome::CorruptionFound);
        // Clean device: scrub succeeds, finding nothing (exit 0).
        let outcome =
            scrub(&strs(&[path.to_str().unwrap(), "--flip-rate", "0"])).expect("clean scrub");
        assert_eq!(outcome, ScrubOutcome::Clean);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scrub_online_end_to_end() {
        let path = temp_log();
        // The online lane quarantines the same pages the offline drill
        // finds corrupt, and the sample query reports the skips honestly.
        let outcome = scrub(&strs(&[
            path.to_str().unwrap(),
            "--flip-rate",
            "0.2",
            "--seed",
            "7",
            "--online",
        ]))
        .expect("online scrub");
        assert_eq!(outcome, ScrubOutcome::CorruptionFound);
        let outcome = scrub(&strs(&[
            path.to_str().unwrap(),
            "--flip-rate",
            "0",
            "--online",
        ]))
        .expect("clean online scrub");
        assert_eq!(outcome, ScrubOutcome::Clean);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn recover_command_mounts_an_existing_store() {
        let dir = std::env::temp_dir().join("mithrilog-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join(format!("store-{}.mlog", std::process::id()));
        let _ = std::fs::remove_file(&store);
        {
            let mut system = MithriLog::create(&store, SystemConfig::default()).unwrap();
            system.ingest(b"alpha event one\nbeta event two\n").unwrap();
        }
        recover(&strs(&[store.to_str().unwrap()])).expect("recover command");
        std::fs::remove_file(&store).ok();
        // A missing store is a clean error, not a fresh format.
        assert!(recover(&strs(&[store.to_str().unwrap()])).is_err());
        assert!(recover(&[]).is_err());
    }

    #[test]
    fn retention_command_drops_segments_durably() {
        let dir = std::env::temp_dir().join("mithrilog-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join(format!("retain-{}.mlog", std::process::id()));
        let _ = std::fs::remove_file(&store);
        let config = SystemConfig {
            segment_pages: 2,
            ..SystemConfig::default()
        };
        {
            let mut system = MithriLog::create(&store, config.clone()).unwrap();
            for round in 0..8 {
                let text = format!("retention round {round} event line\n").repeat(200);
                system.ingest(text.as_bytes()).unwrap();
            }
            assert!(system.sealed_segment_count() >= 4);
        }
        retention(&strs(&[store.to_str().unwrap(), "--keep", "2"])).expect("retention command");
        // The drop is durable: a fresh mount sees at most 2 sealed segments.
        let (system, _) = MithriLog::open(&store, config).unwrap();
        assert!(system.sealed_segment_count() <= 2);
        assert!(system.lines() > 0, "retained data still mounts");
        std::fs::remove_file(&store).ok();
        // Missing flags and files are clean errors.
        assert!(retention(&[]).is_err());
        assert!(retention(&strs(&[store.to_str().unwrap(), "--keep", "2"])).is_err());
    }

    #[test]
    fn recover_self_check_passes_a_bounded_matrix() {
        recover(&strs(&["--self-check", "--points", "3"])).expect("self-check");
    }

    #[test]
    fn query_rejects_absurd_thread_counts() {
        let path = temp_log();
        let args = strs(&[path.to_str().unwrap(), "--threads", "100000", "session"]);
        let e = query(&args).unwrap_err();
        assert!(e.to_string().contains("1024"), "{e}");
        // The bound itself is accepted... by the validator; actually
        // spawning 1024 workers is pointlessly slow, so only validate.
        assert!(SystemConfig::checked_query_threads(1024).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_command_speaks_the_line_protocol() {
        use std::io::{BufRead, BufReader, Write};
        let path = temp_log();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = |request: &str| -> Vec<String> {
                writer.write_all(request.as_bytes()).unwrap();
                let mut lines = Vec::new();
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let line = line.trim_end_matches('\n').to_string();
                    if line == "." {
                        return lines;
                    }
                    lines.push(line);
                }
            };
            assert_eq!(response("SUBMIT q=session AND opened\n"), vec!["OK id=0"]);
            let done = response("WAIT 0\n");
            assert!(done[0].starts_with("OK done kind=query"), "{done:?}");
            let stats = response("STATS\n");
            assert!(stats.contains(&"completed=1".to_string()), "{stats:?}");
            assert_eq!(response("SHUTDOWN\n"), vec!["OK bye"]);
        });
        let text = read_log(path.to_str().unwrap()).unwrap();
        let system = ingest(&text).unwrap();
        serve_listener(listener, system, ServiceConfig::default()).expect("serve loop");
        client.join().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_rejects_bad_flags() {
        assert!(serve(&[]).is_err());
        assert!(serve(&strs(&["--port", "99999999", "x.log"])).is_err());
        let path = temp_log();
        let e = serve(&strs(&[path.to_str().unwrap(), "--threads", "4096"])).unwrap_err();
        assert!(e.to_string().contains("1024"), "{e}");
        let e = serve(&strs(&[path.to_str().unwrap(), "--shards", "0"])).unwrap_err();
        assert!(e.to_string().contains("--shards"), "{e}");
        let e = serve(&strs(&[path.to_str().unwrap(), "--route-mode", "nope"])).unwrap_err();
        assert!(e.to_string().contains("--route-mode"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_listener_serves_a_sharded_topology() {
        use std::io::{BufRead, BufReader, Write};
        let path = temp_log();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let stream = std::net::TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let mut response = |request: &str| -> Vec<String> {
                writer.write_all(request.as_bytes()).unwrap();
                let mut lines = Vec::new();
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).unwrap();
                    let line = line.trim_end_matches('\n').to_string();
                    if line == "." {
                        return lines;
                    }
                    lines.push(line);
                }
            };
            assert_eq!(
                response("SUBMIT tenant=acme q=session AND opened\n"),
                vec!["OK id=0"]
            );
            let done = response("WAIT 0\n");
            assert!(done[0].starts_with("OK done kind=query"), "{done:?}");
            let stats = response("STATS\n");
            assert!(stats.contains(&"shards=2".to_string()), "{stats:?}");
            assert!(
                stats.iter().any(|l| l.starts_with("shard.1.lines=")),
                "{stats:?}"
            );
            assert!(
                stats.contains(&"tenant.acme.completed=1".to_string()),
                "{stats:?}"
            );
            assert_eq!(response("SHUTDOWN\n"), vec!["OK bye"]);
        });
        let text = read_log(path.to_str().unwrap()).unwrap();
        let mut sharded = ShardedLog::new(
            SystemConfig::default(),
            ShardOptions {
                shards: 2,
                mode: RouteMode::LineHash,
                salt: 7,
            },
        );
        sharded.ingest(&text).unwrap();
        serve_listener(listener, sharded, ServiceConfig::default()).expect("serve loop");
        client.join().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn segments_command_lists_sealed_segments() {
        let dir = std::env::temp_dir().join("mithrilog-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let store = dir.join(format!("segments-{}.mlog", std::process::id()));
        let _ = std::fs::remove_file(&store);
        let config = SystemConfig {
            segment_pages: 2,
            ..SystemConfig::default()
        };
        {
            let mut system = MithriLog::create(&store, config).unwrap();
            for round in 0..4 {
                let text = format!("segments round {round} event line\n").repeat(200);
                system.ingest(text.as_bytes()).unwrap();
            }
            assert!(system.sealed_segment_count() >= 2);
        }
        segments(&strs(&[store.to_str().unwrap()])).expect("segments command");
        std::fs::remove_file(&store).ok();
        // A missing store and missing args are clean errors.
        assert!(segments(&strs(&[store.to_str().unwrap()])).is_err());
        assert!(segments(&[]).is_err());
    }

    #[test]
    fn scrub_rejects_bad_rates() {
        let path = temp_log();
        assert!(scrub(&strs(&[path.to_str().unwrap(), "--flip-rate", "1.5"])).is_err());
        assert!(scrub(&strs(&[path.to_str().unwrap(), "--flip-rate", "nope"])).is_err());
        assert!(scrub(&[]).is_err());
        std::fs::remove_file(&path).ok();
    }
}
