//! A minimal recursive-descent JSON parser for validating the
//! `BENCH_*.json` reports the harness binaries emit — CI checks every
//! report parses and carries the shared `schema` field without pulling a
//! serde dependency into the workspace.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order (duplicate keys kept as-is).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object (first occurrence); `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A human-readable message naming the byte offset of the first problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of document".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not needed for bench reports;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("non-UTF-8 string at byte {}", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_bench_report_shape() {
        let doc = r#"{
            "schema": "mithrilog.bench.table.v1",
            "bench": "table1",
            "pi": 3.25,
            "neg": -2e3,
            "ok": true,
            "nothing": null,
            "tables": [ { "title": "t \"x\"", "rows": [["a", "b"], []] } ]
        }"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some("mithrilog.bench.table.v1")
        );
        assert_eq!(v.get("pi"), Some(&JsonValue::Number(3.25)));
        assert_eq!(v.get("neg"), Some(&JsonValue::Number(-2000.0)));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&JsonValue::Null));
        let tables = match v.get("tables").unwrap() {
            JsonValue::Array(items) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            tables[0].get("title").and_then(JsonValue::as_str),
            Some("t \"x\"")
        );
    }

    #[test]
    fn escapes_round_trip_through_the_parser() {
        let raw = "quote \" slash \\ newline \n tab \t unit \u{1} done";
        let doc = format!("{{ \"k\": \"{}\" }}", crate::json_escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_str), Some(raw));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, 2",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }
}
