//! Shared harness for the table/figure regeneration binaries.
//!
//! Every binary accepts `--scale <mb>` (dataset size per profile, default
//! 4 MB) and `--seed <n>` (default 42), prints which paper artifact it
//! regenerates, and emits the same rows/series the paper reports. Absolute
//! numbers differ from the paper (simulated device, synthetic data,
//! laptop CPU); EXPERIMENTS.md records the shape comparison.

#![forbid(unsafe_code)]

pub mod json;

use mithrilog_ftree::{FtreeConfig, TemplateLibrary};
use mithrilog_loggen::{generate, Dataset, DatasetProfile, DatasetSpec};
use mithrilog_query::batch::{combine, BatchSpec};
use mithrilog_query::Query;

/// Command-line arguments shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Dataset size per profile in megabytes.
    pub scale_mb: f64,
    /// RNG seed for dataset generation and query batching.
    pub seed: u64,
    /// JSON report path override (`--out`); every binary defaults to its
    /// own `BENCH_<name>.json` in the working directory.
    pub out: Option<String>,
}

impl HarnessArgs {
    /// Parses `--scale <mb>`, `--seed <n>`, and `--out <path>` from
    /// `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut args = HarnessArgs {
            scale_mb: 4.0,
            seed: 42,
            out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    args.scale_mb = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a number (MB)");
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--out" => {
                    args.out = Some(it.next().expect("--out needs a path"));
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale <mb-per-dataset>] [--seed <n>] [--out <path>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        args
    }

    /// Bytes per dataset.
    pub fn target_bytes(&self) -> usize {
        (self.scale_mb * 1_000_000.0) as usize
    }
}

/// Generates all four HPC4-profile datasets at the configured scale.
pub fn datasets(args: &HarnessArgs) -> Vec<Dataset> {
    DatasetProfile::all()
        .into_iter()
        .map(|profile| {
            generate(&DatasetSpec {
                profile,
                target_bytes: args.target_bytes(),
                seed: args.seed,
            })
        })
        .collect()
}

/// FT-tree extraction configuration used by the harness (paper §7.1 uses
/// the FT-tree paper's parameters; these are the equivalents for the
/// synthetic corpora).
pub fn ftree_config() -> FtreeConfig {
    FtreeConfig {
        min_support: 8,
        max_children: 24,
        max_depth: 12,
        min_leaf_fraction: 0.0002,
    }
}

/// Extracts the template library and the three query banks of §7.1:
/// all single-template queries, 100 OR-pairs, and 16 eight-way OR
/// combinations — the same combinations for every engine under test.
pub struct QueryBank {
    /// The extracted template library.
    pub library: TemplateLibrary,
    /// One query per template.
    pub singles: Vec<Query>,
    /// 100 random 2-combinations.
    pub pairs: Vec<Query>,
    /// 16 random 8-combinations.
    pub eights: Vec<Query>,
    /// Negative-heavy exploration queries ("NOT A"-style, §7.5): the class
    /// where inverted indexes cannot prune and a large subset of the log
    /// must be processed — Figure 16's slow cluster.
    pub negations: Vec<Query>,
}

impl QueryBank {
    /// Every query in the bank, in a stable order.
    pub fn all(&self) -> Vec<Query> {
        self.singles
            .iter()
            .chain(self.pairs.iter())
            .chain(self.eights.iter())
            .chain(self.negations.iter())
            .cloned()
            .collect()
    }
}

/// Builds the §7.1 query bank for one dataset.
pub fn query_bank(dataset: &Dataset, seed: u64) -> QueryBank {
    let library = TemplateLibrary::extract(dataset.text(), &ftree_config());
    let singles = library.queries();
    assert!(
        singles.len() >= 8,
        "{}: need at least 8 templates for 8-way batches, got {}",
        dataset.name(),
        singles.len()
    );
    let pairs = combine(&singles, BatchSpec::PAIRS, seed);
    let eights = combine(&singles, BatchSpec::EIGHTS, seed ^ 0x5eed);
    // One negated-template query per hot template: all its key tokens
    // negated ("lines NOT from this template"), up to a dozen.
    let negations: Vec<Query> = library
        .iter()
        .take(12)
        .map(|t| {
            let set: mithrilog_query::IntersectionSet = t
                .tokens()
                .iter()
                .map(|tok| mithrilog_query::Term::negative(tok.clone()))
                .collect();
            Query::try_new(vec![set]).expect("template has tokens")
        })
        .collect();
    QueryBank {
        library,
        singles,
        pairs,
        eights,
        negations,
    }
}

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<&str>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.to_vec());
    line(widths.iter().map(|_| "---").collect());
    for row in rows {
        line(row.iter().map(String::as_str).collect());
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Records every table a harness binary prints and writes them as one
/// machine-readable JSON report, so CI (and EXPERIMENTS.md tooling) can
/// parse the same rows humans read. The report carries the shared
/// `schema` field every `BENCH_*.json` must have.
pub struct TableReport {
    bench: String,
    out: Option<String>,
    tables: Vec<(String, Vec<String>, Vec<Vec<String>>)>,
}

impl TableReport {
    /// Starts a report for the binary named `bench` (the default output
    /// path is `BENCH_<bench>.json`), honoring the harness `--out` flag.
    pub fn new(bench: &str, args: &HarnessArgs) -> Self {
        TableReport {
            bench: bench.to_string(),
            out: args.out.clone(),
            tables: Vec::new(),
        }
    }

    /// Prints a fixed-width table (exactly like [`print_table`]) and
    /// records it for the JSON report.
    pub fn table(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        print_table(title, headers, rows);
        self.tables.push((
            title.to_string(),
            headers.iter().map(|h| h.to_string()).collect(),
            rows.to_vec(),
        ));
    }

    /// Records rows for the JSON report without printing them (for
    /// binaries whose stdout format is CSV or prose, not a table).
    pub fn record(&mut self, title: &str, headers: &[&str], rows: &[Vec<String>]) {
        self.tables.push((
            title.to_string(),
            headers.iter().map(|h| h.to_string()).collect(),
            rows.to_vec(),
        ));
    }

    /// Writes the JSON report to `--out` (or `BENCH_<bench>.json`).
    ///
    /// # Panics
    ///
    /// Panics if the output file cannot be written.
    pub fn write(self) {
        let path = self
            .out
            .unwrap_or_else(|| format!("BENCH_{}.json", self.bench));
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"mithrilog.bench.table.v1\",\n");
        json.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        json.push_str("  \"tables\": [\n");
        for (t, (title, headers, rows)) in self.tables.iter().enumerate() {
            json.push_str("    {\n");
            json.push_str(&format!("      \"title\": \"{}\",\n", json_escape(title)));
            let headers: Vec<String> = headers.iter().map(|h| json_escape(h)).collect();
            json.push_str(&format!(
                "      \"headers\": [\"{}\"],\n",
                headers.join("\", \"")
            ));
            json.push_str("      \"rows\": [\n");
            for (r, row) in rows.iter().enumerate() {
                let cells: Vec<String> = row.iter().map(|c| json_escape(c)).collect();
                json.push_str(&format!("        [\"{}\"]", cells.join("\", \"")));
                json.push_str(if r + 1 < rows.len() { ",\n" } else { "\n" });
            }
            json.push_str("      ]\n");
            json.push_str("    }");
            json.push_str(if t + 1 < self.tables.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        json.push_str("  ]\n}\n");
        std::fs::write(&path, &json).expect("write JSON report");
        eprintln!("wrote {path}");
    }
}

/// Renders an ASCII histogram over logarithmic-ish throughput buckets,
/// mimicking Figure 15's non-linear x axis.
pub fn ascii_histogram(label: &str, values_gbps: &[f64]) {
    const EDGES: [f64; 10] = [0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 13.0];
    let mut buckets = vec![0usize; EDGES.len()];
    for &v in values_gbps {
        let mut b = EDGES.len() - 1;
        for i in 0..EDGES.len() - 1 {
            if v >= EDGES[i] && v < EDGES[i + 1] {
                b = i;
                break;
            }
        }
        buckets[b] += 1;
    }
    println!("  {label}");
    for (i, count) in buckets.iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let hi = if i + 1 < EDGES.len() {
            format!("{:>6.2}", EDGES[i + 1])
        } else {
            "   inf".to_string()
        };
        println!(
            "    [{:>6.2} - {hi}) GB/s | {:<50} {}",
            EDGES[i],
            "#".repeat((*count).min(50)),
            count
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_bank_has_paper_shape() {
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Spirit2,
            target_bytes: 400_000,
            seed: 1,
        });
        let bank = query_bank(&ds, 1);
        assert!(bank.singles.len() >= 8);
        assert_eq!(bank.pairs.len(), 100);
        assert_eq!(bank.eights.len(), 16);
        assert!(bank.pairs.iter().all(|q| q.sets().len() == 2));
        assert!(bank.eights.iter().all(|q| q.sets().len() == 8));
    }

    #[test]
    fn banks_are_deterministic() {
        let ds = generate(&DatasetSpec {
            profile: DatasetProfile::Bgl2,
            target_bytes: 300_000,
            seed: 9,
        });
        let a = query_bank(&ds, 7);
        let b = query_bank(&ds, 7);
        assert_eq!(a.pairs, b.pairs);
        assert_eq!(a.eights, b.eights);
    }

    #[test]
    fn all_four_datasets_generate() {
        let args = HarnessArgs {
            scale_mb: 0.2,
            seed: 3,
            out: None,
        };
        let ds = datasets(&args);
        assert_eq!(ds.len(), 4);
        assert!(ds.iter().all(|d| d.text().len() >= 200_000));
    }
}
