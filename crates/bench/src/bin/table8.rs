//! Regenerates **Table 8**: estimated power breakdown of the two
//! platforms, plus the resulting performance-per-watt arithmetic (§7.6).

use mithrilog_bench::{f2, HarnessArgs, TableReport};
use mithrilog_sim::PowerModel;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table8", &args);
    println!("Table 8 — estimated power consumption breakdown");
    let m = PowerModel::paper();
    let rows = vec![
        vec![
            "CPU+Memory (W)".to_string(),
            f2(m.mithrilog().cpu_memory_w),
            f2(m.software().cpu_memory_w),
        ],
        vec![
            "Total Storage (W)".to_string(),
            f2(m.mithrilog().storage_w),
            f2(m.software().storage_w),
        ],
        vec![
            "2x FPGA (W)".to_string(),
            f2(m.mithrilog().fpga_w),
            f2(m.software().fpga_w),
        ],
        vec![
            "Total (W)".to_string(),
            f2(m.mithrilog().total_w()),
            f2(m.software().total_w()),
        ],
    ];
    report.table(
        "Table 8: power breakdown",
        &["Component", "MithriLog", "Software"],
        &rows,
    );
    for speedup in [5.0, 10.0, 20.0] {
        println!(
            "At {speedup:.0}x measured speedup, performance/watt improves {}x",
            f2(m.efficiency_improvement(speedup))
        );
    }
    report.write();
}
