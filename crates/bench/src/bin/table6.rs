//! Regenerates **Table 6**: average effective throughput (GB/s) of 1-, 2-
//! and 8-query batches on the MonetDB-style full-scan engine versus
//! MithriLog, scanning the whole dataset for every query (§7.4.2: both
//! systems configured without indexes).
//!
//! The scan engine's throughput is *measured* on this machine (12 worker
//! threads, as in the paper); MithriLog's is the deterministic accelerator
//! model driven by the dataset's measured compression ratio and datapath
//! statistics — the paper's own observation is that it is constant
//! regardless of query content.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{effective_throughput_gbps, time_query, LogTable, ScanEngine};
use mithrilog_bench::{datasets, f2, query_bank, HarnessArgs, TableReport};
use mithrilog_query::Query;

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn scan_batch(engine: &ScanEngine, table: &LogTable, queries: &[Query], bytes: u64) -> f64 {
    let tputs: Vec<f64> = queries
        .iter()
        .map(|q| {
            let m = time_query(|| engine.count_matches(table, q));
            effective_throughput_gbps(bytes, m.elapsed)
        })
        .collect();
    mean(&tputs)
}

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table6", &args);
    println!(
        "Table 6 — average effective throughput of batched queries, GB/s (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper: MonetDB falls from ~0.6-2.8 (1q) to ~0.05-0.58 (8q); MithriLog constant at 11.2-11.8.");

    let engine = ScanEngine::new();
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    let names = ["BGL2", "Liberty2", "Spirit2", "Thunderbird"];
    let mut scan_cols: Vec<[f64; 3]> = Vec::new();
    let mut accel_cols: Vec<f64> = Vec::new();

    for ds in datasets(&args) {
        let bank = query_bank(&ds, args.seed);
        let table = LogTable::from_text(ds.text());
        let bytes = ds.text().len() as u64;

        let s1 = scan_batch(&engine, &table, &bank.singles, bytes);
        let s2 = scan_batch(&engine, &table, &bank.pairs, bytes);
        let s8 = scan_batch(&engine, &table, &bank.eights, bytes);
        scan_cols.push([s1, s2, s8]);

        // MithriLog: ingest once; the modeled accelerator throughput is the
        // effective full-scan rate and does not depend on the query.
        let mut system = MithriLog::new(SystemConfig::full_scan_only());
        system.ingest(ds.text()).expect("ingest");
        let accel = system.modeled_throughput().total_gbps;
        accel_cols.push(accel);

        let improvement = mean(&[accel / s1, accel / s2, accel / s8]);
        improvements.push(improvement);
    }

    for (row_name, idx) in [("1", 0usize), ("2", 1), ("8", 2)] {
        let mut scan_row = vec![format!("ScanEngine{row_name}")];
        let mut accel_row = vec![format!("MithriLog{row_name}")];
        for d in 0..4 {
            scan_row.push(f2(scan_cols[d][idx]));
            accel_row.push(f2(accel_cols[d]));
        }
        rows.push(scan_row);
        rows.push(accel_row);
    }
    let mut avg_row = vec!["Avg. improvement".to_string()];
    for imp in &improvements {
        avg_row.push(format!("{}x", f2(*imp)));
    }
    rows.push(avg_row);

    report.table(
        "Table 6: average effective throughput of batched queries (GB/s)",
        &["System", names[0], names[1], names[2], names[3]],
        &rows,
    );
    println!(
        "\nShape check: scan throughput decreases with batch size (CPU-bound text matching);\n\
         MithriLog is constant per dataset and an order of magnitude faster."
    );
    report.write();
}
