//! Wave-planner savings bench: per-segment token bitmaps versus the seed
//! full-scan planner, and batched index probes versus summed solo probes.
//!
//! Two mechanisms are measured on bgl2 and liberty2 corpora:
//!
//! 1. **Bitmap pruning.** Each profile carries tokens that saturate every
//!    page (`RAS` on every BGL line, the constant `Jun` date token on
//!    liberty2), so negative-only queries like `NOT RAS` — full scans on
//!    the seed planner — prune every sealed page via the saturating-token
//!    sidecar. A baseline replica with `bitmap_buckets: 0` replays the
//!    seed behaviour; the bench asserts the bitmap replica returns
//!    byte-identical lines while scanning strictly fewer pages, and
//!    reports the modeled-time speedup.
//! 2. **Batched probes.** The same query set is replayed through
//!    `query_shared`: distinct probe tokens are collected across the wave
//!    and the index hash chain is walked once per token instead of once
//!    per (query, token). The bench asserts the physical node visits are
//!    below the summed as-if-solo demand, with byte-identical outputs.
//!
//! Segments are sealed every 32 pages (instead of the default 256) so the
//! corpus produces many sealed segments with frozen bitmap sidecars.
//!
//! Emits `BENCH_plan.json`.
//!
//! Usage: `plan_savings [--smoke] [--mb <f64>] [--out <path>]`

use std::fmt::Write as _;

use mithrilog::{MithriLog, QueryRequest, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

/// One bench query. `saturating_negation` marks queries whose negated term
/// saturates every sealed page of the profile — these must scan strictly
/// fewer pages on the bitmap replica than on the seed full-scan replica.
struct BenchQuery {
    text: &'static str,
    saturating_negation: bool,
}

const BGL2_QUERIES: &[BenchQuery] = &[
    // `RAS` is on every BGL line: the seed planner full-scans, the
    // bitmaps prune every sealed page.
    BenchQuery {
        text: "NOT RAS",
        saturating_negation: true,
    },
    BenchQuery {
        text: "FATAL AND NOT RAS",
        saturating_negation: true,
    },
    // `FATAL` does not saturate pages — an honesty row showing the
    // planner only prunes what the sidecar proves.
    BenchQuery {
        text: "NOT FATAL",
        saturating_negation: false,
    },
    // Positive-term rows: these probe the index (batched in the shared
    // run) and overlap on `FATAL` / `ciod:`.
    BenchQuery {
        text: "FATAL",
        saturating_negation: false,
    },
    BenchQuery {
        text: "ciod: AND FATAL",
        saturating_negation: false,
    },
    BenchQuery {
        text: "ciod: AND NOT RAS",
        saturating_negation: true,
    },
];

const LIBERTY2_QUERIES: &[BenchQuery] = &[
    // The liberty2 generator's clock stays inside one day, so the `Jun`
    // month token is on every line and saturates every page.
    BenchQuery {
        text: "NOT Jun",
        saturating_negation: true,
    },
    BenchQuery {
        text: "Failed AND NOT Jun",
        saturating_negation: true,
    },
    BenchQuery {
        text: "NOT root",
        saturating_negation: false,
    },
    BenchQuery {
        text: "Failed",
        saturating_negation: false,
    },
    BenchQuery {
        text: "Failed OR Accepted",
        saturating_negation: false,
    },
];

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 4.0,
        out: "BENCH_plan.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

/// Per-query measurement: the seed full-scan replica versus the bitmap
/// replica, solo.
struct QueryRow {
    text: &'static str,
    saturating_negation: bool,
    matches: usize,
    seed_pages: u64,
    bitmap_pages: u64,
    seed_modeled_us: u128,
    bitmap_modeled_us: u128,
    lines: Vec<String>,
}

fn run_profile(
    profile: DatasetProfile,
    profile_name: &str,
    queries: &[BenchQuery],
    target_bytes: usize,
    json: &mut String,
    last: bool,
) {
    let ds = generate(&DatasetSpec {
        profile,
        target_bytes,
        seed: 42,
    });

    // Small segments so the corpus seals many segments and freezes their
    // bitmap sidecars; the open (unsealed) tail is never bitmap-pruned.
    let bitmap_config = SystemConfig {
        segment_pages: 32,
        ..SystemConfig::default()
    };
    // The seed planner: identical in every way except the sidecars are
    // never built, so negative-only queries full-scan.
    let seed_config = SystemConfig {
        bitmap_buckets: 0,
        ..bitmap_config.clone()
    };

    let mut seed = MithriLog::new(seed_config);
    seed.ingest(ds.text()).expect("seed ingest");
    let mut bitmapped = MithriLog::new(bitmap_config);
    bitmapped.ingest(ds.text()).expect("bitmap ingest");
    eprintln!(
        "{profile_name}: {} bytes / {} lines into {} pages",
        ds.text().len(),
        ds.lines(),
        bitmapped.data_page_count()
    );

    // Solo runs on both replicas: byte-identical lines mandatory, and
    // saturating negations must scan strictly fewer pages with bitmaps.
    let mut rows = Vec::new();
    for q in queries {
        let seed_out = seed.query_str(q.text).expect("seed query");
        let bm_out = bitmapped.query_str(q.text).expect("bitmap query");
        assert_eq!(
            bm_out.lines, seed_out.lines,
            "{profile_name} query {:?}: bitmap replica diverged from seed full scan",
            q.text
        );
        if q.saturating_negation {
            assert!(
                bm_out.pages_scanned < seed_out.pages_scanned,
                "{profile_name} query {:?}: expected strict page pruning, \
                 bitmap scanned {} vs seed {}",
                q.text,
                bm_out.pages_scanned,
                seed_out.pages_scanned
            );
        }
        eprintln!(
            "  {:<24} matches={:<6} pages seed={} bitmap={}",
            q.text,
            seed_out.lines.len(),
            seed_out.pages_scanned,
            bm_out.pages_scanned
        );
        rows.push(QueryRow {
            text: q.text,
            saturating_negation: q.saturating_negation,
            matches: bm_out.lines.len(),
            seed_pages: seed_out.pages_scanned,
            bitmap_pages: bm_out.pages_scanned,
            seed_modeled_us: seed_out.modeled_time.as_micros(),
            bitmap_modeled_us: bm_out.modeled_time.as_micros(),
            lines: bm_out.lines,
        });
    }

    // Batched wave on the bitmap replica: one shared plan pass, distinct
    // probe tokens walked once. Outputs must match the solo runs byte for
    // byte; physical probe visits must not exceed the summed solo demand.
    let requests: Vec<QueryRequest> = queries
        .iter()
        .map(|q| QueryRequest::parse(q.text).expect("parse"))
        .collect();
    let batch = bitmapped.query_shared(&requests).expect("shared batch");
    for (row, out) in rows.iter().zip(&batch.outcomes) {
        assert_eq!(
            out.lines, row.lines,
            "{profile_name} query {:?}: batched run diverged from solo",
            row.text
        );
    }
    let shared = &batch.shared;
    assert!(
        shared.probe_node_visits_physical <= shared.probe_node_visits_demanded,
        "batched probe issued more node visits than solo demand"
    );
    assert!(
        shared.probe_node_visits_saved() > 0,
        "{profile_name}: batched probe saved no node visits \
         (demanded {}, physical {})",
        shared.probe_node_visits_demanded,
        shared.probe_node_visits_physical
    );
    eprintln!(
        "  batch: probe visits demanded={} physical={} (saved {}); \
         pruned index={} bitmap={} both={}",
        shared.probe_node_visits_demanded,
        shared.probe_node_visits_physical,
        shared.probe_node_visits_saved(),
        shared.pages_pruned_by_index,
        shared.pages_pruned_by_bitmap,
        shared.pages_pruned_by_both
    );

    // Profile-level negation savings: seed versus bitmap planner over the
    // saturating-negation rows only.
    let (neg_seed_pages, neg_bm_pages, neg_seed_us, neg_bm_us) = rows
        .iter()
        .filter(|r| r.saturating_negation)
        .fold((0u64, 0u64, 0u128, 0u128), |acc, r| {
            (
                acc.0 + r.seed_pages,
                acc.1 + r.bitmap_pages,
                acc.2 + r.seed_modeled_us,
                acc.3 + r.bitmap_modeled_us,
            )
        });

    let _ = writeln!(json, "    {{");
    let _ = writeln!(json, "      \"profile\": \"{profile_name}\",");
    let _ = writeln!(
        json,
        "      \"corpus\": {{ \"bytes\": {}, \"lines\": {}, \"pages\": {} }},",
        ds.text().len(),
        ds.lines(),
        bitmapped.data_page_count()
    );
    let _ = writeln!(json, "      \"queries\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "        {{ \"query\": {:?}, \"saturating_negation\": {}, \
             \"matches\": {}, \"seed_pages_scanned\": {}, \
             \"bitmap_pages_scanned\": {}, \"seed_modeled_us\": {}, \
             \"bitmap_modeled_us\": {} }}",
            r.text,
            r.saturating_negation,
            r.matches,
            r.seed_pages,
            r.bitmap_pages,
            r.seed_modeled_us,
            r.bitmap_modeled_us
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    let _ = writeln!(json, "      ],");
    let _ = writeln!(
        json,
        "      \"negated_seed_pages\": {neg_seed_pages},\n      \
         \"negated_bitmap_pages\": {neg_bm_pages},\n      \
         \"negated_seed_modeled_us\": {neg_seed_us},\n      \
         \"negated_bitmap_modeled_us\": {neg_bm_us},\n      \
         \"negated_modeled_speedup\": {:.4},",
        neg_seed_us as f64 / (neg_bm_us.max(1)) as f64
    );
    let _ = writeln!(
        json,
        "      \"batch\": {{ \"probe_node_visits_demanded\": {}, \
         \"probe_node_visits_physical\": {}, \"probe_node_visits_saved\": {}, \
         \"pages_pruned_by_index\": {}, \"pages_pruned_by_bitmap\": {}, \
         \"pages_pruned_by_both\": {} }}",
        shared.probe_node_visits_demanded,
        shared.probe_node_visits_physical,
        shared.probe_node_visits_saved(),
        shared.pages_pruned_by_index,
        shared.pages_pruned_by_bitmap,
        shared.pages_pruned_by_both
    );
    json.push_str(if last { "    }\n" } else { "    },\n" });
}

fn main() {
    let args = parse_args();
    let target_bytes = (args.mb * 1_000_000.0) as usize;
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mithrilog.bench.plan_savings.v1\",");
    let _ = writeln!(json, "  \"bench\": \"plan_savings\",");
    let _ = writeln!(json, "  \"segment_pages\": 32,");
    let _ = writeln!(
        json,
        "  \"note\": \"seed = identical config with bitmap_buckets=0 \
         (sidecars never built, negative-only queries full-scan); all \
         outputs asserted byte-identical between seed, bitmap, and batched \
         runs; modeled_us is the device+accelerator performance model\","
    );
    json.push_str("  \"profiles\": [\n");
    run_profile(
        DatasetProfile::Bgl2,
        "bgl2",
        BGL2_QUERIES,
        target_bytes,
        &mut json,
        false,
    );
    run_profile(
        DatasetProfile::Liberty2,
        "liberty2",
        LIBERTY2_QUERIES,
        target_bytes,
        &mut json,
        true,
    );
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
