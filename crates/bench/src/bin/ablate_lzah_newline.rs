//! Ablation: LZAH newline realignment (§5 — "moving the window in
//! word-aligned steps instead of sub-words results in a significant drop in
//! compression efficiency. LZAH reclaims some of this performance by
//! specially treating the newline character").

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_compress::{Codec, Lzah, LzahConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("ablate_lzah_newline", &args);
    println!(
        "Ablation — LZAH newline realignment on/off (scale {} MB)",
        args.scale_mb
    );

    let with = Lzah::new(LzahConfig::default());
    let without = Lzah::new(LzahConfig {
        newline_realign: false,
        ..LzahConfig::default()
    });
    let mut rows = Vec::new();
    for ds in datasets(&args) {
        let r_with = with.ratio(ds.text());
        let r_without = without.ratio(ds.text());
        rows.push(vec![
            ds.name().to_string(),
            format!("{}x", f2(r_with)),
            format!("{}x", f2(r_without)),
            format!("+{:.0}%", (r_with / r_without - 1.0) * 100.0),
        ]);
    }
    report.table(
        "LZAH compression ratio with/without newline realignment",
        &["Dataset", "Realign on", "Realign off", "Reclaimed"],
        &rows,
    );
    println!(
        "\nReading: without realignment, fixed 16-byte steps drift out of phase with line\n\
         starts and window repetition collapses; the newline rule restores it — the §5\n\
         insight that 'patterns in logs appear at similar positions in each line'."
    );
    report.write();
}
