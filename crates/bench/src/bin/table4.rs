//! Regenerates **Table 4**: compression accelerator resource efficiency
//! (GB/s, KLUT, GB/s/KLUT), plus the §7.4.3 HARE comparison, plus measured
//! *software* throughput of this repo's codec implementations for context.

use std::time::Instant;

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_compress::{Codec, Gzf, Lz4, Lzah, Lzrw1, Snappy};
use mithrilog_sim::{codec_resource_table, hare_comparison};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table4", &args);
    println!("Table 4 — codec resource efficiency (published FPGA figures + this repo's software throughput)");

    let rows: Vec<Vec<String>> = codec_resource_table()
        .iter()
        .map(|c| {
            vec![
                c.algorithm.to_string(),
                f2(c.gbps),
                f2(c.kluts),
                format!("{:.3}", c.gbps_per_klut()),
                c.source.to_string(),
            ]
        })
        .collect();
    report.table(
        "Table 4: FPGA codec efficiency",
        &["Algorithm", "GB/s", "KLUT", "GB/s/KLUT", "Source"],
        &rows,
    );

    let h = hare_comparison();
    println!(
        "\n§7.4.3: HARE+LZRW ≈ {:.0} KLUT per GB/s vs MithriLog+LZAH ≈ {:.0} KLUT per GB/s ({:.1}x better)",
        h.hare_kluts_per_gbps,
        h.mithrilog_kluts_per_gbps,
        h.hare_kluts_per_gbps / h.mithrilog_kluts_per_gbps
    );

    // Software throughput of this repo's implementations (laptop-scale).
    let corpus = datasets(&args).remove(2).into_text(); // Spirit2
    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(Lzah::default()),
        Box::new(Lzrw1::new()),
        Box::new(Lz4::new()),
        Box::new(Snappy::new()),
        Box::new(Gzf::new()),
    ];
    let mut rows = Vec::new();
    for c in &codecs {
        let t0 = Instant::now();
        let packed = c.compress(&corpus);
        let t_c = t0.elapsed();
        let t0 = Instant::now();
        let out = c.decompress(&packed).expect("round trip");
        let t_d = t0.elapsed();
        assert_eq!(out, corpus);
        rows.push(vec![
            c.name().to_string(),
            f2(corpus.len() as f64 / t_c.as_secs_f64() / 1e6),
            f2(corpus.len() as f64 / t_d.as_secs_f64() / 1e6),
            f2(corpus.len() as f64 / packed.len() as f64),
        ]);
    }
    report.table(
        "Software codec throughput on Spirit2 profile (this machine)",
        &["Codec", "Compress MB/s", "Decompress MB/s", "Ratio"],
        &rows,
    );
    report.write();
}
