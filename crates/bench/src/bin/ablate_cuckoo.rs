//! Ablation: cuckoo hash load factor (§4.2.1 — "cuckoo hashes are known to
//! typically succeed with load factor of 0.5 or below... we over-provision
//! our hash table resources for this purpose").
//!
//! Measures placement success probability as the table fills, over many
//! random token sets, justifying both the 0.5 compile-time load limit and
//! the comparison against a plain single-hash table (which fails at the
//! first collision).

use mithrilog_bench::{HarnessArgs, TableReport};
use mithrilog_filter::{CuckooTable, TokenHasher};

/// Single-hash table baseline: fails on the first row collision.
fn single_hash_succeeds(tokens: &[String], rows: usize) -> bool {
    let hasher = TokenHasher::new(rows);
    let mut used = vec![false; rows];
    for t in tokens {
        let r = hasher.h1(t.as_bytes());
        if used[r] {
            return false;
        }
        used[r] = true;
    }
    true
}

fn cuckoo_succeeds(tokens: &[String], rows: usize) -> bool {
    let mut table = CuckooTable::new(rows, 16);
    tokens
        .iter()
        .all(|t| table.insert(t.as_bytes(), 0, false).is_ok())
}

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("ablate_cuckoo", &args);
    println!("Ablation — cuckoo vs single-hash placement success (256 rows, 200 trials/point)");
    const ROWS: usize = 256;
    const TRIALS: usize = 200;
    let mut rows_out = Vec::new();
    for load_pct in [25usize, 40, 50, 60, 75, 90] {
        let n = ROWS * load_pct / 100;
        let mut cuckoo_ok = 0;
        let mut single_ok = 0;
        for trial in 0..TRIALS {
            let tokens: Vec<String> = (0..n).map(|i| format!("trial{trial}-token{i}")).collect();
            cuckoo_ok += usize::from(cuckoo_succeeds(&tokens, ROWS));
            single_ok += usize::from(single_hash_succeeds(&tokens, ROWS));
        }
        rows_out.push(vec![
            format!("{load_pct}%"),
            n.to_string(),
            format!("{:.1}%", cuckoo_ok as f64 / TRIALS as f64 * 100.0),
            format!("{:.1}%", single_ok as f64 / TRIALS as f64 * 100.0),
        ]);
    }
    report.table(
        "Placement success probability",
        &["Load", "Tokens", "Cuckoo", "Single-hash"],
        &rows_out,
    );
    println!(
        "\nReading: at the paper's 0.5 provisioning, cuckoo placement essentially always\n\
         succeeds while a single-hash table almost always fails — the compactness argument\n\
         of §4.2.1."
    );
    report.write();
}
