//! Validates emitted bench reports: every `BENCH_*.json` under the given
//! paths must parse as JSON and carry a top-level string `schema` field.
//! CI runs this over the smoke-run output directory so a binary that
//! regresses its report format fails the gate, not a downstream consumer.
//!
//! Usage: `check_bench_json <file-or-dir>...` — directories are scanned
//! (non-recursively) for `BENCH_*.json`; exits non-zero listing every
//! failure, and fails if no report was found at all.

use mithrilog_bench::json::{self, JsonValue};

fn report_paths(args: &[String]) -> Vec<std::path::PathBuf> {
    let mut paths = Vec::new();
    for arg in args {
        let path = std::path::PathBuf::from(arg);
        if path.is_dir() {
            let mut entries: Vec<_> = std::fs::read_dir(&path)
                .unwrap_or_else(|e| panic!("cannot read {arg:?}: {e}"))
                .filter_map(Result::ok)
                .map(|entry| entry.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                })
                .collect();
            entries.sort();
            paths.extend(entries);
        } else {
            paths.push(path);
        }
    }
    paths
}

fn check(path: &std::path::Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing top-level string \"schema\" field")?;
    Ok(schema.to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: check_bench_json <file-or-dir>...");
        std::process::exit(1);
    }
    let paths = report_paths(&args);
    if paths.is_empty() {
        eprintln!("check_bench_json: no BENCH_*.json found under {args:?}");
        std::process::exit(1);
    }
    let mut failures = 0usize;
    for path in &paths {
        match check(path) {
            Ok(schema) => println!("ok   {} (schema {schema})", path.display()),
            Err(reason) => {
                failures += 1;
                println!("FAIL {}: {reason}", path.display());
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "check_bench_json: {failures}/{} reports failed",
            paths.len()
        );
        std::process::exit(1);
    }
    eprintln!("check_bench_json: {} reports ok", paths.len());
}
