//! Concurrent-load bench: 8 overlapping queries through the concurrent
//! query service versus the same 8 run solo, one at a time.
//!
//! The paper's accelerator amortizes one flash stream across many pattern
//! matchers; the service realizes that as cross-query page sharing — a
//! wave of concurrently admitted queries reads each distinct page once and
//! fans the decompressed text out to every waiting filter. This bench
//! measures the effect: `demanded_page_reads` (what 8 solo runs would have
//! issued) versus `unique_pages_read` (what the shared scan actually
//! issued), while asserting every query's matched lines are byte-identical
//! to its solo run.
//!
//! Emits `BENCH_service.json`.
//!
//! `--storm` runs the chaos-storm mode instead: a bounded
//! submit/cancel/ingest storm against a service whose device injects
//! transient read faults, with deadlines and the online scrub lane
//! enabled — a load-shaped version of `tests/chaos_soak.rs` asserting the
//! service neither wedges nor leaks a panic under concurrent fault
//! pressure.
//!
//! Usage: `service_load [--smoke] [--mb <f64>] [--out <path>] [--storm]`

use std::fmt::Write as _;
use std::time::Duration;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig, WaitError};
use mithrilog_storage::{FaultPlan, FaultyStore, MemStore};

/// Eight queries with heavily overlapping page plans: most are broad
/// enough to full-scan, so their plans cover the same pages.
const QUERIES: [&str; 8] = [
    "error OR failed OR FATAL",
    "error",
    "failed",
    "NOT error",
    "FATAL AND NOT failed",
    "error AND NOT FATAL",
    "failed OR FATAL",
    "NOT FATAL",
];

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
    storm: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 4.0,
        out: "BENCH_service.json".to_string(),
        storm: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--storm" => args.storm = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

/// The chaos-storm mode behind `--storm`: concurrent submitters (some with
/// deadlines, some cancelled mid-flight) plus ingests against a device
/// injecting transient read faults, with the online scrub lane running in
/// the idle gaps. Every job must settle within a bound — a wedge or an
/// escaped panic fails the run.
fn service_storm(smoke: bool) {
    let rounds = if smoke { 4 } else { 16 };
    let clients = 4;
    let per_client = if smoke { 8 } else { 32 };
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: if smoke { 200_000 } else { 1_000_000 },
        seed: 42,
    });
    let config = SystemConfig::default();
    let plan = FaultPlan::seeded(99).with_transient_rate(0.05, 1);
    let store = FaultyStore::new(MemStore::new(config.device.page_bytes), plan);
    let mut system = MithriLog::with_store(store, config).expect("system");
    system.ingest(ds.text()).expect("ingest");
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 256,
            max_batch: 8,
            default_deadline: Some(Duration::from_millis(50)),
            scrub_batch: 32,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let mut settled = 0u64;
    let mut cancelled_early = 0u64;
    for round in 0..rounds {
        let ids: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let handle = handle.clone();
                    scope.spawn(move || {
                        let mut ids = Vec::new();
                        for i in 0..per_client {
                            let q = QUERIES[(c + i) % QUERIES.len()];
                            let pri = [Priority::High, Priority::Normal, Priority::Low][i % 3];
                            if let Ok(id) = handle.submit_str(q, pri) {
                                // Cancel a third of them immediately —
                                // racing the wave claim on purpose.
                                if i % 3 == 0 {
                                    handle.cancel(id);
                                }
                                ids.push(id);
                            }
                        }
                        ids
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        // An ingest between rounds grows the snapshot and re-arms the
        // online scrub pass.
        if round % 2 == 0 {
            let _ = handle.ingest(b"storm FATAL extra line\n".to_vec());
        }
        for id in ids.into_iter().flatten() {
            match handle.wait_timeout(id, Duration::from_secs(60)) {
                Ok(_) => settled += 1,
                Err(WaitError::Cancelled) => {
                    settled += 1;
                    cancelled_early += 1;
                }
                Err(WaitError::Failed(reason)) => {
                    panic!("storm job {id} failed hard: {reason}")
                }
                Err(e) => panic!("storm job {id} wedged: {e}"),
            }
        }
    }
    let stats = handle.stats();
    service.shutdown();
    assert!(stats.waves > 0, "storm never formed a wave");
    eprintln!(
        "storm: {settled} jobs settled ({cancelled_early} cancelled), {} waves, \
         {} poisoned, {} scrub slices / {} pages scrubbed / {} quarantined, \
         {} shared reads avoided",
        stats.waves,
        stats.waves_poisoned,
        stats.scrub_slices,
        stats.pages_scrubbed,
        stats.pages_quarantined,
        stats.shared_reads_avoided,
    );
}

fn main() {
    let args = parse_args();
    if args.storm {
        service_storm(args.smoke);
        return;
    }
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(ds.text()).expect("ingest");
    eprintln!(
        "corpus: {} bytes / {} lines into {} pages",
        ds.text().len(),
        ds.lines(),
        system.data_page_count()
    );

    // Solo baseline: each query alone, its own ledger delta.
    let mut solo_lines = Vec::new();
    let mut solo_page_reads = 0u64;
    let mut solo_wall = 0.0f64;
    for q in QUERIES {
        let outcome = system.query_str(q).expect("solo query");
        solo_page_reads += outcome.ledger.pages_read;
        solo_wall += outcome.wall_time.as_secs_f64();
        solo_lines.push(outcome.lines);
    }
    eprintln!(
        "solo: {solo_page_reads} device page reads summed over {} runs",
        QUERIES.len()
    );

    // Concurrent: the service owns the system; the 8 queries are submitted
    // back to back, so the scheduler admits them into shared-scan waves
    // (typically one wave — submissions outpace the scheduler wakeup).
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 64,
            max_batch: QUERIES.len(),
            default_page_budget: None,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let wall_start = std::time::Instant::now();
    let ids: Vec<_> = QUERIES
        .iter()
        .map(|q| handle.submit_str(q, Priority::Normal).expect("submit"))
        .collect();
    let mut shared_lines = Vec::new();
    for id in ids {
        match handle.wait(id).expect("query completes") {
            JobOutput::Query { outcome, .. } => shared_lines.push(outcome.lines),
            other => panic!("expected a query output, got {other:?}"),
        }
    }
    let concurrent_wall = wall_start.elapsed().as_secs_f64();
    let stats = handle.stats();
    service.shutdown();

    // Byte-identical outputs are non-negotiable: the snapshot is fixed, so
    // every query must return exactly its solo result however the waves
    // formed.
    for ((q, solo), shared) in QUERIES.iter().zip(&solo_lines).zip(&shared_lines) {
        assert_eq!(shared, solo, "query {q:?} diverged from its solo run");
    }
    eprintln!(
        "service: {} waves, demanded {} page reads, issued {} unique ({} avoided)",
        stats.waves, stats.demanded_page_reads, stats.unique_pages_read, stats.shared_reads_avoided
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mithrilog.bench.service_load.v1\",");
    let _ = writeln!(json, "  \"bench\": \"service_load\",");
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"liberty2\", \"bytes\": {}, \"lines\": {} }},",
        ds.text().len(),
        ds.lines()
    );
    let _ = writeln!(json, "  \"concurrent_queries\": {},", QUERIES.len());
    let _ = writeln!(json, "  \"solo_page_reads_summed\": {solo_page_reads},");
    let _ = writeln!(json, "  \"solo_wall_seconds_summed\": {solo_wall:.6},");
    let _ = writeln!(json, "  \"concurrent_wall_seconds\": {concurrent_wall:.6},");
    let _ = writeln!(json, "  \"waves\": {},", stats.waves);
    let _ = writeln!(
        json,
        "  \"demanded_page_reads\": {},",
        stats.demanded_page_reads
    );
    let _ = writeln!(
        json,
        "  \"unique_pages_read\": {},",
        stats.unique_pages_read
    );
    let _ = writeln!(
        json,
        "  \"shared_reads_avoided\": {},",
        stats.shared_reads_avoided
    );
    let _ = writeln!(
        json,
        "  \"read_amplification_vs_solo\": {:.4},",
        stats.unique_pages_read as f64 / solo_page_reads.max(1) as f64
    );
    let _ = writeln!(
        json,
        "  \"note\": \"demanded = page reads the wave's queries would have issued solo; \
         unique = physical reads the shared scan issued; outputs asserted byte-identical \
         to solo runs (tests/service_concurrency.rs enforces this under faults too)\","
    );
    json.push_str("  \"queries\": [\n");
    for (i, (q, lines)) in QUERIES.iter().zip(&shared_lines).enumerate() {
        let _ = write!(
            json,
            "    {{ \"query\": {q:?}, \"matches\": {} }}",
            lines.len()
        );
        json.push_str(if i + 1 < QUERIES.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
