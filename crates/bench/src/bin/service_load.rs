//! Concurrent-load bench: 8 overlapping queries through the concurrent
//! query service versus the same 8 run solo, one at a time.
//!
//! The paper's accelerator amortizes one flash stream across many pattern
//! matchers; the service realizes that as cross-query page sharing — a
//! wave of concurrently admitted queries reads each distinct page once and
//! fans the decompressed text out to every waiting filter. This bench
//! measures the effect: `demanded_page_reads` (what 8 solo runs would have
//! issued) versus `unique_pages_read` (what the shared scan actually
//! issued), while asserting every query's matched lines are byte-identical
//! to its solo run.
//!
//! Emits `BENCH_service.json`.
//!
//! Usage: `service_load [--smoke] [--mb <f64>] [--out <path>]`

use std::fmt::Write as _;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig};

/// Eight queries with heavily overlapping page plans: most are broad
/// enough to full-scan, so their plans cover the same pages.
const QUERIES: [&str; 8] = [
    "error OR failed OR FATAL",
    "error",
    "failed",
    "NOT error",
    "FATAL AND NOT failed",
    "error AND NOT FATAL",
    "failed OR FATAL",
    "NOT FATAL",
];

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 4.0,
        out: "BENCH_service.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

fn main() {
    let args = parse_args();
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    let mut system = MithriLog::new(SystemConfig::default());
    system.ingest(ds.text()).expect("ingest");
    eprintln!(
        "corpus: {} bytes / {} lines into {} pages",
        ds.text().len(),
        ds.lines(),
        system.data_page_count()
    );

    // Solo baseline: each query alone, its own ledger delta.
    let mut solo_lines = Vec::new();
    let mut solo_page_reads = 0u64;
    let mut solo_wall = 0.0f64;
    for q in QUERIES {
        let outcome = system.query_str(q).expect("solo query");
        solo_page_reads += outcome.ledger.pages_read;
        solo_wall += outcome.wall_time.as_secs_f64();
        solo_lines.push(outcome.lines);
    }
    eprintln!(
        "solo: {solo_page_reads} device page reads summed over {} runs",
        QUERIES.len()
    );

    // Concurrent: the service owns the system; the 8 queries are submitted
    // back to back, so the scheduler admits them into shared-scan waves
    // (typically one wave — submissions outpace the scheduler wakeup).
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 64,
            max_batch: QUERIES.len(),
            default_page_budget: None,
        },
    );
    let handle = service.handle();
    let wall_start = std::time::Instant::now();
    let ids: Vec<_> = QUERIES
        .iter()
        .map(|q| handle.submit_str(q, Priority::Normal).expect("submit"))
        .collect();
    let mut shared_lines = Vec::new();
    for id in ids {
        match handle.wait(id).expect("query completes") {
            JobOutput::Query { outcome, .. } => shared_lines.push(outcome.lines),
            other => panic!("expected a query output, got {other:?}"),
        }
    }
    let concurrent_wall = wall_start.elapsed().as_secs_f64();
    let stats = handle.stats();
    service.shutdown();

    // Byte-identical outputs are non-negotiable: the snapshot is fixed, so
    // every query must return exactly its solo result however the waves
    // formed.
    for ((q, solo), shared) in QUERIES.iter().zip(&solo_lines).zip(&shared_lines) {
        assert_eq!(shared, solo, "query {q:?} diverged from its solo run");
    }
    eprintln!(
        "service: {} waves, demanded {} page reads, issued {} unique ({} avoided)",
        stats.waves, stats.demanded_page_reads, stats.unique_pages_read, stats.shared_reads_avoided
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_load\",");
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"liberty2\", \"bytes\": {}, \"lines\": {} }},",
        ds.text().len(),
        ds.lines()
    );
    let _ = writeln!(json, "  \"concurrent_queries\": {},", QUERIES.len());
    let _ = writeln!(json, "  \"solo_page_reads_summed\": {solo_page_reads},");
    let _ = writeln!(json, "  \"solo_wall_seconds_summed\": {solo_wall:.6},");
    let _ = writeln!(json, "  \"concurrent_wall_seconds\": {concurrent_wall:.6},");
    let _ = writeln!(json, "  \"waves\": {},", stats.waves);
    let _ = writeln!(
        json,
        "  \"demanded_page_reads\": {},",
        stats.demanded_page_reads
    );
    let _ = writeln!(
        json,
        "  \"unique_pages_read\": {},",
        stats.unique_pages_read
    );
    let _ = writeln!(
        json,
        "  \"shared_reads_avoided\": {},",
        stats.shared_reads_avoided
    );
    let _ = writeln!(
        json,
        "  \"read_amplification_vs_solo\": {:.4},",
        stats.unique_pages_read as f64 / solo_page_reads.max(1) as f64
    );
    let _ = writeln!(
        json,
        "  \"note\": \"demanded = page reads the wave's queries would have issued solo; \
         unique = physical reads the shared scan issued; outputs asserted byte-identical \
         to solo runs (tests/service_concurrency.rs enforces this under faults too)\","
    );
    json.push_str("  \"queries\": [\n");
    for (i, (q, lines)) in QUERIES.iter().zip(&shared_lines).enumerate() {
        let _ = write!(
            json,
            "    {{ \"query\": {q:?}, \"matches\": {} }}",
            lines.len()
        );
        json.push_str(if i + 1 < QUERIES.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
