//! Regenerates **Table 1**: dataset statistics (lines, size, FT-tree
//! template count) for the four HPC4-profile corpora.

use mithrilog_bench::{datasets, f2, ftree_config, HarnessArgs, TableReport};
use mithrilog_ftree::TemplateLibrary;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table1", &args);
    println!(
        "Table 1 — datasets (scale {} MB each, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper values (full HPC4): lines 4.7M/265.5M/272.2M/211.2M, sizes 0.7/30/38/30 GB, templates 93/197/241/125");

    let rows: Vec<Vec<String>> = datasets(&args)
        .iter()
        .map(|ds| {
            let lib = TemplateLibrary::extract(ds.text(), &ftree_config());
            vec![
                ds.name().to_string(),
                format!("{:.3}", ds.lines() as f64 / 1e6),
                f2(ds.text().len() as f64 / 1e9),
                lib.len().to_string(),
            ]
        })
        .collect();
    report.table(
        "Table 1: dataset statistics",
        &["Dataset", "Lines (M)", "Size (GB)", "Templates"],
        &rows,
    );
    report.write();
}
