//! Regenerates **Table 7**: average end-to-end performance improvement of
//! MithriLog over the Splunk-style indexed engine, across the full query
//! bank (§7.5).
//!
//! Methodology mirrors the paper with both sides on device/cost models so
//! the comparison is scale-stable:
//!
//! * the indexed engine runs each query *functionally* (exact result sets,
//!   exact fetch-and-verify byte counts); its time is the paper-calibrated
//!   [`SplunkCostModel`] — per-search overhead plus ~39 MB/s single-thread
//!   event processing, divided by 12 hyper-threads in Splunk's favor;
//! * MithriLog's time is the modeled prototype device time of the
//!   functional end-to-end run (index probe → page stream → decompress →
//!   filter).
//!
//! Both engines' *results* are asserted identical on every query.

use std::time::Duration;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{IndexedEngine, LogTable, SplunkCostModel};
use mithrilog_bench::{datasets, f2, query_bank, HarnessArgs, TableReport};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table7", &args);
    println!(
        "Table 7 — average improvement over the indexed (Splunk-style) engine (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper: 9.93 / 352.26 / 201.20 / 86.32 (total-time ratio per dataset)");

    let model = SplunkCostModel::paper_calibrated();
    let mut rows = Vec::new();
    for ds in datasets(&args) {
        let bank = query_bank(&ds, args.seed);
        let classes: [(&str, Vec<_>); 4] = [
            ("singles", bank.singles.clone()),
            ("pairs", bank.pairs.clone()),
            ("eights", bank.eights.clone()),
            ("negative-heavy", bank.negations.clone()),
        ];

        let table = LogTable::from_text(ds.text());
        let splunk = IndexedEngine::build(&table);
        let mut system = MithriLog::new(SystemConfig::default());
        system.ingest(ds.text()).expect("ingest");

        let mut splunk_total = Duration::ZERO;
        let mut mithrilog_total = Duration::ZERO;
        let mut total_queries = 0usize;
        let mut class_ratios = Vec::new();
        for (name, queries) in &classes {
            let mut s_class = Duration::ZERO;
            let mut m_class = Duration::ZERO;
            for q in queries {
                let run = splunk.execute(&table, q);
                s_class += model.modeled_time(run.fetched_bytes);
                let o = system.query(q).expect("query");
                m_class += o.modeled_time;
                assert_eq!(
                    o.match_count(),
                    run.match_count(),
                    "engines disagreed on {q}"
                );
            }
            class_ratios.push(format!(
                "{name} {:.1}x",
                s_class.as_secs_f64() / m_class.as_secs_f64().max(1e-12)
            ));
            splunk_total += s_class;
            mithrilog_total += m_class;
            total_queries += queries.len();
        }
        let ratio = splunk_total.as_secs_f64() / mithrilog_total.as_secs_f64().max(1e-12);
        rows.push(vec![
            ds.name().to_string(),
            total_queries.to_string(),
            format!("{:.3}", splunk_total.as_secs_f64()),
            format!("{:.3}", mithrilog_total.as_secs_f64()),
            format!("{}x", f2(ratio)),
            class_ratios.join(", "),
        ]);
    }
    report.table(
        "Table 7: total end-to-end time over the full query bank",
        &[
            "Dataset",
            "Queries",
            "Splunk-model s (/12)",
            "MithriLog s (modeled)",
            "Improvement",
            "By class",
        ],
        &rows,
    );
    println!(
        "\nShape check: MithriLog wins on every class; the advantage is largest on the\n\
         negative-heavy exploration queries (index cannot prune; the accelerator full-scans\n\
         at wire speed) and grows with dataset scale — the paper's 30 GB corpora produce\n\
         the 10-350x column, laptop-scale corpora proportionally less."
    );
    report.write();
}
