//! Scan hot-path microbenchmark: the zero-allocation decompression kernel
//! and the cross-wave decompressed-page cache.
//!
//! Emits `BENCH_scan.json` with two experiments:
//!
//! * **kernel** — the same LZAH page frames decompressed through the old
//!   allocating path (`Codec::decompress`, a fresh scratch per page) and
//!   the steady-state path (`decompress_into` reusing one
//!   [`LzahScratch`]). A counting global allocator (a bin crate is its
//!   own root, so the library's `forbid(unsafe_code)` does not apply)
//!   reports allocations per page for both; the reused scratch must be
//!   O(1) per *run*, i.e. ~0 per page.
//! * **cache** — the same repeated full-scan query on a cache-enabled and
//!   a cache-disabled system. Warm pages/sec must be ≥1.5× the uncached
//!   rate (asserted in full runs; `--smoke` only records), with the hit
//!   rate taken from the device ledger's `cache_hits` counters.
//!
//! Usage: `scan_hotpath [--smoke] [--mb <f64>] [--out <path>]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_compress::{compress_paged, Codec, Lzah, LzahConfig, LzahScratch};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

const QUERY: &str = "FATAL AND interrupt";

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 4.0,
        out: "BENCH_scan.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

struct KernelRow {
    pages_per_sec: f64,
    allocs_per_page: f64,
}

/// Decompresses every frame `reps` times through `step`, timing the work
/// and counting allocations. `step` must return the decompressed length
/// (consumed so the work cannot be optimized away).
fn measure_kernel(
    frames: &[Vec<u8>],
    reps: u32,
    mut step: impl FnMut(&[u8]) -> usize,
) -> KernelRow {
    let mut sink = 0usize;
    let allocs_before = allocations();
    let t0 = Instant::now();
    for _ in 0..reps {
        for frame in frames {
            sink = sink.wrapping_add(step(frame));
        }
    }
    let elapsed = t0.elapsed().as_secs_f64().max(1e-12);
    let allocs = allocations() - allocs_before;
    let pages = frames.len() as u64 * u64::from(reps);
    assert!(sink > 0, "decompression must produce bytes");
    KernelRow {
        pages_per_sec: pages as f64 / elapsed,
        allocs_per_page: allocs as f64 / pages as f64,
    }
}

fn main() {
    let args = parse_args();
    let reps = if args.smoke { 2 } else { 5 };

    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    eprintln!(
        "corpus: {} bytes / {} lines of {}",
        ds.text().len(),
        ds.lines(),
        ds.name()
    );

    // ---- Kernel: allocating vs scratch-reusing decompression ----------
    let lzah = LzahConfig::default();
    let frames: Vec<Vec<u8>> = compress_paged(ds.text(), lzah, 4096)
        .pages()
        .iter()
        .map(|f| f.data().to_vec())
        .collect();
    let codec = Lzah::new(lzah);

    // Correctness guard + warm-up: both paths agree byte-for-byte, and the
    // reusable scratch reaches its steady-state capacity before timing.
    let mut scratch = LzahScratch::new();
    for frame in &frames {
        let fresh = codec.decompress(frame).expect("decompress");
        let reused = codec.decompress_into(frame, &mut scratch).expect("into");
        assert_eq!(fresh, reused, "paths must agree");
    }

    let before = measure_kernel(&frames, reps, |frame| {
        codec.decompress(frame).expect("decompress").len()
    });
    let after = measure_kernel(&frames, reps, |frame| {
        codec
            .decompress_into(frame, &mut scratch)
            .expect("into")
            .len()
    });
    let kernel_speedup = after.pages_per_sec / before.pages_per_sec.max(1e-12);
    eprintln!(
        "kernel: before {:.0} pages/s at {:.2} allocs/page | after {:.0} pages/s at \
         {:.4} allocs/page ({kernel_speedup:.2}x)",
        before.pages_per_sec, before.allocs_per_page, after.pages_per_sec, after.allocs_per_page
    );
    assert!(
        after.allocs_per_page < 0.01,
        "the scratch path must be allocation-free per page in steady state \
         (measured {:.4}/page)",
        after.allocs_per_page
    );
    assert!(
        before.allocs_per_page >= 2.0,
        "the allocating baseline should allocate per page \
         (measured {:.2}/page)",
        before.allocs_per_page
    );

    // ---- Cache: repeated full-scan query, cache on vs off -------------
    let mut rows = Vec::new();
    for cache_bytes in [0u64, 256 * 1024 * 1024] {
        let config = SystemConfig {
            page_cache_bytes: cache_bytes,
            ..SystemConfig::full_scan_only()
        };
        let mut system = MithriLog::new(config);
        system.ingest(ds.text()).expect("ingest");
        let cold = system.query_str(QUERY).expect("cold query");
        let ledger_cold = *system.device().ledger();
        let mut walls = Vec::new();
        let mut matches = cold.match_count();
        for _ in 0..reps {
            let outcome = system.query_str(QUERY).expect("warm query");
            assert_eq!(outcome.match_count(), matches, "results must not move");
            assert_eq!(outcome.ledger, cold.ledger, "as-if-solo ledger is fixed");
            matches = outcome.match_count();
            walls.push(outcome.wall_time);
        }
        let warm_reads = system.device().ledger().since(&ledger_cold);
        let hit_rate = warm_reads.cache_hits as f64
            / (warm_reads.cache_hits + warm_reads.pages_read).max(1) as f64;
        let wall = median(walls);
        let pages_per_sec = cold.pages_scanned as f64 / wall.as_secs_f64().max(1e-12);
        eprintln!(
            "cache {} bytes: warm {wall:?} = {pages_per_sec:.0} pages/s, hit rate {:.3}, \
             {} matches",
            cache_bytes, hit_rate, matches
        );
        rows.push((cache_bytes, wall, pages_per_sec, hit_rate, matches));
    }
    let cache_speedup = rows[1].2 / rows[0].2.max(1e-12);
    eprintln!("cache-warm speedup: {cache_speedup:.2}x");
    assert!(
        rows[1].3 > 0.99,
        "a repeated identical query must be served almost entirely from \
         the cache (hit rate {:.3})",
        rows[1].3
    );
    assert!(
        (rows[0].3 - 0.0).abs() < f64::EPSILON,
        "a disabled cache cannot hit"
    );
    if !args.smoke {
        assert!(
            cache_speedup >= 1.5,
            "cache-warm scans must be at least 1.5x the uncached rate \
             (measured {cache_speedup:.2}x)"
        );
    }

    // ---- Emit ----------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mithrilog.bench.scan_hotpath.v1\",");
    let _ = writeln!(json, "  \"bench\": \"scan_hotpath\",");
    let _ = writeln!(json, "  \"query\": {QUERY:?},");
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"bgl2\", \"bytes\": {}, \"lines\": {}, \
         \"pages\": {} }},",
        ds.text().len(),
        ds.lines(),
        frames.len()
    );
    let _ = writeln!(
        json,
        "  \"kernel\": {{ \"before_pages_per_sec\": {:.1}, \"before_allocs_per_page\": {:.3}, \
         \"after_pages_per_sec\": {:.1}, \"after_allocs_per_page\": {:.4}, \
         \"speedup\": {:.3} }},",
        before.pages_per_sec,
        before.allocs_per_page,
        after.pages_per_sec,
        after.allocs_per_page,
        kernel_speedup
    );
    json.push_str("  \"cache\": [\n");
    for (i, (bytes, wall, pps, hit_rate, matches)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"page_cache_bytes\": {bytes}, \"warm_wall_seconds\": {:.6}, \
             \"warm_pages_per_sec\": {pps:.1}, \"hit_rate\": {hit_rate:.4}, \
             \"matches\": {matches} }}",
            wall.as_secs_f64()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"cache_warm_speedup\": {cache_speedup:.3}");
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
