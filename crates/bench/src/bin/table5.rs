//! Regenerates **Table 5**: compression ratios of LZAH vs LZRW1, LZ4 and
//! a Gzip-class codec on all four dataset profiles.

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_compress::{Codec, Gzf, Lz4, Lzah, Lzrw1, Snappy};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table5", &args);
    println!(
        "Table 5 — compression ratios (scale {} MB/dataset, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper: LZAH 2.63/3.85/6.60/7.35, LZRW1 4.39/5.79/6.00/3.89, LZ4 5.95/27.27/27.14/9.68, Gzip 11.82/47.93/45.04/15.79");

    let sets = datasets(&args);
    let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
        ("LZAH", Box::new(Lzah::default())),
        ("LZRW1", Box::new(Lzrw1::new())),
        ("LZ4", Box::new(Lz4::new())),
        ("Snappy", Box::new(Snappy::new())),
        ("Gzf (Gzip-class)", Box::new(Gzf::new())),
    ];
    let mut rows = Vec::new();
    for (name, codec) in &codecs {
        let mut row = vec![name.to_string()];
        for ds in &sets {
            row.push(format!("{}x", f2(codec.ratio(ds.text()))));
        }
        rows.push(row);
    }
    report.table(
        "Table 5: compression effectiveness",
        &["Algorithm", "BGL2", "Liberty2", "Spirit2", "Thunderbird"],
        &rows,
    );
    println!(
        "\nShape check: the general-purpose codecs out-compress LZAH; LZAH trades ratio for a\n\
         deterministic one-word-per-cycle hardware decoder (3.2 GB/s/pipeline at 4 KLUTs)."
    );
    report.write();
}
