//! Regenerates **Figure 15**: throughput histograms of the full-scan
//! engines on single / 2-way / 8-way query batches, per dataset
//! (§7.4.2). The scan engine's distribution shifts left as combinations
//! grow; MithriLog sits in a single high bucket regardless of query.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{effective_throughput_gbps, time_query, LogTable, ScanEngine};
use mithrilog_bench::{ascii_histogram, datasets, query_bank, HarnessArgs};
use mithrilog_query::Query;

fn throughputs(engine: &ScanEngine, table: &LogTable, queries: &[Query], bytes: u64) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            let m = time_query(|| engine.count_matches(table, q));
            effective_throughput_gbps(bytes, m.elapsed)
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 15 — throughput histograms, scan engine vs MithriLog (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    let engine = ScanEngine::new();
    for ds in datasets(&args) {
        let bank = query_bank(&ds, args.seed);
        let table = LogTable::from_text(ds.text());
        let bytes = ds.text().len() as u64;
        let mut system = MithriLog::new(SystemConfig::full_scan_only());
        system.ingest(ds.text()).expect("ingest");
        let accel = system.modeled_throughput().total_gbps;

        println!("\n--- {} ---", ds.name());
        for (label, queries) in [
            ("single queries", &bank.singles),
            ("2-query combinations", &bank.pairs),
            ("8-query combinations", &bank.eights),
        ] {
            let tp = throughputs(&engine, &table, queries, bytes);
            ascii_histogram(&format!("ScanEngine, {label} (n={})", tp.len()), &tp);
            let accel_series = vec![accel; queries.len()];
            ascii_histogram(
                &format!("MithriLog,  {label} (n={})", queries.len()),
                &accel_series,
            );
        }
    }
    println!(
        "\nShape check: the scan engine's histogram moves left with larger combinations;\n\
         MithriLog is a single constant bucket near the top of the axis."
    );
}
