//! Regenerates **Figure 15**: throughput histograms of the full-scan
//! engines on single / 2-way / 8-way query batches, per dataset
//! (§7.4.2). The scan engine's distribution shifts left as combinations
//! grow; MithriLog sits in a single high bucket regardless of query.

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{effective_throughput_gbps, time_query, LogTable, ScanEngine};
use mithrilog_bench::{ascii_histogram, datasets, query_bank, HarnessArgs, TableReport};
use mithrilog_query::Query;

fn throughputs(engine: &ScanEngine, table: &LogTable, queries: &[Query], bytes: u64) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            let m = time_query(|| engine.count_matches(table, q));
            effective_throughput_gbps(bytes, m.elapsed)
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("fig15", &args);
    println!(
        "Figure 15 — throughput histograms, scan engine vs MithriLog (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    let engine = ScanEngine::new();
    let mut summary_rows = Vec::new();
    for ds in datasets(&args) {
        let bank = query_bank(&ds, args.seed);
        let table = LogTable::from_text(ds.text());
        let bytes = ds.text().len() as u64;
        let mut system = MithriLog::new(SystemConfig::full_scan_only());
        system.ingest(ds.text()).expect("ingest");
        let accel = system.modeled_throughput().total_gbps;

        println!("\n--- {} ---", ds.name());
        for (label, queries) in [
            ("single queries", &bank.singles),
            ("2-query combinations", &bank.pairs),
            ("8-query combinations", &bank.eights),
        ] {
            let tp = throughputs(&engine, &table, queries, bytes);
            ascii_histogram(&format!("ScanEngine, {label} (n={})", tp.len()), &tp);
            let accel_series = vec![accel; queries.len()];
            ascii_histogram(
                &format!("MithriLog,  {label} (n={})", queries.len()),
                &accel_series,
            );
            let mut sorted = tp.clone();
            sorted.sort_by(|a, b| a.total_cmp(b));
            summary_rows.push(vec![
                ds.name().to_string(),
                label.to_string(),
                tp.len().to_string(),
                format!("{:.3}", sorted.first().copied().unwrap_or(0.0)),
                format!(
                    "{:.3}",
                    sorted.get(sorted.len() / 2).copied().unwrap_or(0.0)
                ),
                format!("{:.3}", sorted.last().copied().unwrap_or(0.0)),
                format!("{accel:.3}"),
            ]);
        }
    }
    report.record(
        "Figure 15 summary: scan-engine throughput distribution vs MithriLog (GB/s)",
        &[
            "Dataset",
            "Batch",
            "Queries",
            "Scan min",
            "Scan median",
            "Scan max",
            "MithriLog",
        ],
        &summary_rows,
    );
    println!(
        "\nShape check: the scan engine's histogram moves left with larger combinations;\n\
         MithriLog is a single constant bucket near the top of the axis."
    );
    report.write();
}
