//! Multi-device shard scaling: the same full-scan query over the same
//! corpus, served by 1, 2, and 4 fully independent modeled devices
//! (paper §8 — near-storage accelerators scale by adding devices, since
//! each brings its own internal-bandwidth domain).
//!
//! Emits `BENCH_shard.json`. Three honesty rules keep the numbers honest:
//!
//! * `aggregate_modeled_gbps` divides the corpus's raw bytes by the
//!   *merged* modeled time, which is the max over shards — devices run in
//!   parallel, so the slowest (largest) shard sets the wall. A skewed
//!   route would show up here as sub-linear scaling, not be averaged away.
//! * every topology's query result is asserted byte-identical to the
//!   1-shard run (the shard layer's core invariant, enforced exhaustively
//!   by `tests/shard_determinism.rs`);
//! * each shard also reports its **as-if-solo** row (lines, pages, device
//!   ledger, standalone modeled GB/s) so the aggregate can be audited
//!   against what each device actually held and read.
//!
//! The tenant drill runs the service scheduler over a 2-shard topology
//! with a per-tenant admission cap: a flooding tenant saturates its own
//! quota (rejections) while a steady tenant's queries are all admitted
//! and completed — one tenant cannot starve another.
//!
//! Usage: `shard_scaling [--smoke] [--mb <f64>] [--out <path>]`

use std::fmt::Write as _;

use mithrilog::SystemConfig;
use mithrilog_bench::json_escape;
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig, SubmitError};
use mithrilog_shard::{RouteMode, ShardOptions, ShardRow, ShardedLog};

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];
const QUERY: &str = "error OR failed OR FATAL";

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 6.0,
        out: "BENCH_shard.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

struct ScalingRow {
    shards: u32,
    modeled_seconds: f64,
    aggregate_gbps: f64,
    speedup: f64,
    matches: u64,
    pages_scanned: u64,
    rows: Vec<ShardRow>,
}

struct TenantDrill {
    flood_submitted: u64,
    flood_rejected: u64,
    flood_completed: u64,
    steady_submitted: u64,
    steady_rejected: u64,
    steady_completed: u64,
    tenant_cap: usize,
}

fn run_scaling(text: &[u8], raw_bytes: f64) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    let mut baseline: Option<(f64, Vec<String>)> = None;
    for &shards in &SHARD_COUNTS {
        let mut sharded = ShardedLog::new(
            SystemConfig::full_scan_only(),
            ShardOptions {
                shards,
                mode: RouteMode::LineHash,
                salt: 42,
            },
        );
        sharded.ingest(text).expect("ingest");
        let outcome = sharded.query_str(QUERY).expect("query");
        let modeled = outcome.modeled_time.as_secs_f64().max(1e-12);
        let gbps = raw_bytes / 1e9 / modeled;
        match &baseline {
            None => baseline = Some((modeled, outcome.lines.clone())),
            Some((_, lines)) => assert_eq!(
                lines, &outcome.lines,
                "{shards}-shard results must be byte-identical to 1-shard"
            ),
        }
        let speedup = baseline.as_ref().map_or(1.0, |(t1, _)| t1 / modeled);
        let rows = sharded.shard_rows();
        eprintln!(
            "shards {shards}: modeled {modeled:.6}s | aggregate {gbps:.2} GB/s \
             ({speedup:.2}x) | {} matches over {} pages",
            outcome.match_count(),
            outcome.pages_scanned
        );
        for row in &rows {
            eprintln!(
                "  shard {}: {} lines / {} pages, read {} pages / {} bytes, \
                 as-if-solo {:.2} GB/s",
                row.shard,
                row.lines,
                row.data_pages,
                row.pages_read,
                row.bytes_read,
                row.modeled_gbps
            );
        }
        out.push(ScalingRow {
            shards,
            modeled_seconds: modeled,
            aggregate_gbps: gbps,
            speedup,
            matches: outcome.match_count(),
            pages_scanned: outcome.pages_scanned,
            rows,
        });
    }
    out
}

fn run_tenant_drill(text: &[u8], smoke: bool) -> TenantDrill {
    let tenant_cap = 4;
    let mut sharded = ShardedLog::new(
        SystemConfig::default(),
        ShardOptions {
            shards: 2,
            mode: RouteMode::LineHash,
            salt: 42,
        },
    );
    sharded.ingest(text).expect("ingest");
    let service = Service::spawn(
        sharded,
        ServiceConfig {
            max_queue: 64,
            max_batch: 4,
            tenant_max_queued: Some(tenant_cap),
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let floods = if smoke { 32 } else { 128 };
    let steadies = if smoke { 8 } else { 16 };
    let mut drill = TenantDrill {
        flood_submitted: 0,
        flood_rejected: 0,
        flood_completed: 0,
        steady_submitted: 0,
        steady_rejected: 0,
        steady_completed: 0,
        tenant_cap,
    };
    let mut flood_ids = Vec::new();
    let submit_flood = |drill: &mut TenantDrill, ids: &mut Vec<_>| {
        drill.flood_submitted += 1;
        match handle.submit_str_tagged(QUERY, Priority::Normal, Some("flood")) {
            Ok(id) => ids.push(id),
            Err(SubmitError::Rejected { .. }) => drill.flood_rejected += 1,
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    };
    // The flood bursts far past its per-tenant cap up front, then keeps
    // re-saturating between steady operations. The steady tenant trickles
    // (one outstanding query at a time) — the fairness claim is that its
    // admissions never fail while the flood is being clipped.
    for _ in 0..floods {
        submit_flood(&mut drill, &mut flood_ids);
    }
    for _ in 0..steadies {
        drill.steady_submitted += 1;
        match handle.submit_str_tagged(QUERY, Priority::Normal, Some("steady")) {
            Ok(id) => match handle.wait(id).expect("wait") {
                JobOutput::Query { .. } => drill.steady_completed += 1,
                other => panic!("expected a query result, got {other:?}"),
            },
            Err(SubmitError::Rejected { .. }) => drill.steady_rejected += 1,
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
        submit_flood(&mut drill, &mut flood_ids);
    }
    for id in flood_ids {
        match handle.wait(id).expect("wait") {
            JobOutput::Query { .. } => drill.flood_completed += 1,
            other => panic!("expected a query result, got {other:?}"),
        }
    }
    service.shutdown();
    assert!(
        drill.flood_rejected > 0,
        "the flood must overrun its per-tenant cap"
    );
    assert_eq!(
        drill.steady_rejected, 0,
        "the steady tenant must never be starved of admission"
    );
    assert_eq!(
        drill.steady_completed, drill.steady_submitted,
        "every steady query must complete"
    );
    eprintln!(
        "tenant drill (cap {tenant_cap}): flood {}/{} admitted ({} rejected), \
         steady {}/{} completed, 0 rejected",
        drill.flood_completed,
        drill.flood_submitted,
        drill.flood_rejected,
        drill.steady_completed,
        drill.steady_submitted
    );
    drill
}

fn main() {
    let args = parse_args();
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    eprintln!(
        "corpus: {} bytes / {} lines of {}",
        ds.text().len(),
        ds.lines(),
        ds.name()
    );

    let scaling = run_scaling(ds.text(), ds.text().len() as f64);
    let at4 = scaling.iter().find(|r| r.shards == 4).expect("4-shard row");
    // The scaling gate holds at full scale; a smoke corpus is small enough
    // that the per-query fixed latency floor (not per-page scan supply)
    // dominates the modeled time, so only byte-identity is asserted there.
    if !args.smoke {
        assert!(
            at4.speedup >= 3.0,
            "4 devices must deliver >= 3x aggregate modeled throughput, got {:.2}x",
            at4.speedup
        );
    }
    let drill = run_tenant_drill(ds.text(), args.smoke);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"mithrilog.bench.shard_scaling.v1\",");
    let _ = writeln!(json, "  \"bench\": \"shard_scaling\",");
    let _ = writeln!(json, "  \"query\": \"{}\",", json_escape(QUERY));
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"liberty2\", \"bytes\": {}, \"lines\": {} }},",
        ds.text().len(),
        ds.lines()
    );
    let _ = writeln!(
        json,
        "  \"note\": \"aggregate_modeled_gbps = raw corpus bytes / merged modeled time \
         (max over shards, devices run in parallel). Results are asserted byte-identical \
         across topologies; per-shard rows are each device's as-if-solo view so the \
         aggregate can be audited.\","
    );
    json.push_str("  \"scaling\": [\n");
    for (i, row) in scaling.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"shards\": {}, \"modeled_seconds\": {:.6}, \
             \"aggregate_modeled_gbps\": {:.3}, \"speedup_vs_one_shard\": {:.3}, \
             \"matches\": {}, \"pages_scanned\": {},",
            row.shards,
            row.modeled_seconds,
            row.aggregate_gbps,
            row.speedup,
            row.matches,
            row.pages_scanned
        );
        json.push_str("      \"per_shard\": [\n");
        for (j, s) in row.rows.iter().enumerate() {
            let _ = write!(
                json,
                "        {{ \"shard\": {}, \"lines\": {}, \"data_pages\": {}, \
                 \"raw_bytes\": {}, \"pages_read\": {}, \"bytes_read\": {}, \
                 \"retries\": {}, \"as_if_solo_modeled_gbps\": {:.3} }}",
                s.shard,
                s.lines,
                s.data_pages,
                s.raw_bytes,
                s.pages_read,
                s.bytes_read,
                s.retries,
                s.modeled_gbps
            );
            json.push_str(if j + 1 < row.rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ] }");
        json.push_str(if i + 1 < scaling.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"tenant_drill\": {{ \"tenant_cap\": {}, \"flood_submitted\": {}, \
         \"flood_rejected\": {}, \"flood_completed\": {}, \"steady_submitted\": {}, \
         \"steady_rejected\": {}, \"steady_completed\": {} }}",
        drill.tenant_cap,
        drill.flood_submitted,
        drill.flood_rejected,
        drill.flood_completed,
        drill.steady_submitted,
        drill.steady_rejected,
        drill.steady_completed
    );
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
