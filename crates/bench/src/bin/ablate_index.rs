//! Ablation: inverted index design choices (§6.1–6.2) — two hash functions
//! versus one, and tree-of-lists node sizing versus a naive linked list.
//!
//! Reports (a) the latency-bound device-time arithmetic for naive list
//! nodes vs the height-2 trees, and (b) the measured effect of two-choice
//! insertion on lookup superset sizes under a hot-token workload.

use mithrilog_bench::{f2, HarnessArgs, TableReport};
use mithrilog_index::{IndexParams, InvertedIndex};
use mithrilog_storage::{DevicePerfModel, Link, MemStore, PageId, SimSsd};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("ablate_index", &args);
    println!("Ablation — index structure (seed {})", args.seed);

    // (a) Device-time arithmetic: pages deliverable per second.
    let model = DevicePerfModel::bluedbm_prototype();
    let mut rows = Vec::new();
    for (name, addrs_per_visit) in [
        ("naive list, 16-entry nodes", 16u64),
        ("naive list, 128-entry nodes", 128),
        ("tree-of-lists, 16x16 (paper)", 256),
        ("tree-of-lists, 32x32", 1024),
    ] {
        let visits_per_sec = model.dependent_visits_per_sec();
        let pages_per_sec = visits_per_sec * addrs_per_visit as f64;
        let gbps = pages_per_sec * model.page_bytes as f64 / 1e9;
        rows.push(vec![
            name.to_string(),
            addrs_per_visit.to_string(),
            format!("{:.0}", pages_per_sec),
            f2(gbps),
            if gbps >= model.internal_bw / 1e9 {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    report.table(
        "Index node sizing: can one latency-bound visit stream saturate the device?",
        &[
            "Design",
            "Pages/visit",
            "Pages/s",
            "GB/s",
            "Saturates 4.8 GB/s",
        ],
        &rows,
    );

    // (b) Two-choice insertion: measured lookup superset sizes for a cold
    // token sharing entries with a hot token.
    let mut ssd = SimSsd::new(MemStore::new(4096), DevicePerfModel::default());
    let mut idx = InvertedIndex::new(IndexParams {
        hash_bits: 6, // tiny table to force sharing
        ..IndexParams::small()
    });
    for p in 0..2000u64 {
        idx.insert_page_tokens(&mut ssd, PageId(p), [b"hot-token".as_slice()])
            .expect("insert");
        if p % 100 == 0 {
            let t = format!("cold-{p}");
            idx.insert_page_tokens(&mut ssd, PageId(p), [t.as_bytes()])
                .expect("insert");
        }
    }
    ssd.clear_ledger();
    let hot = idx.lookup(&mut ssd, b"hot-token").expect("lookup").len();
    let cold = idx.lookup(&mut ssd, b"cold-0").expect("lookup").len();
    let t = ssd
        .ledger()
        .modeled_read_time(&DevicePerfModel::bluedbm_prototype(), Link::Internal);
    println!(
        "\nTwo-choice sharing: hot token returns {hot} pages, a cold token sharing the tiny\n\
         table returns {cold} candidate pages (superset pruned by the filter engine);\n\
         both lookups cost {t:?} of modeled device time."
    );
    println!(
        "\nReading: 16x16 trees are the smallest nodes that keep a 100 us-latency device\n\
         saturated, which is exactly why the paper rejects both the naive list (too slow)\n\
         and giant list nodes (gigabytes of ingest write buffering)."
    );
    report.write();
}
