//! Parallel-datapath scaling: wall-clock time of the same full-scan query
//! at 1/2/4/8 worker threads, against the analytic pipeline-scaling model
//! (paper §7.4.1 — "adding more pipelines to the same storage device will
//! improve performance").
//!
//! Emits `BENCH_parallel.json`. Two scaling curves are reported side by
//! side and must not be conflated:
//!
//! * `wall_*` — measured host wall-clock time. This scales with the
//!   *host's* CPUs (`host_cpus` in the output): on a single-core host the
//!   worker pool is concurrency without parallelism and wall speedup stays
//!   ≈1× by physics, regardless of the datapath's structure.
//! * `modeled_*` — the deterministic accelerator model, where each added
//!   pipeline contributes its full 3.2 GB/s until the dataset's
//!   storage-supply ceiling binds. This is the paper's claim; the
//!   functional result being byte-identical across thread counts is what
//!   `tests/parallel_determinism.rs` enforces.
//!
//! Usage: `parallel_scaling [--smoke] [--mb <f64>] [--out <path>]`

use std::fmt::Write as _;
use std::time::Duration;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_sim::{AcceleratorConfig, DatasetInputs, ThroughputModel};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const QUERY: &str = "error OR failed OR FATAL";

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 6.0,
        out: "BENCH_parallel.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.4);
    }
    args
}

fn median(mut xs: Vec<Duration>) -> Duration {
    xs.sort();
    xs[xs.len() / 2]
}

fn main() {
    let args = parse_args();
    let reps = if args.smoke { 1 } else { 3 };
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    eprintln!(
        "corpus: {} bytes / {} lines of {} | host CPUs: {host_cpus}",
        ds.text().len(),
        ds.lines(),
        ds.name()
    );

    // Full-scan configuration (§7.4.2): every query streams every data
    // page, so the scan datapath — not index pruning — dominates.
    let mut system = MithriLog::new(SystemConfig::full_scan_only());
    system.ingest(ds.text()).expect("ingest");

    // The modeled curve, from this corpus's measured statistics.
    let throughput = system.modeled_throughput();
    let model = ThroughputModel::new(AcceleratorConfig {
        storage_internal_gbps: system.config().device.internal_bw / 1e9,
        ..AcceleratorConfig::prototype()
    });
    let inputs = DatasetInputs {
        compression_ratio: system.compression_ratio(),
        tokenized_amplification: system.datapath_stats().amplification(),
        lane_utilization: 1.0,
    };
    let modeled = model.pipeline_scaling(&inputs, &THREAD_COUNTS);

    // Measured wall-clock per thread count; k=1 is the speedup baseline.
    // Results are asserted identical across counts (the determinism test
    // covers this exhaustively under fault injection).
    let mut rows = Vec::new();
    let mut baseline_wall = Duration::ZERO;
    let mut baseline_matches = usize::MAX;
    for (i, &threads) in THREAD_COUNTS.iter().enumerate() {
        system.set_query_threads(threads);
        let _warmup = system.query_str(QUERY).expect("warmup query");
        let mut walls = Vec::new();
        let mut matches = 0;
        for _ in 0..reps {
            let outcome = system.query_str(QUERY).expect("query");
            walls.push(outcome.wall_time);
            matches = outcome.match_count() as usize;
        }
        let wall = median(walls);
        if threads == 1 {
            baseline_wall = wall;
            baseline_matches = matches;
        }
        assert_eq!(
            matches, baseline_matches,
            "thread count must not change results"
        );
        let wall_speedup = baseline_wall.as_secs_f64() / wall.as_secs_f64().max(1e-12);
        let m = &modeled[i];
        eprintln!(
            "threads {threads}: wall {wall:?} ({wall_speedup:.2}x) | modeled {:.2} GB/s \
             ({:.2}x, bound by {})",
            m.modeled_gbps, m.modeled_speedup, m.bound_by
        );
        rows.push((threads, wall, wall_speedup, matches, *m));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"schema\": \"mithrilog.bench.parallel_scaling.v1\","
    );
    let _ = writeln!(json, "  \"bench\": \"parallel_scaling\",");
    let _ = writeln!(json, "  \"query\": {QUERY:?},");
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"liberty2\", \"bytes\": {}, \"lines\": {}, \
         \"data_pages\": {}, \"lzah_ratio\": {:.3} }},",
        ds.text().len(),
        ds.lines(),
        system.data_page_count(),
        system.compression_ratio()
    );
    let _ = writeln!(json, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(
        json,
        "  \"modeled_accelerator_gbps\": {:.3},",
        throughput.total_gbps
    );
    let _ = writeln!(
        json,
        "  \"note\": \"wall_* is host wall-clock and cannot exceed the host's CPU \
         parallelism (host_cpus); modeled_* is the deterministic accelerator model, \
         one 3.2 GB/s pipeline per thread until storage supply binds. Functional \
         results are byte-identical at every thread count (tests/parallel_determinism.rs).\","
    );
    json.push_str("  \"results\": [\n");
    for (i, (threads, wall, wall_speedup, matches, m)) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"threads\": {threads}, \"wall_seconds\": {:.6}, \
             \"wall_speedup\": {wall_speedup:.3}, \"matches\": {matches}, \
             \"modeled_gbps\": {:.3}, \"modeled_speedup\": {:.3}, \
             \"modeled_efficiency\": {:.3}, \"modeled_bound_by\": \"{}\" }}",
            wall.as_secs_f64(),
            m.modeled_gbps,
            m.modeled_speedup,
            m.efficiency,
            m.bound_by
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
