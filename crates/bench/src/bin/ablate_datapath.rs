//! Ablation: datapath width (§7.4.1 — "An 8-byte datapath was too slow…
//! the performance benefits of a 32-byte datapath were limited due to too
//! many padding bits").
//!
//! Sweeps the word width and reports, per dataset, the useful-bit ratio and
//! the modeled per-pipeline bandwidth trade-off: bandwidth per cycle grows
//! with width, but padding amplification grows too, demanding more hash
//! filters per pipeline for the same wire speed.

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_tokenizer::{DatapathStats, TokenizerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("ablate_datapath", &args);
    println!("Ablation — datapath width sweep (paper picked 16 bytes)");

    let mut rows = Vec::new();
    for ds in datasets(&args) {
        for width in [8usize, 16, 32] {
            let stats = DatapathStats::of_text(&TokenizerConfig::with_word_bytes(width), ds.text());
            let clock_ghz = 0.2;
            let raw_gbps = width as f64 * clock_ghz; // one word per cycle
            let amp = stats.amplification();
            // Hash filters needed to absorb the tokenized stream at wire
            // speed: ceil(amplification) per pipeline.
            let filters_needed = amp.ceil() as usize;
            rows.push(vec![
                ds.name().to_string(),
                format!("{width} B"),
                format!("{:.1}%", stats.useful_ratio() * 100.0),
                format!("{:.2}x", amp),
                f2(raw_gbps),
                filters_needed.to_string(),
            ]);
        }
    }
    report.table(
        "Datapath width ablation",
        &[
            "Dataset",
            "Width",
            "Useful bits",
            "Amplification",
            "GB/s per pipeline",
            "Hash filters needed",
        ],
        &rows,
    );
    println!(
        "\nReading: 8 B words double pipeline count for the same bandwidth; 32 B words waste\n\
         over two thirds of the datapath on padding and need more filter replicas — 16 B is\n\
         the balance the paper chose."
    );
    report.write();
}
