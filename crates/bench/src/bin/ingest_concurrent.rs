//! Concurrent-ingest bench: query throughput with ingest overlapped
//! against the same workload run stop-the-world.
//!
//! The segmented store lets the service run the CPU-heavy half of an
//! ingest (LZAH compression + tokenization) concurrently with the query
//! wave admitted ahead of it, applying the finished frames serially after
//! the wave settles. This bench drives the same query+ingest mix through
//! two services — one with [`ServiceConfig::overlap_ingest`] on, one off —
//! and reports queries/s for each.
//!
//! Byte-identity is asserted throughout: the interleaved ingests append
//! only quiet lines (matching no bench query), so every query outcome in
//! both modes must equal its solo run on a clean replica — overlap
//! changes wall-clock time, never results.
//!
//! Emits `BENCH_segment.json`.
//!
//! Usage: `ingest_concurrent [--smoke] [--mb <f64>] [--out <path>]`

use std::fmt::Write as _;
use std::time::Instant;

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_service::{JobId, JobOutput, Priority, Service, ServiceConfig};

/// Positive-only queries: the quiet ingest lines match none of them, so
/// match sets are invariant under the interleaved ingest churn.
const QUERIES: [&str; 6] = [
    "error OR failed OR FATAL",
    "error",
    "failed",
    "FATAL AND NOT failed",
    "error AND NOT FATAL",
    "failed OR FATAL",
];

/// Quiet ingest batch: numbered heartbeat lines that match no bench query
/// (and compress realistically, unlike a single repeated line).
fn quiet_batch(lines: usize) -> Vec<u8> {
    let mut out = String::with_capacity(lines * 56);
    for i in 0..lines {
        let _ = writeln!(
            out,
            "1117838570 2005.06.03 bench quiet heartbeat line {i:06}"
        );
    }
    out.into_bytes()
}

struct Args {
    smoke: bool,
    mb: f64,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        mb: 2.0,
        out: "BENCH_segment.json".to_string(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--mb" => {
                i += 1;
                args.mb = argv[i].parse().expect("--mb needs a number");
            }
            "--out" => {
                i += 1;
                args.out = argv[i].clone();
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 1;
    }
    if args.smoke {
        args.mb = args.mb.min(0.3);
    }
    args
}

/// Seal often enough that the bench crosses segment boundaries even at
/// smoke sizes.
fn system_config() -> SystemConfig {
    SystemConfig {
        segment_pages: 8,
        ..SystemConfig::default()
    }
}

struct ModeResult {
    wall_seconds: f64,
    queries: u64,
    ingests: u64,
    ingests_overlapped: u64,
    segments_sealed: u64,
    lines: Vec<Vec<String>>,
}

/// Runs `rounds` of (queries then one ingest batch) through a fresh
/// service and waits every job, returning throughput and outcomes.
fn run_mode(corpus: &[u8], overlap: bool, rounds: usize, ingest_batch: &[u8]) -> ModeResult {
    let mut system = MithriLog::new(system_config());
    system.ingest(corpus).expect("corpus ingest");
    let service = Service::spawn(
        system,
        ServiceConfig {
            max_queue: 256,
            max_batch: QUERIES.len(),
            overlap_ingest: overlap,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    let start = Instant::now();
    let mut query_ids: Vec<(JobId, usize)> = Vec::new();
    let mut ingest_ids: Vec<JobId> = Vec::new();
    for _ in 0..rounds {
        for (qi, q) in QUERIES.iter().enumerate() {
            let id = handle.submit_str(q, Priority::Normal).expect("submit");
            query_ids.push((id, qi));
        }
        // The ingest queues behind this round's queries; with overlap on,
        // its prepare half rides the wave they form.
        ingest_ids.push(handle.ingest(ingest_batch.to_vec()).expect("ingest"));
    }
    let mut lines = Vec::new();
    for &(id, _) in &query_ids {
        match handle.wait(id).expect("query settles") {
            JobOutput::Query { outcome, .. } => lines.push(outcome.lines),
            other => panic!("expected a query output, got {other:?}"),
        }
    }
    for &id in &ingest_ids {
        match handle.wait(id).expect("ingest settles") {
            JobOutput::Ingest(_) => {}
            other => panic!("expected an ingest output, got {other:?}"),
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();
    let stats = handle.stats();
    service.shutdown();
    ModeResult {
        wall_seconds,
        queries: query_ids.len() as u64,
        ingests: ingest_ids.len() as u64,
        ingests_overlapped: stats.ingests_overlapped,
        segments_sealed: stats.segments_sealed,
        lines,
    }
}

fn main() {
    let args = parse_args();
    let ds = generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: (args.mb * 1_000_000.0) as usize,
        seed: 42,
    });
    let rounds = if args.smoke { 4 } else { 12 };
    let batch_lines = if args.smoke { 2_000 } else { 8_000 };
    let ingest_batch = quiet_batch(batch_lines);

    // Solo baseline on a clean replica: the expected lines for every
    // query submission in both modes (quiet ingests change no match set).
    let mut clean = MithriLog::new(system_config());
    clean.ingest(ds.text()).expect("baseline ingest");
    let baseline: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| clean.query_str(q).expect("baseline query").lines)
        .collect();
    drop(clean);

    let overlapped = run_mode(ds.text(), true, rounds, &ingest_batch);
    let stop_world = run_mode(ds.text(), false, rounds, &ingest_batch);

    for mode in [&overlapped, &stop_world] {
        for (i, lines) in mode.lines.iter().enumerate() {
            let qi = i % QUERIES.len();
            assert_eq!(
                lines, &baseline[qi],
                "query {:?} diverged from its solo run",
                QUERIES[qi]
            );
        }
    }
    assert_eq!(
        stop_world.ingests_overlapped, 0,
        "stop-the-world mode must never overlap"
    );
    assert!(
        overlapped.ingests_overlapped > 0,
        "overlap mode never overlapped an ingest with a wave"
    );

    let qps = |m: &ModeResult| m.queries as f64 / m.wall_seconds.max(1e-9);
    eprintln!(
        "overlap: {:.1} queries/s ({} of {} ingests overlapped, {} segments sealed)",
        qps(&overlapped),
        overlapped.ingests_overlapped,
        overlapped.ingests,
        overlapped.segments_sealed,
    );
    eprintln!("stop-the-world: {:.1} queries/s", qps(&stop_world));

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"schema\": \"mithrilog.bench.ingest_concurrent.v1\","
    );
    let _ = writeln!(json, "  \"bench\": \"ingest_concurrent\",");
    let _ = writeln!(
        json,
        "  \"corpus\": {{ \"profile\": \"liberty2\", \"bytes\": {}, \"lines\": {} }},",
        ds.text().len(),
        ds.lines()
    );
    let _ = writeln!(json, "  \"rounds\": {rounds},");
    let _ = writeln!(json, "  \"ingest_batch_bytes\": {},", ingest_batch.len());
    let _ = writeln!(
        json,
        "  \"overlap\": {{ \"queries_per_second\": {:.3}, \"wall_seconds\": {:.6}, \
         \"ingests\": {}, \"ingests_overlapped\": {}, \"segments_sealed\": {} }},",
        qps(&overlapped),
        overlapped.wall_seconds,
        overlapped.ingests,
        overlapped.ingests_overlapped,
        overlapped.segments_sealed,
    );
    let _ = writeln!(
        json,
        "  \"stop_the_world\": {{ \"queries_per_second\": {:.3}, \"wall_seconds\": {:.6}, \
         \"ingests\": {}, \"segments_sealed\": {} }},",
        qps(&stop_world),
        stop_world.wall_seconds,
        stop_world.ingests,
        stop_world.segments_sealed,
    );
    let _ = writeln!(
        json,
        "  \"overlap_speedup\": {:.4},",
        qps(&overlapped) / qps(&stop_world).max(1e-9)
    );
    let _ = writeln!(
        json,
        "  \"note\": \"same query+ingest mix both modes; every query outcome asserted \
         byte-identical to a solo run on a clean replica — overlap changes wall-clock \
         time, never results\""
    );
    json.push_str("}\n");
    std::fs::write(&args.out, &json).expect("write output");
    eprintln!("wrote {}", args.out);
}
