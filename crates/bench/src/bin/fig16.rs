//! Regenerates **Figure 16**: per-query elapsed-time scatter, MithriLog vs
//! the Splunk-style indexed engine, across the full query bank (§7.5).
//! Prints the scatter as CSV plus the summary statistics the paper calls
//! out (sub-second cluster, slow left-edge cluster of negative-heavy
//! queries).

use mithrilog::{MithriLog, SystemConfig};
use mithrilog_baseline::{IndexedEngine, LogTable, SplunkCostModel};
use mithrilog_bench::{datasets, query_bank, HarnessArgs, TableReport};

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 16 — per-query scatter: Splunk-model (x, /12) vs MithriLog (y, modeled). scale {} MB seed {}",
        args.scale_mb, args.seed
    );

    let mut report = TableReport::new("fig16", &args);
    let mut summary_rows = Vec::new();
    let model = SplunkCostModel::paper_calibrated();
    for ds in datasets(&args) {
        let bank = query_bank(&ds, args.seed);
        let queries = bank.all();
        let table = LogTable::from_text(ds.text());
        let splunk = IndexedEngine::build(&table);
        let mut system = MithriLog::new(SystemConfig::default());
        system.ingest(ds.text()).expect("ingest");

        println!("\n--- {} (n={}) ---", ds.name(), queries.len());
        println!("splunk_ms,mithrilog_ms,splunk_fetched_lines,mithrilog_pages,full_scan");
        let mut mithrilog_faster = 0usize;
        let mut max_ratio: f64 = 0.0;
        let mut fullscan_queries = 0usize;
        let mut sub_second_both = 0usize;
        for q in &queries {
            let run = splunk.execute(&table, q);
            let splunk_t = model.modeled_time(run.fetched_bytes);
            let o = system.query(q).expect("query");
            assert_eq!(o.match_count(), run.match_count(), "result mismatch on {q}");
            let ratio = splunk_t.as_secs_f64() / o.modeled_time.as_secs_f64().max(1e-12);
            if ratio > 1.0 {
                mithrilog_faster += 1;
            }
            if splunk_t.as_secs_f64() < 1.0 && o.modeled_time.as_secs_f64() < 1.0 {
                sub_second_both += 1;
            }
            max_ratio = max_ratio.max(ratio);
            fullscan_queries += usize::from(!o.used_index);
            println!(
                "{:.4},{:.4},{},{},{}",
                splunk_t.as_secs_f64() * 1e3,
                o.modeled_time.as_secs_f64() * 1e3,
                run.fetched_lines,
                o.pages_scanned,
                u8::from(!o.used_index)
            );
        }
        println!(
            "summary: MithriLog faster on {mithrilog_faster}/{} queries; max ratio {max_ratio:.1}x; \
             {fullscan_queries} full scans (negative-only or planner-gated); {sub_second_both} queries sub-second on both",
            queries.len()
        );
        summary_rows.push(vec![
            ds.name().to_string(),
            queries.len().to_string(),
            mithrilog_faster.to_string(),
            format!("{max_ratio:.1}"),
            fullscan_queries.to_string(),
            sub_second_both.to_string(),
        ]);
    }
    println!(
        "\nShape check: most queries cluster at sub-second latencies for both systems; the\n\
         negative-heavy queries form the slow cluster where MithriLog's advantage is largest."
    );
    report.record(
        "Figure 16 summary: per-query scatter statistics",
        &[
            "Dataset",
            "Queries",
            "MithriLog faster",
            "Max ratio",
            "Full scans",
            "Sub-second both",
        ],
        &summary_rows,
    );
    report.write();
}
