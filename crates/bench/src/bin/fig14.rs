//! Regenerates **Figure 14**: total effective throughput of the four
//! filter pipelines per dataset, from the deterministic accelerator model
//! driven by each dataset's *measured* compression ratio, datapath
//! amplification and lane balance (§7.4.1).

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_compress::{Codec, Lzah};
use mithrilog_sim::{AcceleratorConfig, DatasetInputs, ThroughputModel};
use mithrilog_tokenizer::{DatapathStats, ScatterGather, Tokenizer, TokenizerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("fig14", &args);
    println!(
        "Figure 14 — filter engine effective throughput (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper: 11-12 GB/s on all datasets; BGL2 storage-bound at 12.62 GB/s of decompressed supply.");

    let model = ThroughputModel::new(AcceleratorConfig::prototype());
    let tok_cfg = TokenizerConfig::default();
    let tokenizer = Tokenizer::new(tok_cfg.clone());
    let mut rows = Vec::new();
    for ds in datasets(&args) {
        let ratio = Lzah::default().ratio(ds.text());
        let stats = DatapathStats::of_text(&tok_cfg, ds.text());
        let mut sg = ScatterGather::new(tok_cfg.lanes);
        sg.schedule_text(&tokenizer, ds.text());
        let inputs = DatasetInputs::from_stats(&stats, ratio, sg.occupancy().utilization);
        let t = model.effective_throughput(&inputs);
        rows.push(vec![
            ds.name().to_string(),
            f2(t.total_gbps),
            t.bound_by.to_string(),
            f2(ratio),
            f2(inputs.tokenized_amplification),
            format!("{:.1}%", inputs.lane_utilization * 100.0),
            f2(t.storage_gbps),
            f2(t.filter_gbps),
        ]);
    }
    report.table(
        "Figure 14: modeled filter-engine throughput (GB/s)",
        &[
            "Dataset",
            "Total GB/s",
            "Bound by",
            "LZAH ratio",
            "Amplif.",
            "Lane util",
            "Storage ceil",
            "Filter ceil",
        ],
        &rows,
    );
    println!(
        "\nShape check: every dataset lands between ~11 and 12.8 GB/s — about 4x the PCIe\n\
         link — and the lowest-ratio dataset is the one bound by storage supply."
    );
    report.write();
}
