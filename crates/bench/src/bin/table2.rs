//! Regenerates **Table 2**: chip resource utilization of the MithriLog
//! pipeline on a Xilinx VC707 (published synthesis results, encoded in
//! `mithrilog-sim`).

use mithrilog_bench::{HarnessArgs, TableReport};
use mithrilog_sim::pipeline_resource_table;

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table2", &args);
    println!("Table 2 — chip resource utilization on VC707 (published prototype synthesis)");
    let rows: Vec<Vec<String>> = pipeline_resource_table()
        .iter()
        .map(|m| {
            vec![
                m.module.to_string(),
                format!("{} ({:.1}%)", m.luts, m.lut_fraction() * 100.0),
                format!("{} ({:.1}%)", m.ramb36, m.ramb36_fraction() * 100.0),
                format!("{} ({:.1}%)", m.ramb18, m.ramb18_fraction() * 100.0),
            ]
        })
        .collect();
    report.table(
        "Table 2: chip resources",
        &["Module", "LUTs", "RAMB36", "RAMB18"],
        &rows,
    );
    report.write();
}
