//! Ablation: the paper's second contribution — "architectural methods of
//! improving the effective bandwidth of storage, including the near-storage
//! acceleration configuration and log-optimized compression accelerators"
//! (§1, §3).
//!
//! Evaluates the 2×2 of {host-side, near-storage} × {raw, LZAH-compressed}
//! feeds on the same filter engine, per dataset: near-storage placement
//! buys the internal/external bandwidth differential (4.8 vs 3.1 GB/s), and
//! compression multiplies whichever link feeds the decompressors.

use mithrilog_bench::{datasets, f2, HarnessArgs, TableReport};
use mithrilog_compress::{Codec, Lzah};
use mithrilog_sim::{AcceleratorConfig, DatasetInputs, ThroughputModel, MITHRILOG_PLATFORM};
use mithrilog_tokenizer::{DatapathStats, ScatterGather, Tokenizer, TokenizerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("ablate_near_storage", &args);
    println!(
        "Ablation — near-storage placement x compression (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    println!(
        "Feeds: PCIe {} GB/s vs internal {} GB/s; compression multiplies the feed.",
        f2(MITHRILOG_PLATFORM.external_gbps),
        f2(MITHRILOG_PLATFORM.internal_gbps)
    );

    let tok_cfg = TokenizerConfig::default();
    let tokenizer = Tokenizer::new(tok_cfg.clone());
    let mut rows = Vec::new();
    for ds in datasets(&args) {
        let ratio = Lzah::default().ratio(ds.text());
        let stats = DatapathStats::of_text(&tok_cfg, ds.text());
        let mut sg = ScatterGather::new(tok_cfg.lanes);
        sg.schedule_text(&tokenizer, ds.text());
        let util = sg.occupancy().utilization;

        let throughput = |feed_gbps: f64, compressed: bool| -> f64 {
            let model = ThroughputModel::new(AcceleratorConfig {
                storage_internal_gbps: feed_gbps,
                ..AcceleratorConfig::prototype()
            });
            model
                .effective_throughput(&DatasetInputs {
                    compression_ratio: if compressed { ratio } else { 1.0 },
                    tokenized_amplification: stats.amplification(),
                    lane_utilization: util,
                })
                .total_gbps
        };

        let host_raw = throughput(MITHRILOG_PLATFORM.external_gbps, false);
        let host_lzah = throughput(MITHRILOG_PLATFORM.external_gbps, true);
        let near_raw = throughput(MITHRILOG_PLATFORM.internal_gbps, false);
        let near_lzah = throughput(MITHRILOG_PLATFORM.internal_gbps, true);
        rows.push(vec![
            ds.name().to_string(),
            f2(host_raw),
            f2(near_raw),
            f2(host_lzah),
            f2(near_lzah),
            format!("{}x", f2(near_lzah / host_raw)),
        ]);
    }
    report.table(
        "Effective filtering throughput (GB/s) under each configuration",
        &[
            "Dataset",
            "Host + raw",
            "Near + raw",
            "Host + LZAH",
            "Near + LZAH (paper)",
            "Combined gain",
        ],
        &rows,
    );
    println!(
        "\nReading: each technique alone helps (near-storage: +55% feed; compression: xratio),\n\
         but only the combination saturates the 11-12.8 GB/s filter engines — the paper's\n\
         'balanced performance between system components' (§1)."
    );
    report.write();
}
