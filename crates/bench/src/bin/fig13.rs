//! Regenerates **Figure 13**: percentage of useful (non-padding) bits in
//! the tokenized datapath for each dataset — the statistic that sized the
//! 16-byte datapath and the two hash filters per pipeline (§7.4.1).

use mithrilog_bench::{datasets, HarnessArgs, TableReport};
use mithrilog_tokenizer::{DatapathStats, TokenizerConfig};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("fig13", &args);
    println!(
        "Figure 13 — useful bits in the tokenized datapath (scale {} MB, seed {})",
        args.scale_mb, args.seed
    );
    println!("Paper: roughly 50% useful across the four datasets.");

    let cfg = TokenizerConfig::default();
    let rows: Vec<Vec<String>> = datasets(&args)
        .iter()
        .map(|ds| {
            let stats = DatapathStats::of_text(&cfg, ds.text());
            vec![
                ds.name().to_string(),
                format!("{:.1}%", stats.useful_ratio() * 100.0),
                format!("{:.2}x", stats.amplification()),
                format!("{:.1}", stats.mean_token_len()),
                format!("{:.0}%", stats.fraction_tokens_at_most(16) * 100.0),
            ]
        })
        .collect();
    report.table(
        "Figure 13: tokenized datapath utilization",
        &[
            "Dataset",
            "Useful bits",
            "Amplification",
            "Mean token len",
            "Tokens <= 16B",
        ],
        &rows,
    );
    println!(
        "\nShape check: ~half the datapath carries useful bytes, which is why each pipeline\n\
         provisions two hash filters for its 2x-amplified tokenized stream."
    );
    report.write();
}
