//! Regenerates **Table 3**: computation and storage of the compared
//! platforms, plus the internal/external bandwidth differential the
//! near-storage placement exploits.

use mithrilog_bench::{f2, HarnessArgs, TableReport};
use mithrilog_sim::{COMPARISON_PLATFORM, MITHRILOG_PLATFORM};

fn main() {
    let args = HarnessArgs::parse();
    let mut report = TableReport::new("table3", &args);
    println!("Table 3 — evaluation platforms");
    let rows = vec![
        vec![
            "Computation".to_string(),
            MITHRILOG_PLATFORM.computation.to_string(),
            COMPARISON_PLATFORM.computation.to_string(),
        ],
        vec![
            "Storage BW (external)".to_string(),
            format!("{} GB/s (PCIe)", f2(MITHRILOG_PLATFORM.external_gbps)),
            format!("{} GB/s", f2(COMPARISON_PLATFORM.external_gbps)),
        ],
        vec![
            "Storage BW (internal)".to_string(),
            format!("{} GB/s", f2(MITHRILOG_PLATFORM.internal_gbps)),
            "n/a (no near-storage path)".to_string(),
        ],
        vec![
            "Internal/external ratio".to_string(),
            f2(MITHRILOG_PLATFORM.internal_external_ratio()),
            "1.00".to_string(),
        ],
    ];
    report.table(
        "Table 3: compared platforms",
        &["", "MithriLog", "Comparison"],
        &rows,
    );
    report.write();
}
