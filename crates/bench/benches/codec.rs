//! Criterion microbenchmarks of the four codecs (Table 4/5 companion):
//! compression and decompression throughput on 1 MB of Spirit2-profile
//! log text.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mithrilog_compress::{Codec, Gzf, Lz4, Lzah, Lzrw1, Snappy};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Spirit2,
        target_bytes: 1_000_000,
        seed: 11,
    })
    .into_text()
}

fn codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Lzah::default()),
        Box::new(Lzrw1::new()),
        Box::new(Lz4::new()),
        Box::new(Snappy::new()),
        Box::new(Gzf::new()),
    ]
}

fn bench_compress(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for codec in codecs() {
        group.bench_with_input(BenchmarkId::from_parameter(codec.name()), &data, |b, d| {
            b.iter(|| codec.compress(d));
        });
    }
    group.finish();
}

fn bench_decompress(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for codec in codecs() {
        let packed = codec.compress(&data);
        group.bench_with_input(
            BenchmarkId::from_parameter(codec.name()),
            &packed,
            |b, p| {
                b.iter(|| codec.decompress(p).expect("round trip"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_compress, bench_decompress);
criterion_main!(benches);
