//! Criterion microbenchmarks of the in-storage inverted index (§6
//! companion): ingest rate and lookup latency.

use criterion::{criterion_group, criterion_main, Criterion};
use mithrilog_index::{IndexParams, InvertedIndex};
use mithrilog_storage::{DevicePerfModel, MemStore, PageId, SimSsd};

fn ssd() -> SimSsd<MemStore> {
    SimSsd::new(MemStore::new(4096), DevicePerfModel::bluedbm_prototype())
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_insert");
    group.sample_size(10);
    group.bench_function("10k_pages_x_8_tokens", |b| {
        b.iter(|| {
            let mut ssd = ssd();
            let mut idx = InvertedIndex::new(IndexParams::default());
            for p in 0..10_000u64 {
                let toks: Vec<String> = (0..8)
                    .map(|t| format!("tok-{}", (p * 7 + t) % 500))
                    .collect();
                idx.insert_page_tokens(&mut ssd, PageId(p), toks.iter().map(|s| s.as_bytes()))
                    .expect("insert");
            }
            idx.tokens_indexed()
        });
    });
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut ssd = ssd();
    let mut idx = InvertedIndex::new(IndexParams::default());
    for p in 0..50_000u64 {
        let toks: Vec<String> = (0..4)
            .map(|t| format!("tok-{}", (p * 3 + t) % 1000))
            .collect();
        idx.insert_page_tokens(&mut ssd, PageId(p), toks.iter().map(|s| s.as_bytes()))
            .expect("insert");
    }
    let mut group = c.benchmark_group("index_lookup");
    group.bench_function("hot_token", |b| {
        b.iter(|| idx.lookup(&mut ssd, b"tok-1").expect("lookup").len());
    });
    group.bench_function("absent_token", |b| {
        b.iter(|| idx.lookup(&mut ssd, b"never-seen").expect("lookup").len());
    });
    group.finish();
}

criterion_group!(benches, bench_insert, bench_lookup);
criterion_main!(benches);
