//! Criterion microbenchmarks of the token filter (§4 companion): filtering
//! throughput versus query complexity, demonstrating the paper's central
//! claim that cost per byte is constant in the number of query terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mithrilog_filter::FilterPipeline;
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_query::{IntersectionSet, Query, Term};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Thunderbird,
        target_bytes: 1_000_000,
        seed: 23,
    })
    .into_text()
}

/// A query with `sets` intersection sets of `terms_per_set` terms each,
/// built from tokens that occur in the corpus.
fn query_of(sets: usize, terms_per_set: usize) -> Query {
    let vocab = [
        "kernel:",
        "sshd",
        "session",
        "opened",
        "root",
        "pbs_mom:",
        "terminated",
        "Accepted",
        "publickey",
        "synchronized",
        "stratum",
        "DHCPDISCOVER",
        "eth0",
        "e1000",
        "scsi0",
        "ib_sm.x",
        "crond(pam_unix)",
        "user",
        "from",
        "port",
    ];
    let sets: Vec<IntersectionSet> = (0..sets)
        .map(|s| {
            let mut set = IntersectionSet::new();
            for t in 0..terms_per_set {
                let tok = vocab[(s * 7 + t) % vocab.len()];
                set.push(if t % 4 == 3 {
                    Term::negative(tok)
                } else {
                    Term::positive(tok)
                });
            }
            set
        })
        .collect();
    Query::try_new(sets).expect("non-empty")
}

fn bench_filter_vs_complexity(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("filter_text");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for (sets, terms) in [(1, 2), (1, 8), (4, 8), (8, 12)] {
        let q = query_of(sets, terms);
        let pipeline = FilterPipeline::compile(&q).expect("compiles");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sets}sets_x_{terms}terms")),
            &data,
            |b, d| {
                b.iter(|| pipeline.filter_text(d).count());
            },
        );
    }
    group.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_query");
    for (sets, terms) in [(1, 4), (8, 15)] {
        let q = query_of(sets, terms);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sets}x{terms}")),
            &q,
            |b, q| {
                b.iter(|| FilterPipeline::compile(q).expect("compiles"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_filter_vs_complexity, bench_compile);
criterion_main!(benches);
