//! Criterion benchmarks of the full MithriLog system: ingest and
//! end-to-end query execution (indexed vs forced full scan).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mithrilog::{MithriLog, SystemConfig};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Bgl2,
        target_bytes: 2_000_000,
        seed: 77,
    })
    .into_text()
}

fn bench_ingest(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("system_ingest");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("compress_store_index", |b| {
        b.iter(|| {
            let mut s = MithriLog::new(SystemConfig::default());
            s.ingest(&data).expect("ingest").data_pages
        });
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let data = corpus();
    let mut indexed = MithriLog::new(SystemConfig::default());
    indexed.ingest(&data).expect("ingest");
    let mut fullscan = MithriLog::new(SystemConfig::full_scan_only());
    fullscan.ingest(&data).expect("ingest");

    let mut group = c.benchmark_group("system_query");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("indexed_selective", |b| {
        b.iter(|| {
            indexed
                .query_str("FATAL AND ciod:")
                .expect("query")
                .match_count()
        });
    });
    group.bench_function("indexed_negative_only", |b| {
        b.iter(|| {
            indexed
                .query_str("NOT KERNEL")
                .expect("query")
                .match_count()
        });
    });
    group.bench_function("full_scan", |b| {
        b.iter(|| {
            fullscan
                .query_str("FATAL AND ciod:")
                .expect("query")
                .match_count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_query);
criterion_main!(benches);
