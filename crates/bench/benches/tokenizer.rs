//! Criterion microbenchmarks of the tokenizer model (§4.1 companion),
//! including the datapath-width sweep behind the 16-byte design decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mithrilog_loggen::{generate, DatasetProfile, DatasetSpec};
use mithrilog_tokenizer::{DatapathStats, Tokenizer, TokenizerConfig};

fn corpus() -> Vec<u8> {
    generate(&DatasetSpec {
        profile: DatasetProfile::Liberty2,
        target_bytes: 1_000_000,
        seed: 5,
    })
    .into_text()
}

fn bench_tokenize(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("tokenize");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    for width in [8usize, 16, 32] {
        let tok = Tokenizer::new(TokenizerConfig::with_word_bytes(width));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{width}B_words")),
            &data,
            |b, d| {
                b.iter(|| {
                    let mut words = 0usize;
                    for line in tok.tokenize_text(d) {
                        words += line.len();
                    }
                    words
                });
            },
        );
    }
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let data = corpus();
    let mut group = c.benchmark_group("datapath_stats");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.sample_size(10);
    group.bench_function("collect", |b| {
        b.iter(|| DatapathStats::of_text(&TokenizerConfig::default(), &data).useful_ratio());
    });
    group.finish();
}

criterion_group!(benches, bench_tokenize, bench_stats);
criterion_main!(benches);
