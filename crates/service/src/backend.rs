//! The storage backend the scheduler drives: one [`MithriLog`] device, or
//! a multi-device [`ShardedLog`] topology behind the same job queue.
//!
//! The scheduler never touches a device directly — every wave goes through
//! [`ServiceBackend`], so the whole service stack (admission control, fair
//! scheduling, shared scans, overlapped ingest, scrub lane, panic
//! isolation, the TCP front-end) works identically over one device and
//! over N. The single-device impl is the trivial delegation; the sharded
//! impl routes ingest frames by tenant/line key and merges scatter-gather
//! query results into single-device-identical outcomes (see
//! [`mithrilog_shard`]).

use mithrilog::{
    IngestReport, MithriLog, PlanExplain, PreparedIngest, QueryRequest, RetentionReport,
    SharedBatchOutcome, SystemConfig,
};
use mithrilog_shard::{ShardRow, ShardedLog};
use mithrilog_storage::{PageStore, ScrubReport, ScrubSlice};

/// What the service scheduler needs from a log store. Errors are rendered
/// strings: the scheduler only ever reports them to the submitting client,
/// never branches on them.
pub trait ServiceBackend: Send + 'static {
    /// The system configuration (shared by every device behind the
    /// backend), used to prepare ingest frames off-thread.
    fn config(&self) -> &SystemConfig;

    /// Executes one wave of queries as a shared scan.
    ///
    /// # Errors
    ///
    /// The rendered device error that failed the wave.
    fn query_shared(&mut self, requests: &[QueryRequest]) -> Result<SharedBatchOutcome, String>;

    /// Applies already-prepared ingest frames. `tenant` is the routing tag
    /// for sharded backends; a single device ignores it.
    ///
    /// # Errors
    ///
    /// The rendered device error that failed the apply.
    fn apply_prepared(
        &mut self,
        tenant: Option<&str>,
        prep: &PreparedIngest<'_>,
    ) -> Result<IngestReport, String>;

    /// Plans a query — index decision, pruning, clips — without scanning
    /// any data page.
    ///
    /// # Errors
    ///
    /// The rendered planning error (including "unsupported on this
    /// topology" for multi-shard explains).
    fn explain(&mut self, request: &QueryRequest) -> Result<PlanExplain, String>;

    /// Verifies every page, quarantining failures.
    fn scrub(&mut self) -> ScrubReport;

    /// Verifies a bounded slice of pages starting at an opaque cursor the
    /// backend itself issued (`0` starts a pass).
    fn scrub_slice(&mut self, cursor: u64, max_pages: u64) -> ScrubSlice;

    /// Drops the oldest sealed segments until at most `keep` remain (per
    /// device, for sharded backends).
    ///
    /// # Errors
    ///
    /// The rendered device error that failed the retention pass.
    fn apply_retention(&mut self, keep: u64) -> Result<RetentionReport, String>;

    /// Sealed segments held, summed across devices.
    fn sealed_segment_count(&self) -> u64;

    /// Per-device observability rows (a single row for a solo device),
    /// surfaced through `STATS` as `shard.<k>.*`.
    fn shard_rows(&self) -> Vec<ShardRow>;
}

impl<S> ServiceBackend for MithriLog<S>
where
    S: PageStore + Send + 'static,
{
    fn config(&self) -> &SystemConfig {
        MithriLog::config(self)
    }

    fn query_shared(&mut self, requests: &[QueryRequest]) -> Result<SharedBatchOutcome, String> {
        MithriLog::query_shared(self, requests).map_err(|e| e.to_string())
    }

    fn apply_prepared(
        &mut self,
        _tenant: Option<&str>,
        prep: &PreparedIngest<'_>,
    ) -> Result<IngestReport, String> {
        self.apply_ingest(prep).map_err(|e| e.to_string())
    }

    fn explain(&mut self, request: &QueryRequest) -> Result<PlanExplain, String> {
        MithriLog::explain(self, request).map_err(|e| e.to_string())
    }

    fn scrub(&mut self) -> ScrubReport {
        MithriLog::scrub(self)
    }

    fn scrub_slice(&mut self, cursor: u64, max_pages: u64) -> ScrubSlice {
        MithriLog::scrub_slice(self, cursor, max_pages)
    }

    fn apply_retention(&mut self, keep: u64) -> Result<RetentionReport, String> {
        MithriLog::apply_retention(self, keep).map_err(|e| e.to_string())
    }

    fn sealed_segment_count(&self) -> u64 {
        MithriLog::sealed_segment_count(self)
    }

    fn shard_rows(&self) -> Vec<ShardRow> {
        let ledger = self.device().ledger();
        vec![ShardRow {
            shard: 0,
            lines: self.lines(),
            data_pages: self.data_page_count(),
            raw_bytes: self.raw_bytes(),
            sealed_segments: MithriLog::sealed_segment_count(self),
            pages_read: ledger.pages_read,
            bytes_read: ledger.bytes_read,
            retries: ledger.retries,
            modeled_gbps: self.modeled_throughput().total_gbps,
        }]
    }
}

impl<S> ServiceBackend for ShardedLog<S>
where
    S: PageStore + Send + 'static,
{
    fn config(&self) -> &SystemConfig {
        ShardedLog::config(self)
    }

    fn query_shared(&mut self, requests: &[QueryRequest]) -> Result<SharedBatchOutcome, String> {
        ShardedLog::query_shared(self, requests).map_err(|e| e.to_string())
    }

    fn apply_prepared(
        &mut self,
        tenant: Option<&str>,
        prep: &PreparedIngest<'_>,
    ) -> Result<IngestReport, String> {
        ShardedLog::apply_prepared(self, tenant, prep).map_err(|e| e.to_string())
    }

    fn explain(&mut self, request: &QueryRequest) -> Result<PlanExplain, String> {
        ShardedLog::explain(self, request).map_err(|e| e.to_string())
    }

    fn scrub(&mut self) -> ScrubReport {
        ShardedLog::scrub(self)
    }

    fn scrub_slice(&mut self, cursor: u64, max_pages: u64) -> ScrubSlice {
        ShardedLog::scrub_slice(self, cursor, max_pages)
    }

    fn apply_retention(&mut self, keep: u64) -> Result<RetentionReport, String> {
        ShardedLog::apply_retention(self, keep).map_err(|e| e.to_string())
    }

    fn sealed_segment_count(&self) -> u64 {
        ShardedLog::sealed_segment_count(self)
    }

    fn shard_rows(&self) -> Vec<ShardRow> {
        ShardedLog::shard_rows(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_shard::{RouteMode, ShardOptions};

    const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading /g/g24/user/program\n";

    /// Both backends answer the same trait calls with the same logical
    /// results for the same lines.
    #[test]
    fn solo_and_sharded_backends_agree_through_the_trait() {
        let corpus: String = (0..64).map(|i| format!("node-{i:04} {LOG}")).collect();
        let mut solo = MithriLog::new(SystemConfig::for_tests());
        solo.ingest(corpus.as_bytes()).unwrap();
        let mut sharded = ShardedLog::new(
            SystemConfig::for_tests(),
            ShardOptions {
                shards: 2,
                mode: RouteMode::LineHash,
                salt: 0x5eed,
            },
        );
        sharded.ingest(corpus.as_bytes()).unwrap();

        fn lines_via_trait<B: ServiceBackend>(backend: &mut B, query: &str) -> Vec<String> {
            let request = QueryRequest::parse(query).unwrap();
            let mut batch = backend
                .query_shared(std::slice::from_ref(&request))
                .unwrap();
            batch.outcomes.remove(0).lines
        }
        let solo_lines = lines_via_trait(&mut solo, "FATAL AND NOT ciod:");
        let sharded_lines = lines_via_trait(&mut sharded, "FATAL AND NOT ciod:");
        assert_eq!(solo_lines, sharded_lines);
        assert_eq!(
            ServiceBackend::shard_rows(&solo).len(),
            1,
            "a solo device reports one row"
        );
        let rows = ServiceBackend::shard_rows(&sharded);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows.iter().map(|r| r.lines).sum::<u64>(),
            solo.lines(),
            "sharded rows conserve line totals"
        );
    }
}
