//! The `mithrilog serve` line protocol.
//!
//! One request per line; every response is one or more lines terminated by
//! a lone `.` line, so clients read until the terminator regardless of the
//! payload size. The first response line starts with `OK`, `REJECTED`
//! (admission control turned the request away) or `ERR`; matched log lines
//! in a result are prefixed with `L ` so a log line consisting of a single
//! dot can never forge the terminator.
//!
//! Requests:
//!
//! ```text
//! SUBMIT [pri=high|normal|low] [budget=N] [range=T1:T2] [deadline=MICROS] [tenant=NAME] [explain=0|1] q=<query text>
//! POLL <id>
//! WAIT <id>
//! CANCEL <id>
//! SCRUB
//! STATS
//! SHUTDOWN
//! QUIT
//! ```
//!
//! `q=` must come last: everything after it, spaces included, is the query.
//! `deadline=` is a modeled-time bound in microseconds: the planned page set
//! is clipped to what the device model can read in that time, and anything
//! clipped is reported honestly in the degraded-read accounting.
//! `tenant=` tags the job for per-tenant scheduling: tagged queries
//! interleave fairly across tenants, inherit the per-tenant page budget,
//! and count against the tenant's admission cap; `STATS` reports
//! `tenant.<name>.*` counters for every tenant seen, plus `shard.<k>.*`
//! rows for every device behind the service.
//! `explain=1` plans the request — index decision, bitmap pruning, clips —
//! without scanning a single data page; the result lists one `L` line per
//! segment. `CANCEL` stops a queued job outright and tells a running job to
//! stop at its next page boundary. `SCRUB` queues a full verification pass
//! over every page.

use std::collections::BTreeMap;
use std::time::Duration;

use mithrilog::QueryRequest;
use mithrilog_shard::ShardRow;

use crate::service::{
    JobId, JobOutput, JobStatus, Priority, ServiceStats, SubmitError, TenantStats,
};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a query for execution.
    Submit {
        /// The query text (everything after `q=`).
        query: String,
        /// Scheduling class (default [`Priority::Normal`]).
        priority: Priority,
        /// Page (deadline) budget, if any.
        budget: Option<u64>,
        /// Snapshot-clock time window, if any.
        range: Option<(u64, u64)>,
        /// Modeled-time deadline in microseconds, if any.
        deadline: Option<u64>,
        /// Tenant tag for per-tenant scheduling, if any.
        tenant: Option<String>,
        /// Plan-only: explain how the request would execute without
        /// scanning any data page.
        explain: bool,
    },
    /// Report a job's status without blocking.
    Poll(JobId),
    /// Block until a job finishes, then return its result.
    Wait(JobId),
    /// Cancel a queued job, or stop a running one at its next page boundary.
    Cancel(JobId),
    /// Queue a full scrub pass over every page on the device.
    Scrub,
    /// Report service counters.
    Stats,
    /// Stop the server (and the service behind it).
    Shutdown,
    /// Close this connection.
    Quit,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing what is malformed; the server
/// returns it as an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(' ') {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "SUBMIT" => parse_submit(rest),
        "POLL" => Ok(Request::Poll(parse_id(rest)?)),
        "WAIT" => Ok(Request::Wait(parse_id(rest)?)),
        "CANCEL" => Ok(Request::Cancel(parse_id(rest)?)),
        "SCRUB" => no_args("SCRUB", rest).map(|()| Request::Scrub),
        "STATS" => no_args("STATS", rest).map(|()| Request::Stats),
        "SHUTDOWN" => no_args("SHUTDOWN", rest).map(|()| Request::Shutdown),
        "QUIT" => no_args("QUIT", rest).map(|()| Request::Quit),
        "" => Err("empty request".into()),
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// Argument-less verbs reject trailing text loudly: a typo like
/// `SCRUB now` (or a client speaking a newer dialect) must fail the
/// request, never silently run something else than what was asked.
fn no_args(verb: &str, rest: &str) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("{verb} takes no arguments, got {rest:?}"))
    }
}

fn parse_id(text: &str) -> Result<JobId, String> {
    text.parse::<JobId>()
        .map_err(|_| format!("expected a job id, got {text:?}"))
}

fn parse_submit(rest: &str) -> Result<Request, String> {
    let mut priority = Priority::Normal;
    let mut budget = None;
    let mut range = None;
    let mut deadline = None;
    let mut tenant = None;
    let mut explain = false;
    let mut remaining = rest;
    let query = loop {
        let remaining_trimmed = remaining.trim_start();
        if let Some(q) = remaining_trimmed.strip_prefix("q=") {
            break q.to_string();
        }
        let (field, rest) = match remaining_trimmed.split_once(' ') {
            Some(pair) => pair,
            None => (remaining_trimmed, ""),
        };
        let Some((key, value)) = field.split_once('=') else {
            return Err(format!(
                "expected key=value fields then q=<query>, got {field:?}"
            ));
        };
        match key {
            "pri" => {
                priority =
                    Priority::parse(value).ok_or_else(|| format!("unknown priority {value:?}"))?;
            }
            "budget" => {
                budget = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad budget {value:?}"))?,
                );
            }
            "range" => {
                let (t1, t2) = value
                    .split_once(':')
                    .ok_or_else(|| format!("range wants T1:T2, got {value:?}"))?;
                let t1 = t1
                    .parse::<u64>()
                    .map_err(|_| format!("bad range start {t1:?}"))?;
                let t2 = t2
                    .parse::<u64>()
                    .map_err(|_| format!("bad range end {t2:?}"))?;
                range = Some((t1, t2));
            }
            "deadline" => {
                deadline = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad deadline {value:?} (want microseconds)"))?,
                );
            }
            "tenant" => {
                if value.is_empty() {
                    return Err("tenant wants a non-empty name".into());
                }
                tenant = Some(value.to_string());
            }
            "explain" => {
                explain = match value {
                    "1" => true,
                    "0" => false,
                    other => return Err(format!("explain wants 0 or 1, got {other:?}")),
                };
            }
            other => return Err(format!("unknown field {other:?}")),
        }
        remaining = rest;
    };
    if query.trim().is_empty() {
        return Err("empty query".into());
    }
    Ok(Request::Submit {
        query,
        priority,
        budget,
        range,
        deadline,
        tenant,
        explain,
    })
}

/// Builds the [`QueryRequest`] a `SUBMIT` describes.
///
/// # Errors
///
/// Parse errors from the query text.
pub fn submit_to_request(
    query: &str,
    budget: Option<u64>,
    range: Option<(u64, u64)>,
    deadline: Option<u64>,
) -> Result<QueryRequest, String> {
    let mut request = QueryRequest::parse(query).map_err(|e| e.to_string())?;
    request.page_budget = budget;
    request.time_range = range;
    request.deadline = deadline.map(Duration::from_micros);
    Ok(request)
}

/// The response terminator line.
pub const TERMINATOR: &str = ".";

fn terminated(mut body: String) -> String {
    body.push_str(TERMINATOR);
    body.push('\n');
    body
}

/// Renders the response to a `SUBMIT`.
pub fn render_submit(result: &Result<JobId, SubmitError>) -> String {
    terminated(match result {
        Ok(id) => format!("OK id={id}\n"),
        Err(SubmitError::Rejected {
            queue_len,
            capacity,
            ..
        }) => format!("REJECTED queue_full queued={queue_len} capacity={capacity}\n"),
        Err(SubmitError::Parse(reason)) => format!("ERR parse: {reason}\n"),
        Err(SubmitError::Closed) => "ERR service is shut down\n".to_string(),
    })
}

/// Renders a job status (the response to `POLL`, and to `WAIT` once the
/// job settles). `None` means the id was never issued.
pub fn render_status(status: Option<&JobStatus>) -> String {
    terminated(match status {
        None => "ERR unknown job\n".to_string(),
        Some(JobStatus::Pending) => "OK pending\n".to_string(),
        Some(JobStatus::Running) => "OK running\n".to_string(),
        Some(JobStatus::Cancelled) => "OK cancelled\n".to_string(),
        Some(JobStatus::Failed(reason)) => format!("ERR failed: {reason}\n"),
        Some(JobStatus::Done(output)) => render_output(output),
    })
}

fn render_output(output: &JobOutput) -> String {
    match output {
        JobOutput::Query {
            outcome,
            attribution,
        } => {
            let mut body = format!(
                "OK done kind=query lines={} pages={} offloaded={} used_index={} \
                 degraded={} shared_pages={} attributed_cost={:.3}\n",
                outcome.lines.len(),
                outcome.pages_scanned,
                outcome.offloaded,
                outcome.used_index,
                outcome.degraded.is_degraded(),
                attribution.shared_pages,
                attribution.attributed_page_cost,
            );
            for line in &outcome.lines {
                body.push_str("L ");
                body.push_str(line);
                body.push('\n');
            }
            body
        }
        JobOutput::Explain(explain) => {
            let mut body = format!(
                "OK done kind=explain used_index={} index_fallback={} live_pages={} \
                 planned_pages={} pruned_by_index={} pruned_by_bitmap={} pruned_by_both={} \
                 budget_clipped={} deadline_clipped={}\n",
                explain.used_index,
                explain.index_fallback,
                explain.live_pages,
                explain.planned_pages,
                explain.pruned_by_index(),
                explain.pruned_by_bitmap(),
                explain.pruned_by_both(),
                explain.budget_clipped,
                explain.deadline_clipped,
            );
            for seg in &explain.segments {
                let id = match seg.segment_id {
                    Some(id) => format!("{id}"),
                    None => "open".to_string(),
                };
                body.push_str(&format!(
                    "L segment={id} live={} planned={} pruned_by_index={} \
                     pruned_by_bitmap={} pruned_by_both={} bitmaps={}\n",
                    seg.live_pages,
                    seg.planned_pages,
                    seg.pruned_by_index,
                    seg.pruned_by_bitmap,
                    seg.pruned_by_both,
                    seg.has_bitmaps,
                ));
            }
            body
        }
        JobOutput::Ingest(report) => format!(
            "OK done kind=ingest lines={} pages={} raw_bytes={}\n",
            report.lines, report.data_pages, report.raw_bytes
        ),
        JobOutput::Scrub(report) => format!(
            "OK done kind=scrub checked={} corrupt={} unreadable={} unverified={} \
             retries={} quarantined={} already_quarantined={} bitmaps_dropped={}\n",
            report.pages_checked,
            report.corrupt.len(),
            report.unreadable.len(),
            report.unverified.len(),
            report.retries,
            report.quarantined.len(),
            report.already_quarantined,
            report.bitmaps_dropped,
        ),
    }
}

/// Renders the response to `CANCEL`.
pub fn render_cancel(cancelled: bool) -> String {
    terminated(if cancelled {
        "OK cancelled\n".to_string()
    } else {
        "OK too-late\n".to_string()
    })
}

/// Renders the response to `STATS`: the service-wide counters, then one
/// `shard.<k>.*` block per device behind the service, then one
/// `tenant.<name>.*` block per tenant seen since spawn.
pub fn render_stats(
    stats: &ServiceStats,
    tenants: &BTreeMap<String, TenantStats>,
    shards: &[ShardRow],
) -> String {
    let mut body = format!(
        "OK stats\nsubmitted={}\nrejected={}\ncompleted={}\nfailed={}\ncancelled={}\n\
         queued={}\nwaves={}\ndemanded_page_reads={}\nunique_pages_read={}\n\
         shared_reads_avoided={}\ncache_hits={}\ncache_bytes_saved={}\n\
         pages_pruned_by_index={}\npages_pruned_by_bitmap={}\npages_pruned_by_both={}\n\
         probe_node_visits_saved={}\nbitmaps_dropped={}\n\
         waves_poisoned={}\nscrub_slices={}\npages_scrubbed={}\npages_quarantined={}\n\
         ingests_overlapped={}\nsegments_sealed={}\nsegments_dropped={}\nshards={}\n",
        stats.submitted,
        stats.rejected,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.queued,
        stats.waves,
        stats.demanded_page_reads,
        stats.unique_pages_read,
        stats.shared_reads_avoided,
        stats.cache_hits,
        stats.cache_bytes_saved,
        stats.pages_pruned_by_index,
        stats.pages_pruned_by_bitmap,
        stats.pages_pruned_by_both,
        stats.probe_node_visits_saved,
        stats.bitmaps_dropped,
        stats.waves_poisoned,
        stats.scrub_slices,
        stats.pages_scrubbed,
        stats.pages_quarantined,
        stats.ingests_overlapped,
        stats.segments_sealed,
        stats.segments_dropped,
        shards.len(),
    );
    for row in shards {
        let k = row.shard;
        body.push_str(&format!(
            "shard.{k}.lines={}\nshard.{k}.data_pages={}\nshard.{k}.raw_bytes={}\n\
             shard.{k}.sealed_segments={}\nshard.{k}.pages_read={}\nshard.{k}.bytes_read={}\n\
             shard.{k}.retries={}\nshard.{k}.modeled_gbps={:.3}\n",
            row.lines,
            row.data_pages,
            row.raw_bytes,
            row.sealed_segments,
            row.pages_read,
            row.bytes_read,
            row.retries,
            row.modeled_gbps,
        ));
    }
    for (name, t) in tenants {
        body.push_str(&format!(
            "tenant.{name}.submitted={}\ntenant.{name}.rejected={}\n\
             tenant.{name}.completed={}\ntenant.{name}.failed={}\n\
             tenant.{name}.cancelled={}\ntenant.{name}.queued={}\n\
             tenant.{name}.pages_scanned={}\ntenant.{name}.lines_returned={}\n",
            t.submitted,
            t.rejected,
            t.completed,
            t.failed,
            t.cancelled,
            t.queued,
            t.pages_scanned,
            t.lines_returned,
        ));
    }
    terminated(body)
}

/// Renders an `ERR` for a request that failed to parse.
pub fn render_error(reason: &str) -> String {
    terminated(format!("ERR {reason}\n"))
}

/// Renders the acknowledgement for `SHUTDOWN` / `QUIT`.
pub fn render_bye() -> String {
    terminated("OK bye\n".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_parses_fields_and_query_tail() {
        let r = parse_request(
            "SUBMIT pri=high budget=4 range=10:99 deadline=2500 tenant=acme explain=1 \
             q=FATAL AND NOT ciod:",
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Submit {
                query: "FATAL AND NOT ciod:".into(),
                priority: Priority::High,
                budget: Some(4),
                range: Some((10, 99)),
                deadline: Some(2500),
                tenant: Some("acme".into()),
                explain: true,
            }
        );
        // Everything after q= belongs to the query, even key=value lookalikes.
        let r = parse_request("SUBMIT q=pri=high").unwrap();
        assert_eq!(
            r,
            Request::Submit {
                query: "pri=high".into(),
                priority: Priority::Normal,
                budget: None,
                range: None,
                deadline: None,
                tenant: None,
                explain: false,
            }
        );
        // An empty tenant name is rejected loudly, never treated as "no
        // tenant".
        assert!(parse_request("SUBMIT tenant= q=x").is_err());
        // explain=0 is explicit, anything else is rejected loudly.
        assert!(matches!(
            parse_request("SUBMIT explain=0 q=x").unwrap(),
            Request::Submit { explain: false, .. }
        ));
        assert!(parse_request("SUBMIT explain=yes q=x").is_err());
    }

    #[test]
    fn submit_deadline_converts_to_micros() {
        let req = submit_to_request("FATAL", None, None, Some(1500)).unwrap();
        assert_eq!(req.deadline, Some(Duration::from_micros(1500)));
        // deadline=0 is well-formed: the plan is fully clipped, not an error.
        let req = submit_to_request("FATAL", None, None, Some(0)).unwrap();
        assert_eq!(req.deadline, Some(Duration::ZERO));
    }

    #[test]
    fn submit_rejects_malformed_fields() {
        assert!(parse_request("SUBMIT").is_err());
        assert!(parse_request("SUBMIT q=").is_err());
        assert!(parse_request("SUBMIT pri=urgent q=x").is_err());
        assert!(parse_request("SUBMIT budget=lots q=x").is_err());
        assert!(parse_request("SUBMIT range=5 q=x").is_err());
        assert!(parse_request("SUBMIT deadline=soon q=x").is_err());
        assert!(parse_request("SUBMIT FATAL").is_err(), "query needs q=");
    }

    #[test]
    fn control_verbs_parse() {
        assert_eq!(parse_request("POLL 7").unwrap(), Request::Poll(7));
        assert_eq!(parse_request("WAIT 0").unwrap(), Request::Wait(0));
        assert_eq!(parse_request("CANCEL 3").unwrap(), Request::Cancel(3));
        assert_eq!(parse_request("SCRUB").unwrap(), Request::Scrub);
        assert_eq!(parse_request("STATS").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("QUIT").unwrap(), Request::Quit);
        assert!(parse_request("POLL x").is_err());
        assert!(parse_request("BOGUS").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn argument_less_verbs_reject_trailing_text() {
        for line in ["SCRUB now", "STATS -v", "SHUTDOWN 5", "QUIT please"] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.contains("takes no arguments"),
                "{line:?} must fail loudly, got {err:?}"
            );
        }
        // Ids with trailing garbage are malformed too, never truncated.
        assert!(parse_request("POLL 7 extra").is_err());
        assert!(parse_request("WAIT 0x2").is_err());
    }

    #[test]
    fn submit_rejects_misspelled_keys_loudly() {
        // The classic fat-finger: a dropped letter must not silently run
        // the query without its deadline.
        let err = parse_request("SUBMIT dedline=2500 q=FATAL").unwrap_err();
        assert!(err.contains("unknown field"), "{err:?}");
        assert!(err.contains("dedline"), "{err:?}");
    }

    #[test]
    fn responses_are_dot_terminated() {
        for response in [
            render_submit(&Ok(5)),
            render_submit(&Err(SubmitError::Rejected {
                queue_full: true,
                queue_len: 8,
                capacity: 8,
            })),
            render_status(None),
            render_status(Some(&JobStatus::Pending)),
            render_cancel(true),
            render_stats(&ServiceStats::default(), &BTreeMap::new(), &[]),
            render_error("nope"),
            render_bye(),
        ] {
            assert!(
                response.ends_with("\n.\n") || response == ".\n",
                "{response:?}"
            );
        }
        assert!(render_submit(&Ok(5)).starts_with("OK id=5\n"));
        let mut tenants = BTreeMap::new();
        tenants.insert(
            "acme".to_string(),
            TenantStats {
                submitted: 3,
                completed: 2,
                ..TenantStats::default()
            },
        );
        let rows = [ShardRow {
            shard: 0,
            lines: 10,
            data_pages: 2,
            raw_bytes: 640,
            sealed_segments: 1,
            pages_read: 4,
            bytes_read: 2048,
            retries: 0,
            modeled_gbps: 3.25,
        }];
        let stats = render_stats(&ServiceStats::default(), &tenants, &rows);
        for key in [
            "waves_poisoned=",
            "scrub_slices=",
            "pages_scrubbed=",
            "pages_quarantined=",
            "ingests_overlapped=",
            "segments_sealed=",
            "segments_dropped=",
            "shards=1",
            "shard.0.lines=10",
            "shard.0.modeled_gbps=3.250",
            "tenant.acme.submitted=3",
            "tenant.acme.completed=2",
            "tenant.acme.queued=0",
        ] {
            assert!(stats.contains(key), "{stats}");
        }
        let scrub = render_status(Some(&JobStatus::Done(JobOutput::Scrub(
            mithrilog_storage::ScrubReport::default(),
        ))));
        assert!(scrub.starts_with("OK done kind=scrub checked=0"), "{scrub}");
        assert!(scrub.ends_with("\n.\n"));
        assert!(render_submit(&Err(SubmitError::Rejected {
            queue_full: true,
            queue_len: 8,
            capacity: 8,
        }))
        .starts_with("REJECTED queue_full"));
    }

    #[test]
    fn done_query_lines_are_prefixed() {
        use mithrilog_storage::CostLedger;
        use std::time::Duration;
        let outcome = mithrilog::QueryOutcome {
            lines: vec!["a FATAL line".into(), ".".into()],
            line_pages: vec![0, 1],
            offloaded: true,
            used_index: false,
            pages_scanned: 2,
            bytes_filtered: 100,
            lines_scanned: 4,
            ledger: CostLedger::default(),
            modeled_time: Duration::ZERO,
            wall_time: Duration::ZERO,
            degraded: mithrilog::DegradedRead::default(),
        };
        let status = JobStatus::Done(JobOutput::Query {
            outcome: Box::new(outcome),
            attribution: mithrilog::ScanAttribution::default(),
        });
        let rendered = render_status(Some(&status));
        assert!(
            rendered.starts_with("OK done kind=query lines=2"),
            "{rendered}"
        );
        assert!(rendered.contains("\nL a FATAL line\n"));
        // A log line that is a lone dot cannot forge the terminator.
        assert!(rendered.contains("\nL .\n"));
        assert!(rendered.ends_with("\n.\n"));
    }
}
