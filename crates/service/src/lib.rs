//! Embedded concurrent query/ingest service for MithriLog.
//!
//! The core crate exposes a single-caller facade: one query at a time owns
//! the whole datapath. Production log stores multiplex many concurrent
//! searches over shared storage, and the paper's accelerator sustains
//! wire-speed filtering precisely so that one device can serve many
//! analysts. This crate turns the parallel datapath into that shared,
//! multi-tenant resource:
//!
//! * **admission control** — a bounded submission queue with explicit
//!   [`SubmitError::Rejected`] errors, so overload degrades predictably
//!   instead of piling up unbounded work;
//! * **fair scheduling** — FIFO within priority classes
//!   ([`Priority::High`] before [`Priority::Normal`] before
//!   [`Priority::Low`]), with per-query page (deadline) budgets that
//!   convert overruns into the existing degraded-read partial-result path
//!   rather than hangs;
//! * **cross-query page sharing** — concurrently admitted queries run as
//!   one shared scan ([`MithriLog::query_shared`]): overlapping page plans
//!   are read and LZAH-decompressed once and fanned out to every waiting
//!   query's compiled filter, with cost attribution split by share count;
//! * **concurrent ingest** — an ingest admitted behind a query wave runs
//!   its CPU-heavy half (compression + tokenization) on a scoped thread
//!   concurrently with the scan and applies the finished frames serially
//!   after the wave settles ([`ServiceConfig::overlap_ingest`]), so ingest
//!   no longer stops the world; [`ServiceConfig::retain_segments`] bounds
//!   the store by dropping the oldest sealed segments crash-consistently
//!   after each ingest;
//! * **multi-device backends** — the scheduler drives any
//!   [`ServiceBackend`]: a single [`mithrilog::MithriLog`] device, or a
//!   [`mithrilog_shard::ShardedLog`] topology whose scatter-gather results
//!   stay byte-identical to a single-device run (`mithrilog serve
//!   --shards N`);
//! * **per-tenant fairness** — jobs may carry a tenant tag: tagged queries
//!   interleave round-robin across tenants within each priority lane,
//!   [`ServiceConfig::tenant_max_queued`] caps how much of the shared
//!   queue one tenant can occupy, [`ServiceConfig::tenant_page_budget`]
//!   bounds each tagged query's scan, and `STATS` reports per-tenant and
//!   per-shard counters;
//! * **front-ends** — the in-process [`ServiceHandle`] API, and a TCP line
//!   protocol ([`protocol`], [`server`]) the CLI exposes as
//!   `mithrilog serve`;
//! * **fault domains** — per-query modeled-time deadlines that clip plans
//!   into honest partial results, mid-scan cancellation at page
//!   granularity, panic isolation (a poisoned wave fails only its own
//!   jobs), an online scrub lane that verifies pages during idle gaps and
//!   quarantines bad ones, and per-connection timeouts/line bounds on the
//!   TCP front-end.
//!
//! Determinism is preserved end to end: for a fixed snapshot, every
//! query's outcome is byte-identical to running it alone — batching changes
//! only the physical read count, reported separately per wave.
//!
//! [`MithriLog::query_shared`]: mithrilog::MithriLog::query_shared
//!
//! # Example
//!
//! ```
//! use mithrilog::{MithriLog, SystemConfig};
//! use mithrilog_service::{JobOutput, Priority, Service, ServiceConfig};
//!
//! let mut system = MithriLog::new(SystemConfig::for_tests());
//! system.ingest(b"RAS KERNEL FATAL data storage interrupt\n")?;
//! let service = Service::spawn(system, ServiceConfig::default());
//! let handle = service.handle();
//! let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
//! match handle.wait(id).unwrap() {
//!     JobOutput::Query { outcome, .. } => assert_eq!(outcome.lines.len(), 1),
//!     other => panic!("expected a query result, got {other:?}"),
//! }
//! service.shutdown();
//! # Ok::<(), mithrilog::MithriLogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod protocol;
pub mod server;
mod service;

pub use backend::ServiceBackend;
pub use mithrilog_shard::ShardRow;
pub use service::{
    JobId, JobOutput, JobStatus, Priority, Service, ServiceConfig, ServiceHandle, ServiceStats,
    SubmitError, TenantStats, WaitError,
};
