use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mithrilog::{
    IngestReport, MithriLog, QueryOutcome, QueryRequest, ScanAttribution, SharedScanReport,
};
use mithrilog_storage::PageStore;

/// Identifier of a submitted job, unique for the lifetime of the service.
pub type JobId = u64;

/// Scheduling class of a submitted query. Within a class, jobs run in
/// strict submission (FIFO) order; across classes, every queued
/// higher-priority job runs before any lower-priority one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive queries: dashboards, incident triage.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch/background queries that should never starve the others.
    Low,
}

impl Priority {
    /// All classes, highest first — the scheduler's drain order.
    pub const CLASSES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Queue index of this class.
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parses the protocol spelling (`high` / `normal` / `low`).
    pub fn parse(text: &str) -> Option<Priority> {
        match text {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// The protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full. Overload is surfaced here, at
    /// admission, instead of as unbounded queueing delay.
    Rejected {
        /// `true` when the rejection was due to the queue being at
        /// capacity (currently the only cause, kept explicit so callers
        /// can distinguish future admission policies).
        queue_full: bool,
        /// Jobs queued at the time of rejection.
        queue_len: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query text did not parse.
    Parse(String),
    /// The service has been shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected {
                queue_len,
                capacity,
                ..
            } => write!(f, "queue full ({queue_len}/{capacity} jobs queued)"),
            SubmitError::Parse(reason) => write!(f, "parse error: {reason}"),
            SubmitError::Closed => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Result payload of a finished job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// A query completed.
    Query {
        /// The outcome, byte-identical to a solo run of the same request.
        outcome: Box<QueryOutcome>,
        /// This query's share-count cost attribution within its wave.
        attribution: ScanAttribution,
    },
    /// An ingest batch completed.
    Ingest(IngestReport),
}

/// Observable state of a submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Admitted, waiting in its priority queue.
    Pending,
    /// Currently executing in a wave.
    Running,
    /// Finished successfully.
    Done(JobOutput),
    /// Failed with a non-survivable error.
    Failed(String),
    /// Cancelled before it started running.
    Cancelled,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound on jobs queued awaiting execution (admission control).
    /// Submissions beyond this are rejected with
    /// [`SubmitError::Rejected`].
    pub max_queue: usize,
    /// Concurrency limit: at most this many queries execute together in
    /// one shared-scan wave.
    pub max_batch: usize,
    /// Page (deadline) budget applied to queries that do not carry their
    /// own: at most this many planned pages are scanned before the query
    /// returns partial results via the degraded-read path. `None` = no
    /// default budget.
    pub default_page_budget: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue: 64,
            max_batch: 16,
            default_page_budget: None,
        }
    }
}

/// Service counters, cumulative since spawn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed with a hard error.
    pub failed: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Shared-scan waves executed.
    pub waves: u64,
    /// Page reads the waves' queries demanded (sum of per-query plans).
    pub demanded_page_reads: u64,
    /// Distinct page reads the waves actually issued.
    pub unique_pages_read: u64,
    /// Duplicate reads avoided by cross-query page sharing.
    pub shared_reads_avoided: u64,
    /// Union pages served from the cross-wave decompressed-page cache.
    pub cache_hits: u64,
    /// Raw page bytes those cache hits kept off the device.
    pub cache_bytes_saved: u64,
}

enum JobKind {
    Query(Box<QueryRequest>, Priority),
    Ingest(Vec<u8>),
}

struct Job {
    kind: Option<JobKind>,
    status: JobStatus,
}

#[derive(Default)]
struct State {
    /// One FIFO lane per priority class, holding job ids.
    lanes: [VecDeque<JobId>; 3],
    jobs: HashMap<JobId, Job>,
    next_id: JobId,
    queued: usize,
    closed: bool,
    stats: ServiceStats,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on every submission, completion, cancellation and close.
    changed: Condvar,
    config: ServiceConfig,
}

/// Cloneable handle for submitting and tracking jobs. All methods are safe
/// to call from any thread; the handle outliving the [`Service`] is fine —
/// submissions after shutdown return [`SubmitError::Closed`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

/// The running service: a scheduler thread that owns the
/// [`MithriLog`] system and executes admitted jobs in shared-scan waves.
pub struct Service {
    handle: ServiceHandle,
    scheduler: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Submits a query request. Returns the job id on admission.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] when the bounded queue is full,
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit(
        &self,
        mut request: QueryRequest,
        priority: Priority,
    ) -> Result<JobId, SubmitError> {
        if request.page_budget.is_none() {
            request.page_budget = self.shared.config.default_page_budget;
        }
        self.admit(JobKind::Query(Box::new(request), priority))
    }

    /// Parses and submits a query.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Parse`] on bad query text, plus every
    /// [`ServiceHandle::submit`] condition.
    pub fn submit_str(&self, query: &str, priority: Priority) -> Result<JobId, SubmitError> {
        let request = QueryRequest::parse(query).map_err(|e| SubmitError::Parse(e.to_string()))?;
        self.submit(request, priority)
    }

    /// Submits an ingest batch (admitted through the same bounded queue;
    /// runs at [`Priority::Normal`], alone — never inside a query wave).
    ///
    /// # Errors
    ///
    /// Same admission conditions as [`ServiceHandle::submit`].
    pub fn ingest(&self, text: Vec<u8>) -> Result<JobId, SubmitError> {
        self.admit(JobKind::Ingest(text))
    }

    fn admit(&self, kind: JobKind) -> Result<JobId, SubmitError> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queued >= self.shared.config.max_queue {
            state.stats.rejected += 1;
            return Err(SubmitError::Rejected {
                queue_full: true,
                queue_len: state.queued,
                capacity: self.shared.config.max_queue,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        let lane = match &kind {
            JobKind::Query(_, priority) => priority.lane(),
            JobKind::Ingest(_) => Priority::Normal.lane(),
        };
        state.jobs.insert(
            id,
            Job {
                kind: Some(kind),
                status: JobStatus::Pending,
            },
        );
        state.lanes[lane].push_back(id);
        state.queued += 1;
        state.stats.submitted += 1;
        state.stats.queued = state.queued as u64;
        self.shared.changed.notify_all();
        Ok(id)
    }

    /// Current status of a job, or `None` for an unknown id.
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.jobs.get(&id).map(|j| j.status.clone())
    }

    /// Blocks until the job leaves the queue/run states, returning its
    /// output.
    ///
    /// # Errors
    ///
    /// The failure message for failed jobs, `"cancelled"` for cancelled
    /// jobs, `"unknown job"` for an id never issued.
    pub fn wait(&self, id: JobId) -> Result<JobOutput, String> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        loop {
            match state.jobs.get(&id) {
                None => return Err("unknown job".into()),
                Some(job) => match &job.status {
                    JobStatus::Done(out) => return Ok(out.clone()),
                    JobStatus::Failed(reason) => return Err(reason.clone()),
                    JobStatus::Cancelled => return Err("cancelled".into()),
                    JobStatus::Pending | JobStatus::Running => {}
                },
            }
            state = self
                .shared
                .changed
                .wait(state)
                .expect("service state poisoned");
        }
    }

    /// Cancels a pending job. Returns `true` when the job was still queued
    /// and is now cancelled; `false` when it already ran (or is running —
    /// waves are never interrupted mid-scan, so cancellation can never
    /// wedge the worker pool).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        let Some(job) = state.jobs.get_mut(&id) else {
            return false;
        };
        if !matches!(job.status, JobStatus::Pending) {
            return false;
        }
        job.status = JobStatus::Cancelled;
        job.kind = None;
        state.queued -= 1;
        state.stats.cancelled += 1;
        state.stats.queued = state.queued as u64;
        self.shared.changed.notify_all();
        true
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.stats
    }

    /// Whether the service has been shut down.
    pub fn is_closed(&self) -> bool {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.closed
    }
}

impl Service {
    /// Starts the service: spawns the scheduler thread, which takes
    /// ownership of `system` and executes admitted jobs in shared-scan
    /// waves until [`Service::shutdown`].
    pub fn spawn<S>(system: MithriLog<S>, config: ServiceConfig) -> Service
    where
        S: PageStore + Send + 'static,
    {
        assert!(config.max_queue > 0, "max_queue must be at least 1");
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            config,
        });
        let scheduler_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("mithrilog-scheduler".into())
            .spawn(move || scheduler_loop(system, &scheduler_shared))
            .expect("failed to spawn the scheduler thread");
        Service {
            handle: ServiceHandle { shared },
            scheduler: Some(scheduler),
        }
    }

    /// A cloneable handle for submitting and tracking jobs.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops accepting submissions, drains nothing further (queued jobs
    /// are failed with `"service is shut down"`), and joins the scheduler
    /// thread.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.handle.shared.state.lock().expect("state poisoned");
            state.closed = true;
            self.handle.shared.changed.notify_all();
        }
        if let Some(thread) = self.scheduler.take() {
            thread.join().expect("scheduler thread panicked");
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One unit of work claimed from the queues while holding the lock.
enum Wave {
    Queries(Vec<(JobId, QueryRequest)>),
    Ingest(JobId, Vec<u8>),
    /// Nothing runnable; the caller should wait for a change.
    Idle,
    Shutdown,
}

/// Claims the next wave in (priority, FIFO) order: the head of the highest
/// non-empty lane decides. Queries accumulate up to `max_batch` across
/// lanes (a half-filled wave never waits for stragglers — determinism
/// requires batching only what is already admitted); an ingest at the
/// front runs alone, and one already-claimed query stops the wave before
/// it.
fn claim_wave(state: &mut State, max_batch: usize) -> Wave {
    if state.closed {
        return Wave::Shutdown;
    }
    let mut wave: Vec<(JobId, QueryRequest)> = Vec::new();
    'lanes: for class in Priority::CLASSES {
        let lane = class.lane();
        while let Some(&id) = state.lanes[lane].front() {
            // Cancelled jobs were emptied in place; drop them from the lane.
            let Some(kind) = state.jobs.get(&id).and_then(|j| j.kind.as_ref()) else {
                state.lanes[lane].pop_front();
                continue;
            };
            match kind {
                JobKind::Query(..) => {
                    if wave.len() == max_batch {
                        break 'lanes;
                    }
                    state.lanes[lane].pop_front();
                    let job = state.jobs.get_mut(&id).expect("claimed job exists");
                    job.status = JobStatus::Running;
                    let Some(JobKind::Query(request, _)) = job.kind.take() else {
                        unreachable!("kind checked above");
                    };
                    wave.push((id, *request));
                }
                JobKind::Ingest(_) => {
                    if !wave.is_empty() {
                        break 'lanes;
                    }
                    state.lanes[lane].pop_front();
                    let job = state.jobs.get_mut(&id).expect("claimed job exists");
                    job.status = JobStatus::Running;
                    let Some(JobKind::Ingest(text)) = job.kind.take() else {
                        unreachable!("kind checked above");
                    };
                    state.queued -= 1;
                    state.stats.queued = state.queued as u64;
                    return Wave::Ingest(id, text);
                }
            }
        }
    }
    if wave.is_empty() {
        return Wave::Idle;
    }
    state.queued -= wave.len();
    state.stats.queued = state.queued as u64;
    Wave::Queries(wave)
}

fn scheduler_loop<S: PageStore>(mut system: MithriLog<S>, shared: &Shared) {
    loop {
        let wave = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                match claim_wave(&mut state, shared.config.max_batch) {
                    Wave::Idle => {
                        state = shared.changed.wait(state).expect("service state poisoned");
                    }
                    other => break other,
                }
            }
        };
        // The lock is dropped while the wave executes: submissions, polls
        // and cancellations of *queued* jobs proceed concurrently.
        match wave {
            Wave::Idle => unreachable!("idle handled inside the lock"),
            Wave::Shutdown => {
                let mut state = shared.state.lock().expect("service state poisoned");
                for lane in &mut state.lanes {
                    lane.clear();
                }
                let orphaned: Vec<JobId> = state
                    .jobs
                    .iter()
                    .filter(|(_, j)| matches!(j.status, JobStatus::Pending))
                    .map(|(id, _)| *id)
                    .collect();
                for id in orphaned {
                    let job = state.jobs.get_mut(&id).expect("listed job exists");
                    job.status = JobStatus::Failed(SubmitError::Closed.to_string());
                    job.kind = None;
                    state.stats.failed += 1;
                }
                state.queued = 0;
                state.stats.queued = 0;
                shared.changed.notify_all();
                return;
            }
            Wave::Ingest(id, text) => {
                let result = system.ingest(&text);
                let mut state = shared.state.lock().expect("service state poisoned");
                let job = state.jobs.get_mut(&id).expect("running job exists");
                match result {
                    Ok(report) => {
                        job.status = JobStatus::Done(JobOutput::Ingest(report));
                        state.stats.completed += 1;
                    }
                    Err(e) => {
                        job.status = JobStatus::Failed(e.to_string());
                        state.stats.failed += 1;
                    }
                }
                shared.changed.notify_all();
            }
            Wave::Queries(wave) => {
                let requests: Vec<QueryRequest> = wave.iter().map(|(_, r)| r.clone()).collect();
                let result = system.query_shared(&requests);
                let mut state = shared.state.lock().expect("service state poisoned");
                match result {
                    Ok(batch) => {
                        state.stats.waves += 1;
                        state.stats.demanded_page_reads += batch.shared.demanded_page_reads;
                        state.stats.unique_pages_read += batch.shared.unique_pages_read;
                        state.stats.shared_reads_avoided += batch.shared.shared_reads_avoided;
                        state.stats.cache_hits += batch.shared.cache_hits;
                        state.stats.cache_bytes_saved += batch.shared.cache_bytes_saved;
                        let SharedScanReport { attribution, .. } = batch.shared;
                        for (((id, _), outcome), attribution) in
                            wave.iter().zip(batch.outcomes).zip(attribution)
                        {
                            let job = state.jobs.get_mut(id).expect("running job exists");
                            job.status = JobStatus::Done(JobOutput::Query {
                                outcome: Box::new(outcome),
                                attribution,
                            });
                            state.stats.completed += 1;
                        }
                    }
                    Err(e) => {
                        // A non-survivable device error fails the whole
                        // wave — the same error a solo run would surface.
                        let reason = e.to_string();
                        for (id, _) in &wave {
                            let job = state.jobs.get_mut(id).expect("running job exists");
                            job.status = JobStatus::Failed(reason.clone());
                            state.stats.failed += 1;
                        }
                    }
                }
                shared.changed.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog::SystemConfig;

    const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading /g/g24/user/program\n\
pbs_mom: scan_for_exiting, job 4161 task 1 terminated\n\
RAS KERNEL INFO generating core.2275\n";

    fn service_with(log: &str, config: ServiceConfig) -> Service {
        let mut system = MithriLog::new(SystemConfig::for_tests());
        system.ingest(log.as_bytes()).unwrap();
        Service::spawn(system, config)
    }

    fn query_lines(out: JobOutput) -> Vec<String> {
        match out {
            JobOutput::Query { outcome, .. } => outcome.lines,
            other => panic!("expected a query output, got {other:?}"),
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let lines = query_lines(handle.wait(id).unwrap());
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.contains("FATAL")));
        service.shutdown();
    }

    #[test]
    fn parse_errors_are_rejected_at_submit() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        assert!(matches!(
            handle.submit_str("AND AND", Priority::Normal),
            Err(SubmitError::Parse(_))
        ));
        service.shutdown();
    }

    #[test]
    fn queue_bound_rejects_overload() {
        // A full queue must reject, not block or grow.
        let config = ServiceConfig {
            max_queue: 2,
            ..ServiceConfig::default()
        };
        let service = service_with(LOG, config);
        let handle = service.handle();
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..50 {
            match handle.submit_str("FATAL", Priority::Low) {
                Ok(id) => admitted.push(id),
                Err(SubmitError::Rejected {
                    queue_full,
                    capacity,
                    ..
                }) => {
                    assert!(queue_full);
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(
            rejected > 0,
            "50 rapid submissions must overflow capacity 2"
        );
        for id in admitted {
            let _ = handle.wait(id);
        }
        assert_eq!(handle.stats().rejected, rejected as u64);
        service.shutdown();
    }

    #[test]
    fn cancel_is_only_effective_before_running() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let _ = handle.wait(id);
        assert!(!handle.cancel(id), "a finished job cannot be cancelled");
        assert!(!handle.cancel(9999), "unknown ids cannot be cancelled");
        // The pool is not wedged: new work still completes.
        let id2 = handle.submit_str("INFO", Priority::High).unwrap();
        assert_eq!(query_lines(handle.wait(id2).unwrap()).len(), 2);
        service.shutdown();
    }

    #[test]
    fn default_page_budget_applies_to_unbudgeted_queries() {
        let config = ServiceConfig {
            default_page_budget: Some(0),
            ..ServiceConfig::default()
        };
        let service = service_with(&LOG.repeat(100), config);
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        match handle.wait(id).unwrap() {
            JobOutput::Query { outcome, .. } => {
                assert_eq!(outcome.pages_scanned, 0);
                assert!(outcome.degraded.budget_clipped > 0);
                assert!(outcome.degraded.is_lossy());
            }
            other => panic!("expected a query output, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn ingest_jobs_run_through_the_same_queue() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let ingest = handle
            .ingest(b"EXTRA KERNEL FATAL injected line\n".to_vec())
            .unwrap();
        match handle.wait(ingest).unwrap() {
            JobOutput::Ingest(report) => assert_eq!(report.lines, 1),
            other => panic!("expected an ingest output, got {other:?}"),
        }
        let id = handle.submit_str("injected", Priority::Normal).unwrap();
        assert_eq!(query_lines(handle.wait(id).unwrap()).len(), 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_closes_submissions() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        service.shutdown();
        assert!(handle.is_closed());
        assert!(matches!(
            handle.submit_str("FATAL", Priority::Normal),
            Err(SubmitError::Closed)
        ));
    }

    #[test]
    fn stats_count_waves_and_sharing() {
        let service = service_with(&LOG.repeat(200), ServiceConfig::default());
        let handle = service.handle();
        let ids: Vec<JobId> = (0..4)
            .map(|_| handle.submit_str("NOT FATAL", Priority::Normal).unwrap())
            .collect();
        for id in ids {
            handle.wait(id).unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 4);
        assert!(stats.waves >= 1);
        assert!(stats.demanded_page_reads >= stats.unique_pages_read);
        service.shutdown();
    }
}
