use std::collections::{BTreeMap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::borrow::Cow;

use mithrilog::{
    CancelToken, IngestReport, PlanExplain, PreparedIngest, QueryOutcome, QueryRequest,
    RetentionReport, ScanAttribution, SharedScanReport,
};
use mithrilog_shard::ShardRow;
use mithrilog_storage::ScrubReport;

use crate::backend::ServiceBackend;

/// Identifier of a submitted job, unique for the lifetime of the service.
pub type JobId = u64;

/// Scheduling class of a submitted query. Within a class, jobs run in
/// strict submission (FIFO) order; across classes, every queued
/// higher-priority job runs before any lower-priority one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Interactive queries: dashboards, incident triage.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Batch/background queries that should never starve the others.
    Low,
}

impl Priority {
    /// All classes, highest first — the scheduler's drain order.
    pub const CLASSES: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];

    /// Queue index of this class.
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Parses the protocol spelling (`high` / `normal` / `low`).
    pub fn parse(text: &str) -> Option<Priority> {
        match text {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    /// The protocol spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is full. Overload is surfaced here, at
    /// admission, instead of as unbounded queueing delay.
    Rejected {
        /// `true` when the rejection was due to the queue being at
        /// capacity (currently the only cause, kept explicit so callers
        /// can distinguish future admission policies).
        queue_full: bool,
        /// Jobs queued at the time of rejection.
        queue_len: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query text did not parse.
    Parse(String),
    /// The service has been shut down.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Rejected {
                queue_len,
                capacity,
                ..
            } => write!(f, "queue full ({queue_len}/{capacity} jobs queued)"),
            SubmitError::Parse(reason) => write!(f, "parse error: {reason}"),
            SubmitError::Closed => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why [`ServiceHandle::wait_timeout`] returned without an output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The job had not settled when the timeout expired — it is still
    /// queued or running; poll or wait again.
    TimedOut,
    /// The job failed with this reason.
    Failed(String),
    /// The job was cancelled.
    Cancelled,
    /// The id was never issued.
    Unknown,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::TimedOut => write!(f, "timed out waiting for the job"),
            WaitError::Failed(reason) => write!(f, "job failed: {reason}"),
            WaitError::Cancelled => write!(f, "job was cancelled"),
            WaitError::Unknown => write!(f, "unknown job"),
        }
    }
}

impl std::error::Error for WaitError {}

/// Result payload of a finished job.
#[derive(Debug, Clone)]
pub enum JobOutput {
    /// A query completed.
    Query {
        /// The outcome, byte-identical to a solo run of the same request.
        outcome: Box<QueryOutcome>,
        /// This query's share-count cost attribution within its wave.
        attribution: ScanAttribution,
    },
    /// A plan-only explain completed: how the request *would* execute —
    /// index decision, per-segment pruning, deadline clips — without a
    /// single data page scanned.
    Explain(Box<PlanExplain>),
    /// An ingest batch completed.
    Ingest(IngestReport),
    /// A full-device scrub pass completed. Pages that failed verification
    /// are now quarantined: queries skip them deterministically (reported
    /// as degraded reads) without re-paying read retries.
    Scrub(ScrubReport),
}

/// Observable state of a submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Admitted, waiting in its priority queue.
    Pending,
    /// Currently executing in a wave.
    Running,
    /// Finished successfully.
    Done(JobOutput),
    /// Failed with a non-survivable error.
    Failed(String),
    /// Cancelled — either while still queued, or mid-scan via the job's
    /// cancellation token (the scan stopped within one page per worker).
    Cancelled,
}

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bound on jobs queued awaiting execution (admission control).
    /// Submissions beyond this are rejected with
    /// [`SubmitError::Rejected`].
    pub max_queue: usize,
    /// Concurrency limit: at most this many queries execute together in
    /// one shared-scan wave.
    pub max_batch: usize,
    /// Page (deadline) budget applied to queries that do not carry their
    /// own: at most this many planned pages are scanned before the query
    /// returns partial results via the degraded-read path. `None` = no
    /// default budget.
    pub default_page_budget: Option<u64>,
    /// Modeled-time deadline applied to queries that do not carry their
    /// own (see [`QueryRequest::deadline`]): the plan is clipped to what
    /// the deadline affords and the remainder is reported in
    /// `DegradedRead::deadline_clipped`. `None` = no default deadline.
    pub default_deadline: Option<Duration>,
    /// Online scrub: when the scheduler is otherwise idle, verify this many
    /// pages per slice, quarantining any that fail, until a full pass over
    /// the device completes (re-armed by every ingest). `0` disables the
    /// scrub lane (the default). Foreground work always preempts the next
    /// slice.
    pub scrub_batch: u64,
    /// Run the CPU-heavy half of an ingest (compression + tokenization,
    /// [`PreparedIngest::build`]) concurrently with the query wave claimed
    /// ahead of it, applying the finished frames serially after the wave.
    /// Queries in the wave were admitted before the ingest, so their
    /// outcomes stay byte-identical to solo runs against the pre-ingest
    /// snapshot; only wall-clock time changes. `false` restores
    /// stop-the-world ingest (the A/B lever the `ingest_concurrent` bench
    /// measures).
    pub overlap_ingest: bool,
    /// Retention target: after every successful ingest, drop the oldest
    /// sealed segments until at most this many remain (crash-consistent;
    /// see [`mithrilog::MithriLog::apply_retention`]). `None` disables
    /// retention.
    pub retain_segments: Option<u64>,
    /// Per-tenant admission cap: at most this many jobs from one tenant
    /// may be queued at once. Submissions beyond it are rejected with
    /// [`SubmitError::Rejected`] (`queue_full: false`), so one tenant
    /// saturating its own allowance cannot consume the whole shared queue
    /// and starve everyone else's admission. Untagged jobs are exempt.
    /// `None` disables the cap.
    pub tenant_max_queued: Option<usize>,
    /// Page budget applied to tenant-tagged queries that do not carry
    /// their own, *before* [`ServiceConfig::default_page_budget`]: a
    /// per-tenant scan allowance whose overruns surface as honest
    /// degraded reads. `None` falls through to the default budget.
    pub tenant_page_budget: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_queue: 64,
            max_batch: 16,
            default_page_budget: None,
            default_deadline: None,
            scrub_batch: 0,
            overlap_ingest: true,
            retain_segments: None,
            tenant_max_queued: None,
            tenant_page_budget: None,
        }
    }
}

/// Service counters, cumulative since spawn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Submissions rejected by admission control.
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed with a hard error.
    pub failed: u64,
    /// Jobs cancelled before running.
    pub cancelled: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Shared-scan waves executed.
    pub waves: u64,
    /// Page reads the waves' queries demanded (sum of per-query plans).
    pub demanded_page_reads: u64,
    /// Distinct page reads the waves actually issued.
    pub unique_pages_read: u64,
    /// Duplicate reads avoided by cross-query page sharing.
    pub shared_reads_avoided: u64,
    /// Union pages served from the cross-wave decompressed-page cache.
    pub cache_hits: u64,
    /// Raw page bytes those cache hits kept off the device.
    pub cache_bytes_saved: u64,
    /// Waves that panicked mid-execution. The panic is contained to the
    /// wave: its jobs fail with an internal error and the scheduler keeps
    /// serving every other job.
    pub waves_poisoned: u64,
    /// Online scrub slices executed between waves.
    pub scrub_slices: u64,
    /// Pages verified by scrubs (online slices and full passes).
    pub pages_scrubbed: u64,
    /// Pages scrubs newly quarantined.
    pub pages_quarantined: u64,
    /// Pages the wave planner pruned via the index plan alone (see
    /// [`SharedScanReport::pages_pruned_by_index`]).
    pub pages_pruned_by_index: u64,
    /// Pages pruned via the per-segment token bitmaps alone.
    pub pages_pruned_by_bitmap: u64,
    /// Pages both the index and the bitmaps would have pruned.
    pub pages_pruned_by_both: u64,
    /// Index node visits the batched probe saved versus each query probing
    /// alone (demanded minus physical walks).
    pub probe_node_visits_saved: u64,
    /// Segment bitmap sidecars dropped by scrubs because they failed
    /// verification; planning fell back to conservative page sets.
    pub bitmaps_dropped: u64,
    /// Ingests whose compression/tokenization ran concurrently with a
    /// query wave instead of stop-the-world.
    pub ingests_overlapped: u64,
    /// Segments sealed by ingests since spawn.
    pub segments_sealed: u64,
    /// Sealed segments dropped by retention since spawn.
    pub segments_dropped: u64,
}

/// Per-tenant counters, cumulative since spawn. Only jobs submitted with a
/// tenant tag are counted; untagged jobs appear solely in [`ServiceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Jobs admitted for this tenant.
    pub submitted: u64,
    /// Submissions rejected — by the shared queue bound or by the
    /// per-tenant cap ([`ServiceConfig::tenant_max_queued`]).
    pub rejected: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed with a hard error.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs currently queued.
    pub queued: u64,
    /// Data pages this tenant's completed queries scanned (as-if-solo).
    pub pages_scanned: u64,
    /// Matched lines returned to this tenant.
    pub lines_returned: u64,
}

enum JobKind {
    Query(Box<QueryRequest>, Priority, Option<String>),
    /// Plan-only: the request is planned (index probe, bitmap pruning,
    /// clips) but no data page is scanned.
    Explain(Box<QueryRequest>, Priority),
    Ingest(Vec<u8>, Option<String>),
    /// A full-device scrub pass; runs alone, like an ingest.
    Scrub,
}

struct Job {
    kind: Option<JobKind>,
    status: JobStatus,
    /// Shared with the request handed to the datapath (query jobs), so a
    /// running job can be cancelled mid-scan.
    cancel: CancelToken,
    /// The tenant tag the job was submitted under, kept past the claim so
    /// settling can account it.
    tenant: Option<String>,
}

#[derive(Default)]
struct State {
    /// One FIFO lane per priority class, holding job ids.
    lanes: [VecDeque<JobId>; 3],
    jobs: HashMap<JobId, Job>,
    next_id: JobId,
    queued: usize,
    closed: bool,
    stats: ServiceStats,
    /// Per-tenant counters for tagged jobs, keyed by tenant name.
    tenants: BTreeMap<String, TenantStats>,
    /// Last published per-device observability rows (one row for a solo
    /// backend), refreshed by the scheduler after every wave.
    shard_rows: Vec<ShardRow>,
}

impl State {
    fn tenant_mut(&mut self, tenant: &str) -> &mut TenantStats {
        self.tenants.entry(tenant.to_string()).or_default()
    }
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on every submission, completion, cancellation and close.
    changed: Condvar,
    config: ServiceConfig,
}

/// Cloneable handle for submitting and tracking jobs. All methods are safe
/// to call from any thread; the handle outliving the [`Service`] is fine —
/// submissions after shutdown return [`SubmitError::Closed`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

/// The running service: a scheduler thread that owns the backend — a
/// [`mithrilog::MithriLog`] device or a [`mithrilog_shard::ShardedLog`]
/// topology — and executes admitted jobs in shared-scan waves.
pub struct Service {
    handle: ServiceHandle,
    scheduler: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Submits a query request. Returns the job id on admission.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Rejected`] when the bounded queue is full,
    /// [`SubmitError::Closed`] after shutdown.
    pub fn submit(&self, request: QueryRequest, priority: Priority) -> Result<JobId, SubmitError> {
        self.submit_tagged(request, priority, None)
    }

    /// Submits a query under a tenant tag. Tagged queries inherit the
    /// per-tenant page budget ([`ServiceConfig::tenant_page_budget`])
    /// before the default, count against the tenant's admission cap
    /// ([`ServiceConfig::tenant_max_queued`]), and are scheduled fairly
    /// against other tenants in the same priority lane.
    ///
    /// # Errors
    ///
    /// Every [`ServiceHandle::submit`] condition, plus
    /// [`SubmitError::Rejected`] with `queue_full: false` when the
    /// tenant's own allowance is exhausted.
    pub fn submit_tagged(
        &self,
        mut request: QueryRequest,
        priority: Priority,
        tenant: Option<&str>,
    ) -> Result<JobId, SubmitError> {
        if request.page_budget.is_none() {
            request.page_budget = tenant
                .and(self.shared.config.tenant_page_budget)
                .or(self.shared.config.default_page_budget);
        }
        if request.deadline.is_none() {
            request.deadline = self.shared.config.default_deadline;
        }
        // Every query job carries a cancellation token shared with the
        // request the datapath scans with, so [`ServiceHandle::cancel`]
        // reaches even a job already running in a wave. A token the caller
        // attached is kept (and shared), not replaced.
        let cancel = request.cancel.get_or_insert_with(CancelToken::new).clone();
        self.admit(
            JobKind::Query(Box::new(request), priority, tenant.map(str::to_string)),
            cancel,
        )
    }

    /// Parses and submits a query.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Parse`] on bad query text, plus every
    /// [`ServiceHandle::submit`] condition.
    pub fn submit_str(&self, query: &str, priority: Priority) -> Result<JobId, SubmitError> {
        self.submit_str_tagged(query, priority, None)
    }

    /// Parses and submits a query under a tenant tag (see
    /// [`ServiceHandle::submit_tagged`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Parse`] on bad query text, plus every
    /// [`ServiceHandle::submit_tagged`] condition.
    pub fn submit_str_tagged(
        &self,
        query: &str,
        priority: Priority,
        tenant: Option<&str>,
    ) -> Result<JobId, SubmitError> {
        let request = QueryRequest::parse(query).map_err(|e| SubmitError::Parse(e.to_string()))?;
        self.submit_tagged(request, priority, tenant)
    }

    /// Submits a plan-only explain of a query request: the request is
    /// planned exactly as a real run would be — index decision, batched
    /// probe, bitmap pruning, window and deadline clips — but no data page
    /// is scanned. Settles as [`JobOutput::Explain`].
    ///
    /// # Errors
    ///
    /// Same admission conditions as [`ServiceHandle::submit`].
    pub fn submit_explain(
        &self,
        mut request: QueryRequest,
        priority: Priority,
    ) -> Result<JobId, SubmitError> {
        if request.page_budget.is_none() {
            request.page_budget = self.shared.config.default_page_budget;
        }
        if request.deadline.is_none() {
            request.deadline = self.shared.config.default_deadline;
        }
        self.admit(
            JobKind::Explain(Box::new(request), priority),
            CancelToken::new(),
        )
    }

    /// Parses and submits a plan-only explain.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Parse`] on bad query text, plus every
    /// [`ServiceHandle::submit_explain`] condition.
    pub fn submit_explain_str(
        &self,
        query: &str,
        priority: Priority,
    ) -> Result<JobId, SubmitError> {
        let request = QueryRequest::parse(query).map_err(|e| SubmitError::Parse(e.to_string()))?;
        self.submit_explain(request, priority)
    }

    /// Submits an ingest batch (admitted through the same bounded queue at
    /// [`Priority::Normal`]). With [`ServiceConfig::overlap_ingest`] its
    /// CPU-heavy half may run concurrently with the query wave admitted
    /// before it; the device-touching half always runs alone, after that
    /// wave settles, so queries never observe a half-applied ingest.
    ///
    /// # Errors
    ///
    /// Same admission conditions as [`ServiceHandle::submit`].
    pub fn ingest(&self, text: Vec<u8>) -> Result<JobId, SubmitError> {
        self.ingest_tagged(text, None)
    }

    /// Submits an ingest batch under a tenant tag. On a sharded backend
    /// running in tenant routing mode the tag pins the whole batch to the
    /// tenant's home shard; the tag also counts against the tenant's
    /// admission cap.
    ///
    /// # Errors
    ///
    /// Same admission conditions as [`ServiceHandle::submit_tagged`].
    pub fn ingest_tagged(&self, text: Vec<u8>, tenant: Option<&str>) -> Result<JobId, SubmitError> {
        self.admit(
            JobKind::Ingest(text, tenant.map(str::to_string)),
            CancelToken::new(),
        )
    }

    /// Submits a full-device scrub pass (admitted through the same bounded
    /// queue; runs alone, like an ingest). Pages that fail verification are
    /// quarantined — subsequent queries skip them deterministically as
    /// degraded reads instead of re-paying read retries — until they are
    /// rewritten.
    ///
    /// # Errors
    ///
    /// Same admission conditions as [`ServiceHandle::submit`].
    pub fn submit_scrub(&self) -> Result<JobId, SubmitError> {
        self.admit(JobKind::Scrub, CancelToken::new())
    }

    fn admit(&self, kind: JobKind, cancel: CancelToken) -> Result<JobId, SubmitError> {
        let tenant = match &kind {
            JobKind::Query(_, _, tenant) | JobKind::Ingest(_, tenant) => tenant.clone(),
            JobKind::Explain(..) | JobKind::Scrub => None,
        };
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queued >= self.shared.config.max_queue {
            state.stats.rejected += 1;
            if let Some(tenant) = &tenant {
                state.tenant_mut(tenant).rejected += 1;
            }
            return Err(SubmitError::Rejected {
                queue_full: true,
                queue_len: state.queued,
                capacity: self.shared.config.max_queue,
            });
        }
        // The per-tenant cap bounds how much of the shared queue one tenant
        // can occupy: a saturating tenant exhausts its own allowance and is
        // turned away while everyone else still gets admitted.
        if let (Some(tenant), Some(cap)) = (&tenant, self.shared.config.tenant_max_queued) {
            let queued = state.tenant_mut(tenant).queued as usize;
            if queued >= cap {
                state.stats.rejected += 1;
                state.tenant_mut(tenant).rejected += 1;
                return Err(SubmitError::Rejected {
                    queue_full: false,
                    queue_len: queued,
                    capacity: cap,
                });
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        let lane = match &kind {
            JobKind::Query(_, priority, _) | JobKind::Explain(_, priority) => priority.lane(),
            JobKind::Ingest(..) | JobKind::Scrub => Priority::Normal.lane(),
        };
        state.jobs.insert(
            id,
            Job {
                kind: Some(kind),
                status: JobStatus::Pending,
                cancel,
                tenant: tenant.clone(),
            },
        );
        state.lanes[lane].push_back(id);
        state.queued += 1;
        state.stats.submitted += 1;
        state.stats.queued = state.queued as u64;
        if let Some(tenant) = &tenant {
            let stats = state.tenant_mut(tenant);
            stats.submitted += 1;
            stats.queued += 1;
        }
        self.shared.changed.notify_all();
        Ok(id)
    }

    /// Current status of a job, or `None` for an unknown id.
    pub fn poll(&self, id: JobId) -> Option<JobStatus> {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.jobs.get(&id).map(|j| j.status.clone())
    }

    /// Blocks until the job leaves the queue/run states, returning its
    /// output.
    ///
    /// # Errors
    ///
    /// The failure message for failed jobs, `"cancelled"` for cancelled
    /// jobs, `"unknown job"` for an id never issued.
    pub fn wait(&self, id: JobId) -> Result<JobOutput, String> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        loop {
            match state.jobs.get(&id) {
                None => return Err("unknown job".into()),
                Some(job) => match &job.status {
                    JobStatus::Done(out) => return Ok(out.clone()),
                    JobStatus::Failed(reason) => return Err(reason.clone()),
                    JobStatus::Cancelled => return Err("cancelled".into()),
                    JobStatus::Pending | JobStatus::Running => {}
                },
            }
            state = self
                .shared
                .changed
                .wait(state)
                .expect("service state poisoned");
        }
    }

    /// Like [`ServiceHandle::wait`], but gives up after `timeout` with
    /// [`WaitError::TimedOut`] (the would-block flavor of waiting) instead
    /// of blocking a caller forever behind a long wave.
    ///
    /// # Errors
    ///
    /// [`WaitError::TimedOut`] when the job has not settled within
    /// `timeout`; otherwise the same terminal states as
    /// [`ServiceHandle::wait`], as typed [`WaitError`] variants.
    pub fn wait_timeout(&self, id: JobId, timeout: Duration) -> Result<JobOutput, WaitError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().expect("service state poisoned");
        loop {
            match state.jobs.get(&id) {
                None => return Err(WaitError::Unknown),
                Some(job) => match &job.status {
                    JobStatus::Done(out) => return Ok(out.clone()),
                    JobStatus::Failed(reason) => return Err(WaitError::Failed(reason.clone())),
                    JobStatus::Cancelled => return Err(WaitError::Cancelled),
                    JobStatus::Pending | JobStatus::Running => {}
                },
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|r| !r.is_zero())
            else {
                return Err(WaitError::TimedOut);
            };
            let (next, result) = self
                .shared
                .changed
                .wait_timeout(state, remaining)
                .expect("service state poisoned");
            state = next;
            if result.timed_out() {
                // Re-check the job once before giving up: the change may
                // have landed exactly at the deadline.
                match state.jobs.get(&id) {
                    None => return Err(WaitError::Unknown),
                    Some(job) => match &job.status {
                        JobStatus::Done(out) => return Ok(out.clone()),
                        JobStatus::Failed(reason) => return Err(WaitError::Failed(reason.clone())),
                        JobStatus::Cancelled => return Err(WaitError::Cancelled),
                        JobStatus::Pending | JobStatus::Running => return Err(WaitError::TimedOut),
                    },
                }
            }
        }
    }

    /// Cancels a pending or running job. A queued job is removed
    /// immediately; a running query's cancellation token is tripped, so its
    /// scan stops within one page per worker — the pages it already scanned
    /// are charged as usual, and the job settles as
    /// [`JobStatus::Cancelled`] when its wave ends. Returns `true` when
    /// cancellation took effect, `false` for a job that already settled (or
    /// an unknown id).
    pub fn cancel(&self, id: JobId) -> bool {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        let Some(job) = state.jobs.get_mut(&id) else {
            return false;
        };
        match job.status {
            JobStatus::Pending => {
                job.status = JobStatus::Cancelled;
                job.kind = None;
                let tenant = job.tenant.clone();
                state.queued -= 1;
                state.stats.cancelled += 1;
                state.stats.queued = state.queued as u64;
                if let Some(tenant) = &tenant {
                    let stats = state.tenant_mut(tenant);
                    stats.cancelled += 1;
                    stats.queued = stats.queued.saturating_sub(1);
                }
                self.shared.changed.notify_all();
                true
            }
            JobStatus::Running => {
                // Cooperative: the wave observes the token at the next page
                // boundary; wave completion marks the job cancelled.
                job.cancel.cancel();
                true
            }
            _ => false,
        }
    }

    /// A snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.stats
    }

    /// A snapshot of the per-tenant counters, keyed by tenant name. Only
    /// tenant-tagged jobs are counted.
    pub fn tenant_stats(&self) -> BTreeMap<String, TenantStats> {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.tenants.clone()
    }

    /// A snapshot of the per-device observability rows the scheduler last
    /// published: what each shard holds and what it has been charged. A
    /// solo backend reports one row.
    pub fn shard_stats(&self) -> Vec<ShardRow> {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.shard_rows.clone()
    }

    /// Whether the service has been shut down.
    pub fn is_closed(&self) -> bool {
        let state = self.shared.state.lock().expect("service state poisoned");
        state.closed
    }
}

impl Service {
    /// Starts the service: spawns the scheduler thread, which takes
    /// ownership of `backend` — a [`mithrilog::MithriLog`] device or a
    /// [`mithrilog_shard::ShardedLog`] topology — and executes admitted
    /// jobs in shared-scan waves until [`Service::shutdown`].
    pub fn spawn<B>(backend: B, config: ServiceConfig) -> Service
    where
        B: ServiceBackend,
    {
        assert!(config.max_queue > 0, "max_queue must be at least 1");
        assert!(config.max_batch > 0, "max_batch must be at least 1");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                shard_rows: backend.shard_rows(),
                ..State::default()
            }),
            changed: Condvar::new(),
            config,
        });
        let scheduler_shared = Arc::clone(&shared);
        let scheduler = std::thread::Builder::new()
            .name("mithrilog-scheduler".into())
            .spawn(move || scheduler_loop(backend, &scheduler_shared))
            .expect("failed to spawn the scheduler thread");
        Service {
            handle: ServiceHandle { shared },
            scheduler: Some(scheduler),
        }
    }

    /// A cloneable handle for submitting and tracking jobs.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops accepting submissions, drains nothing further (queued jobs
    /// are failed with `"service is shut down"`), and joins the scheduler
    /// thread.
    pub fn shutdown(mut self) {
        self.close_and_join();
    }

    fn close_and_join(&mut self) {
        {
            let mut state = self.handle.shared.state.lock().expect("state poisoned");
            state.closed = true;
            self.handle.shared.changed.notify_all();
        }
        if let Some(thread) = self.scheduler.take() {
            // Wave panics are caught inside the loop, so the scheduler only
            // dies on a defect in the loop itself; shutdown still completes
            // (pending jobs were already failed or will simply never run).
            let _ = thread.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// One unit of work claimed from the queues while holding the lock.
enum Wave {
    /// A batch of queries, optionally overlapped with one ingest admitted
    /// *after* every query in the batch: its CPU-heavy prepare half runs
    /// concurrently with the scan, its device-touching apply half runs
    /// after the scan settles, so the queries still observe the exact
    /// pre-ingest snapshot.
    Queries(Vec<(JobId, QueryRequest)>, Option<OverlapIngest>),
    Ingest(JobId, Vec<u8>, Option<String>),
    /// A plan-only explain; runs alone, so its (real, charged) index probe
    /// lands between waves deterministically.
    Explain(JobId, Box<QueryRequest>),
    /// A client-requested full-device scrub pass; runs alone.
    Scrub(JobId),
    /// Nothing runnable; the caller should wait for a change.
    Idle,
    Shutdown,
}

/// An ingest claimed behind a query wave: its id, its raw text, and the
/// tenant tag that routes it on a sharded backend.
struct OverlapIngest {
    id: JobId,
    text: Vec<u8>,
    tenant: Option<String>,
}

/// Selects up to `budget` query jobs from the contiguous run of queries at
/// the front of `lane`, round-robin over tenants: each sweep takes at most
/// one job per tenant (untagged jobs pass through in submission order), so
/// a tenant that filled the lane first cannot starve another tenant's
/// already-admitted queries — they interleave into the same wave. With no
/// tenant tags every sweep takes everything, which is exactly the old
/// strict-FIFO claim. Selected ids are removed from the lane; the jobs
/// left behind keep their relative order.
fn claim_fair_queries(state: &mut State, lane: usize, budget: usize) -> Vec<JobId> {
    let mut window: Vec<(JobId, Option<String>)> = Vec::new();
    for &id in &state.lanes[lane] {
        match state.jobs.get(&id).and_then(|j| j.kind.as_ref()) {
            // Cancelled in place: invisible here, dropped from the lane
            // when it reaches the front.
            None => continue,
            Some(JobKind::Query(_, _, tenant)) => window.push((id, tenant.clone())),
            // The window ends at the first barrier job (ingest, explain,
            // scrub): whatever sits behind it must observe its effects.
            Some(_) => break,
        }
    }
    let mut chosen: Vec<JobId> = Vec::with_capacity(window.len().min(budget));
    let mut taken = vec![false; window.len()];
    while chosen.len() < budget {
        let before = chosen.len();
        let mut served: Vec<&str> = Vec::new();
        for (slot, (id, tenant)) in window.iter().enumerate() {
            if taken[slot] {
                continue;
            }
            if let Some(tenant) = tenant.as_deref() {
                if served.contains(&tenant) {
                    continue;
                }
                served.push(tenant);
            }
            taken[slot] = true;
            chosen.push(*id);
            if chosen.len() == budget {
                break;
            }
        }
        if chosen.len() == before {
            break;
        }
    }
    for id in &chosen {
        let pos = state.lanes[lane]
            .iter()
            .position(|queued| queued == id)
            .expect("chosen id came from this lane");
        state.lanes[lane].remove(pos);
    }
    chosen
}

/// Claims the next wave in (priority, FIFO) order: the head of the highest
/// non-empty lane decides. Queries accumulate up to `max_batch` across
/// lanes (a half-filled wave never waits for stragglers — determinism
/// requires batching only what is already admitted), interleaved fairly
/// across tenants within each lane ([`claim_fair_queries`]). An ingest at
/// the front of an empty wave runs alone; behind already-claimed queries
/// it joins the wave as the overlapped ingest when `overlap_ingest` is set
/// (claiming stops there — jobs admitted after the ingest must observe
/// post-ingest state) and otherwise stops the wave before it.
fn claim_wave(state: &mut State, max_batch: usize, overlap_ingest: bool) -> Wave {
    if state.closed {
        return Wave::Shutdown;
    }
    let mut wave: Vec<(JobId, QueryRequest)> = Vec::new();
    let mut overlap: Option<OverlapIngest> = None;
    'lanes: for class in Priority::CLASSES {
        let lane = class.lane();
        loop {
            // Cancelled jobs were emptied in place; drop them from the lane.
            while let Some(&id) = state.lanes[lane].front() {
                if state.jobs.get(&id).and_then(|j| j.kind.as_ref()).is_some() {
                    break;
                }
                state.lanes[lane].pop_front();
            }
            let Some(&id) = state.lanes[lane].front() else {
                break;
            };
            let kind = state
                .jobs
                .get(&id)
                .and_then(|j| j.kind.as_ref())
                .expect("front job is live");
            match kind {
                JobKind::Query(..) => {
                    if wave.len() == max_batch {
                        break 'lanes;
                    }
                    for id in claim_fair_queries(state, lane, max_batch - wave.len()) {
                        let job = state.jobs.get_mut(&id).expect("claimed job exists");
                        job.status = JobStatus::Running;
                        let Some(JobKind::Query(request, _, tenant)) = job.kind.take() else {
                            unreachable!("the fair claim only picks queries");
                        };
                        state.queued -= 1;
                        if let Some(tenant) = &tenant {
                            let stats = state.tenant_mut(tenant);
                            stats.queued = stats.queued.saturating_sub(1);
                        }
                        wave.push((id, *request));
                    }
                    // Loop: the lane front is now the barrier that ended
                    // the window (or leftover queries once the wave is
                    // full, caught by the max_batch check above).
                }
                JobKind::Ingest(..) => {
                    if !wave.is_empty() && !overlap_ingest {
                        break 'lanes;
                    }
                    state.lanes[lane].pop_front();
                    let job = state.jobs.get_mut(&id).expect("claimed job exists");
                    job.status = JobStatus::Running;
                    let Some(JobKind::Ingest(text, tenant)) = job.kind.take() else {
                        unreachable!("kind checked above");
                    };
                    state.queued -= 1;
                    state.stats.queued = state.queued as u64;
                    if let Some(tenant) = &tenant {
                        let stats = state.tenant_mut(tenant);
                        stats.queued = stats.queued.saturating_sub(1);
                    }
                    if wave.is_empty() {
                        return Wave::Ingest(id, text, tenant);
                    }
                    overlap = Some(OverlapIngest { id, text, tenant });
                    break 'lanes;
                }
                JobKind::Explain(..) => {
                    if !wave.is_empty() {
                        break 'lanes;
                    }
                    state.lanes[lane].pop_front();
                    let job = state.jobs.get_mut(&id).expect("claimed job exists");
                    job.status = JobStatus::Running;
                    let Some(JobKind::Explain(request, _)) = job.kind.take() else {
                        unreachable!("kind checked above");
                    };
                    state.queued -= 1;
                    state.stats.queued = state.queued as u64;
                    return Wave::Explain(id, request);
                }
                JobKind::Scrub => {
                    if !wave.is_empty() {
                        break 'lanes;
                    }
                    state.lanes[lane].pop_front();
                    let job = state.jobs.get_mut(&id).expect("claimed job exists");
                    job.status = JobStatus::Running;
                    job.kind = None;
                    state.queued -= 1;
                    state.stats.queued = state.queued as u64;
                    return Wave::Scrub(id);
                }
            }
        }
    }
    if wave.is_empty() {
        return Wave::Idle;
    }
    state.stats.queued = state.queued as u64;
    Wave::Queries(wave, overlap)
}

/// What the device-touching half of an ingest produced: the report, the
/// number of segments it sealed, and the retention pass that followed it
/// (if one is configured) — or the error / caught panic that stopped it.
type IngestOutcome = Result<
    Result<(IngestReport, u64, Option<RetentionReport>), String>,
    Box<dyn std::any::Any + Send>,
>;

/// What the overlapped prepare half of an ingest produced: the finished
/// frames, or the caught panic that stopped the builder thread.
type PreparedOutcome = Result<PreparedIngest<'static>, Box<dyn std::any::Any + Send>>;

/// Runs the device-touching half of an ingest under panic isolation, then
/// the configured retention pass. Retention failure fails the job: the
/// ingested data is durable, but the store could not honor its retention
/// contract and the client must hear about it.
fn run_ingest<B: ServiceBackend>(
    backend: &mut B,
    retain: Option<u64>,
    ingest: impl FnOnce(&mut B) -> Result<IngestReport, String>,
) -> IngestOutcome {
    catch_unwind(AssertUnwindSafe(|| {
        let sealed_before = backend.sealed_segment_count();
        let report = ingest(backend)?;
        let sealed = backend.sealed_segment_count() - sealed_before;
        let retention = match retain {
            Some(keep) => Some(backend.apply_retention(keep)?),
            None => None,
        };
        Ok((report, sealed, retention))
    }))
}

/// Settles an ingest job from its outcome, folding segment counters into
/// the stats and re-arming the online scrub pass when the device changed.
fn settle_ingest(
    shared: &Shared,
    id: JobId,
    outcome: IngestOutcome,
    overlapped: bool,
    scrub_done: &mut bool,
) {
    let mut state = shared.state.lock().expect("service state poisoned");
    let job = state.jobs.get_mut(&id).expect("running job exists");
    let tenant = job.tenant.clone();
    let succeeded = match outcome {
        Ok(Ok((report, sealed, retention))) => {
            job.status = JobStatus::Done(JobOutput::Ingest(report));
            state.stats.completed += 1;
            state.stats.segments_sealed += sealed;
            if overlapped {
                state.stats.ingests_overlapped += 1;
            }
            if let Some(retention) = retention {
                state.stats.segments_dropped += retention.segments_dropped;
            }
            // New pages to verify (and rewritten pages left quarantine):
            // re-arm the online scrub pass.
            *scrub_done = false;
            true
        }
        Ok(Err(e)) => {
            job.status = JobStatus::Failed(e);
            state.stats.failed += 1;
            *scrub_done = false;
            false
        }
        Err(payload) => {
            job.status = JobStatus::Failed(format!("internal error: {}", panic_message(&*payload)));
            state.stats.failed += 1;
            state.stats.waves_poisoned += 1;
            false
        }
    };
    if let Some(tenant) = &tenant {
        let stats = state.tenant_mut(tenant);
        if succeeded {
            stats.completed += 1;
        } else {
            stats.failed += 1;
        }
    }
    shared.changed.notify_all();
}

/// Renders a caught panic payload for a job failure message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// Publishes the backend's current per-device rows for
/// [`ServiceHandle::shard_stats`] and the `STATS` verb.
fn publish_shard_rows<B: ServiceBackend>(backend: &B, shared: &Shared) {
    let rows = backend.shard_rows();
    let mut state = shared.state.lock().expect("service state poisoned");
    state.shard_rows = rows;
}

fn scheduler_loop<B: ServiceBackend>(mut backend: B, shared: &Shared) {
    // Online scrub lane state: the resume cursor within the current pass,
    // and whether a pass over the whole device has completed since the last
    // ingest. Scheduler-local — it never needs the service lock.
    let mut scrub_cursor: u64 = 0;
    let mut scrub_done = false;
    loop {
        let mut run_scrub_slice = false;
        let wave = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                match claim_wave(
                    &mut state,
                    shared.config.max_batch,
                    shared.config.overlap_ingest,
                ) {
                    Wave::Idle => {
                        // Idle time funds the online scrub: verify one
                        // bounded slice, then come back for real work.
                        // Foreground jobs always preempt the next slice.
                        if shared.config.scrub_batch > 0 && !scrub_done {
                            run_scrub_slice = true;
                            break Wave::Idle;
                        }
                        state = shared.changed.wait(state).expect("service state poisoned");
                    }
                    other => break other,
                }
            }
        };
        // The lock is dropped while the wave executes: submissions, polls
        // and cancellations of *queued* jobs proceed concurrently.
        match wave {
            Wave::Idle => {
                debug_assert!(
                    run_scrub_slice,
                    "idle without scrub handled inside the lock"
                );
                let batch = shared.config.scrub_batch;
                // The scrub lane is a fault domain of its own: a page whose
                // read panics (firmware-bug drill) poisons only this slice.
                // The pass is disarmed until the next ingest re-arms it, so
                // the lane cannot hot-loop on the same poisonous page.
                match catch_unwind(AssertUnwindSafe(|| {
                    backend.scrub_slice(scrub_cursor, batch)
                })) {
                    Ok(slice) => {
                        scrub_cursor = slice.next;
                        scrub_done = slice.complete;
                        let mut state = shared.state.lock().expect("service state poisoned");
                        state.stats.scrub_slices += 1;
                        state.stats.pages_scrubbed += slice.report.pages_checked;
                        state.stats.pages_quarantined += slice.report.quarantined.len() as u64;
                    }
                    Err(_) => {
                        scrub_done = true;
                        let mut state = shared.state.lock().expect("service state poisoned");
                        state.stats.waves_poisoned += 1;
                    }
                }
            }
            Wave::Shutdown => {
                let mut state = shared.state.lock().expect("service state poisoned");
                for lane in &mut state.lanes {
                    lane.clear();
                }
                let orphaned: Vec<JobId> = state
                    .jobs
                    .iter()
                    .filter(|(_, j)| matches!(j.status, JobStatus::Pending))
                    .map(|(id, _)| *id)
                    .collect();
                for id in orphaned {
                    let job = state.jobs.get_mut(&id).expect("listed job exists");
                    job.status = JobStatus::Failed(SubmitError::Closed.to_string());
                    job.kind = None;
                    let tenant = job.tenant.clone();
                    state.stats.failed += 1;
                    if let Some(tenant) = &tenant {
                        state.tenant_mut(tenant).failed += 1;
                    }
                }
                state.queued = 0;
                state.stats.queued = 0;
                for tenant in state.tenants.values_mut() {
                    tenant.queued = 0;
                }
                shared.changed.notify_all();
                return;
            }
            Wave::Ingest(id, text, tenant) => {
                // A panic while ingesting (a device fault drill, a defect
                // in the datapath) fails only this job; the scheduler — and
                // every other job — survives. The system state is sound
                // after an unwind: scoped scan threads are joined before
                // the panic propagates, the page cache recovers poisoned
                // locks, and pages are append-only, so cached text of
                // already-committed pages stays valid.
                let outcome = run_ingest(&mut backend, shared.config.retain_segments, |b| {
                    let config = b.config().clone();
                    let prep = PreparedIngest::build(&config, Cow::Borrowed(&text));
                    b.apply_prepared(tenant.as_deref(), &prep)
                });
                settle_ingest(shared, id, outcome, false, &mut scrub_done);
                publish_shard_rows(&backend, shared);
            }
            Wave::Explain(id, request) => {
                // Plan-only: the probe runs (and is charged) for real, the
                // data-page scan never happens. Same panic isolation as any
                // other lone job.
                let result = catch_unwind(AssertUnwindSafe(|| backend.explain(&request)));
                let mut state = shared.state.lock().expect("service state poisoned");
                let job = state.jobs.get_mut(&id).expect("running job exists");
                match result {
                    Ok(Ok(explain)) => {
                        job.status = JobStatus::Done(JobOutput::Explain(Box::new(explain)));
                        state.stats.completed += 1;
                    }
                    Ok(Err(e)) => {
                        job.status = JobStatus::Failed(e);
                        state.stats.failed += 1;
                    }
                    Err(payload) => {
                        job.status = JobStatus::Failed(format!(
                            "internal error: {}",
                            panic_message(&*payload)
                        ));
                        state.stats.failed += 1;
                        state.stats.waves_poisoned += 1;
                    }
                }
                shared.changed.notify_all();
            }
            Wave::Scrub(id) => {
                let result = catch_unwind(AssertUnwindSafe(|| backend.scrub()));
                let mut state = shared.state.lock().expect("service state poisoned");
                let job = state.jobs.get_mut(&id).expect("running job exists");
                match result {
                    Ok(report) => {
                        job.status = JobStatus::Done(JobOutput::Scrub(report.clone()));
                        state.stats.pages_scrubbed += report.pages_checked;
                        state.stats.pages_quarantined += report.quarantined.len() as u64;
                        state.stats.bitmaps_dropped += report.bitmaps_dropped;
                        state.stats.completed += 1;
                        // A full pass covered everything the online lane
                        // still owed.
                        scrub_done = true;
                        scrub_cursor = 0;
                    }
                    Err(payload) => {
                        job.status = JobStatus::Failed(format!(
                            "internal error: {}",
                            panic_message(&*payload)
                        ));
                        state.stats.failed += 1;
                        state.stats.waves_poisoned += 1;
                    }
                }
                shared.changed.notify_all();
            }
            Wave::Queries(wave, overlap) => {
                let requests: Vec<QueryRequest> = wave.iter().map(|(_, r)| r.clone()).collect();
                // Panic isolation: a wave that panics (e.g. an injected
                // firmware panic surfacing through a scan worker) fails
                // only its own queries. AssertUnwindSafe is sound here —
                // scoped worker threads are joined before the unwind
                // crosses the system, and the page cache recovers poisoned
                // locks — so the scheduler keeps serving every other job.
                //
                // When an ingest was admitted behind the wave, its pure
                // prepare half (compression + tokenization) runs on a
                // scoped thread concurrently with the scan: the queries
                // were admitted first and keep observing the exact
                // pre-ingest snapshot, because nothing touches the device
                // until `apply_ingest` below, after the wave settles. A
                // prepare panic fails only the ingest job.
                let mut prepared: Option<(JobId, Option<String>, PreparedOutcome)> = None;
                let result = if let Some(OverlapIngest { id, text, tenant }) = overlap {
                    let sys_config = backend.config().clone();
                    let (scan, prep) = std::thread::scope(|scope| {
                        let builder = scope.spawn(move || {
                            catch_unwind(AssertUnwindSafe(move || {
                                PreparedIngest::build(&sys_config, Cow::Owned(text))
                            }))
                        });
                        let scan =
                            catch_unwind(AssertUnwindSafe(|| backend.query_shared(&requests)));
                        // The builder caught its own panic; join only
                        // relays the caught payload.
                        let prep = builder.join().unwrap_or_else(Err);
                        (scan, prep)
                    });
                    prepared = Some((id, tenant, prep));
                    scan
                } else {
                    catch_unwind(AssertUnwindSafe(|| backend.query_shared(&requests)))
                };
                let mut state = shared.state.lock().expect("service state poisoned");
                match result {
                    Ok(Ok(batch)) => {
                        state.stats.waves += 1;
                        state.stats.demanded_page_reads += batch.shared.demanded_page_reads;
                        state.stats.unique_pages_read += batch.shared.unique_pages_read;
                        state.stats.shared_reads_avoided += batch.shared.shared_reads_avoided;
                        state.stats.cache_hits += batch.shared.cache_hits;
                        state.stats.cache_bytes_saved += batch.shared.cache_bytes_saved;
                        state.stats.pages_pruned_by_index += batch.shared.pages_pruned_by_index;
                        state.stats.pages_pruned_by_bitmap += batch.shared.pages_pruned_by_bitmap;
                        state.stats.pages_pruned_by_both += batch.shared.pages_pruned_by_both;
                        state.stats.probe_node_visits_saved +=
                            batch.shared.probe_node_visits_saved();
                        let SharedScanReport { attribution, .. } = batch.shared;
                        for (((id, _), outcome), attribution) in
                            wave.iter().zip(batch.outcomes).zip(attribution)
                        {
                            let job = state.jobs.get_mut(id).expect("running job exists");
                            let tenant = job.tenant.clone();
                            if job.cancel.is_cancelled() {
                                // Cancelled mid-wave: the scan stopped at a
                                // page boundary and the partial outcome is
                                // discarded.
                                job.status = JobStatus::Cancelled;
                                state.stats.cancelled += 1;
                                if let Some(tenant) = &tenant {
                                    state.tenant_mut(tenant).cancelled += 1;
                                }
                            } else {
                                let pages_scanned = outcome.pages_scanned;
                                let lines_returned = outcome.lines.len() as u64;
                                job.status = JobStatus::Done(JobOutput::Query {
                                    outcome: Box::new(outcome),
                                    attribution,
                                });
                                state.stats.completed += 1;
                                if let Some(tenant) = &tenant {
                                    let stats = state.tenant_mut(tenant);
                                    stats.completed += 1;
                                    stats.pages_scanned += pages_scanned;
                                    stats.lines_returned += lines_returned;
                                }
                            }
                        }
                    }
                    Ok(Err(reason)) => {
                        // A non-survivable device error fails the whole
                        // wave — the same error a solo run would surface.
                        for (id, _) in &wave {
                            let job = state.jobs.get_mut(id).expect("running job exists");
                            job.status = JobStatus::Failed(reason.clone());
                            let tenant = job.tenant.clone();
                            state.stats.failed += 1;
                            if let Some(tenant) = &tenant {
                                state.tenant_mut(tenant).failed += 1;
                            }
                        }
                    }
                    Err(payload) => {
                        let reason = format!("internal error: {}", panic_message(&*payload));
                        state.stats.waves_poisoned += 1;
                        for (id, _) in &wave {
                            let job = state.jobs.get_mut(id).expect("running job exists");
                            job.status = JobStatus::Failed(reason.clone());
                            let tenant = job.tenant.clone();
                            state.stats.failed += 1;
                            if let Some(tenant) = &tenant {
                                state.tenant_mut(tenant).failed += 1;
                            }
                        }
                    }
                }
                shared.changed.notify_all();
                drop(state);
                // The device-touching half of the overlapped ingest runs
                // serially after the wave settles — even when the scan
                // failed or panicked, the prepared frames are still sound
                // and the client's data still lands durably.
                if let Some((ingest_id, tenant, prep)) = prepared {
                    let outcome = match prep {
                        Ok(prep) => run_ingest(&mut backend, shared.config.retain_segments, |b| {
                            b.apply_prepared(tenant.as_deref(), &prep)
                        }),
                        Err(payload) => Err(payload),
                    };
                    settle_ingest(shared, ingest_id, outcome, true, &mut scrub_done);
                }
                publish_shard_rows(&backend, shared);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog::{MithriLog, SystemConfig};

    const LOG: &str = "\
RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading /g/g24/user/program\n\
pbs_mom: scan_for_exiting, job 4161 task 1 terminated\n\
RAS KERNEL INFO generating core.2275\n";

    fn service_with(log: &str, config: ServiceConfig) -> Service {
        let mut system = MithriLog::new(SystemConfig::for_tests());
        system.ingest(log.as_bytes()).unwrap();
        Service::spawn(system, config)
    }

    fn query_lines(out: JobOutput) -> Vec<String> {
        match out {
            JobOutput::Query { outcome, .. } => outcome.lines,
            other => panic!("expected a query output, got {other:?}"),
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let lines = query_lines(handle.wait(id).unwrap());
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.contains("FATAL")));
        service.shutdown();
    }

    #[test]
    fn parse_errors_are_rejected_at_submit() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        assert!(matches!(
            handle.submit_str("AND AND", Priority::Normal),
            Err(SubmitError::Parse(_))
        ));
        service.shutdown();
    }

    #[test]
    fn queue_bound_rejects_overload() {
        // A full queue must reject, not block or grow.
        let config = ServiceConfig {
            max_queue: 2,
            ..ServiceConfig::default()
        };
        let service = service_with(LOG, config);
        let handle = service.handle();
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for _ in 0..50 {
            match handle.submit_str("FATAL", Priority::Low) {
                Ok(id) => admitted.push(id),
                Err(SubmitError::Rejected {
                    queue_full,
                    capacity,
                    ..
                }) => {
                    assert!(queue_full);
                    assert_eq!(capacity, 2);
                    rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(
            rejected > 0,
            "50 rapid submissions must overflow capacity 2"
        );
        for id in admitted {
            let _ = handle.wait(id);
        }
        assert_eq!(handle.stats().rejected, rejected as u64);
        service.shutdown();
    }

    #[test]
    fn cancel_is_only_effective_before_running() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let _ = handle.wait(id);
        assert!(!handle.cancel(id), "a finished job cannot be cancelled");
        assert!(!handle.cancel(9999), "unknown ids cannot be cancelled");
        // The pool is not wedged: new work still completes.
        let id2 = handle.submit_str("INFO", Priority::High).unwrap();
        assert_eq!(query_lines(handle.wait(id2).unwrap()).len(), 2);
        service.shutdown();
    }

    #[test]
    fn default_page_budget_applies_to_unbudgeted_queries() {
        let config = ServiceConfig {
            default_page_budget: Some(0),
            ..ServiceConfig::default()
        };
        let service = service_with(&LOG.repeat(100), config);
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        match handle.wait(id).unwrap() {
            JobOutput::Query { outcome, .. } => {
                assert_eq!(outcome.pages_scanned, 0);
                assert!(outcome.degraded.budget_clipped > 0);
                assert!(outcome.degraded.is_lossy());
            }
            other => panic!("expected a query output, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn ingest_jobs_run_through_the_same_queue() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let ingest = handle
            .ingest(b"EXTRA KERNEL FATAL injected line\n".to_vec())
            .unwrap();
        match handle.wait(ingest).unwrap() {
            JobOutput::Ingest(report) => assert_eq!(report.lines, 1),
            other => panic!("expected an ingest output, got {other:?}"),
        }
        let id = handle.submit_str("injected", Priority::Normal).unwrap();
        assert_eq!(query_lines(handle.wait(id).unwrap()).len(), 1);
        service.shutdown();
    }

    #[test]
    fn explain_jobs_plan_without_scanning() {
        let service = service_with(&LOG.repeat(200), ServiceConfig::default());
        let handle = service.handle();
        let id = handle
            .submit_explain_str("FATAL AND NOT ciod:", Priority::Normal)
            .unwrap();
        match handle.wait(id).unwrap() {
            JobOutput::Explain(explain) => {
                assert!(explain.live_pages > 0);
                assert!(explain.planned_pages <= explain.live_pages);
                let last = explain.segments.last().expect("open segment row");
                assert_eq!(last.segment_id, None, "open segment renders last");
            }
            other => panic!("expected an explain output, got {other:?}"),
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.waves, 0, "an explain never runs a scan wave");
        // The scheduler is not wedged: a real query still completes.
        let q = handle.submit_str("FATAL", Priority::Normal).unwrap();
        assert!(!query_lines(handle.wait(q).unwrap()).is_empty());
        service.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_closes_submissions() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        service.shutdown();
        assert!(handle.is_closed());
        assert!(matches!(
            handle.submit_str("FATAL", Priority::Normal),
            Err(SubmitError::Closed)
        ));
    }

    #[test]
    fn stats_count_waves_and_sharing() {
        let service = service_with(&LOG.repeat(200), ServiceConfig::default());
        let handle = service.handle();
        let ids: Vec<JobId> = (0..4)
            .map(|_| handle.submit_str("NOT FATAL", Priority::Normal).unwrap())
            .collect();
        for id in ids {
            handle.wait(id).unwrap();
        }
        let stats = handle.stats();
        assert_eq!(stats.completed, 4);
        assert!(stats.waves >= 1);
        assert!(stats.demanded_page_reads >= stats.unique_pages_read);
        service.shutdown();
    }

    /// Builds a [`State`] with the given jobs already admitted, in order,
    /// for driving [`claim_wave`] deterministically.
    fn queued_state(kinds: Vec<JobKind>) -> State {
        let mut state = State::default();
        for kind in kinds {
            let lane = match &kind {
                JobKind::Query(_, priority, _) | JobKind::Explain(_, priority) => priority.lane(),
                JobKind::Ingest(..) | JobKind::Scrub => Priority::Normal.lane(),
            };
            let tenant = match &kind {
                JobKind::Query(_, _, tenant) | JobKind::Ingest(_, tenant) => tenant.clone(),
                _ => None,
            };
            let id = state.next_id;
            state.next_id += 1;
            if let Some(tenant) = &tenant {
                state.tenant_mut(tenant).queued += 1;
            }
            state.jobs.insert(
                id,
                Job {
                    kind: Some(kind),
                    status: JobStatus::Pending,
                    cancel: CancelToken::new(),
                    tenant,
                },
            );
            state.lanes[lane].push_back(id);
            state.queued += 1;
        }
        state
    }

    fn query_kind(q: &str) -> JobKind {
        JobKind::Query(
            Box::new(QueryRequest::parse(q).unwrap()),
            Priority::Normal,
            None,
        )
    }

    fn tenant_query_kind(q: &str, tenant: &str) -> JobKind {
        JobKind::Query(
            Box::new(QueryRequest::parse(q).unwrap()),
            Priority::Normal,
            Some(tenant.to_string()),
        )
    }

    #[test]
    fn claim_wave_overlaps_an_ingest_behind_queries() {
        // Queries ahead of an ingest, another query behind it: the wave
        // claims the queries and the ingest together, and claiming stops
        // at the ingest — the trailing query must observe post-ingest
        // state, so it stays queued for the next wave.
        let mut state = queued_state(vec![
            query_kind("FATAL"),
            query_kind("INFO"),
            JobKind::Ingest(b"line\n".to_vec(), None),
            query_kind("KERNEL"),
        ]);
        match claim_wave(&mut state, 16, true) {
            Wave::Queries(wave, Some(OverlapIngest { id, .. })) => {
                assert_eq!(wave.len(), 2, "only queries admitted before the ingest");
                assert_eq!(id, 2);
            }
            _ => panic!("expected an overlapped query wave"),
        }
        assert_eq!(
            state.queued, 1,
            "the trailing query waits for the next wave"
        );
        match claim_wave(&mut state, 16, true) {
            Wave::Queries(wave, None) => assert_eq!(wave.len(), 1),
            _ => panic!("expected the trailing query alone"),
        }
    }

    #[test]
    fn claim_wave_without_overlap_stops_the_wave_before_an_ingest() {
        let mut state = queued_state(vec![
            query_kind("FATAL"),
            JobKind::Ingest(b"line\n".to_vec(), None),
        ]);
        match claim_wave(&mut state, 16, false) {
            Wave::Queries(wave, None) => assert_eq!(wave.len(), 1),
            _ => panic!("expected a plain query wave"),
        }
        // The ingest then runs alone, exactly as before.
        assert!(matches!(
            claim_wave(&mut state, 16, false),
            Wave::Ingest(1, _, _)
        ));
        assert_eq!(state.queued, 0);
    }

    #[test]
    fn claim_wave_runs_a_leading_ingest_solo_even_with_overlap_enabled() {
        let mut state = queued_state(vec![
            JobKind::Ingest(b"line\n".to_vec(), None),
            query_kind("FATAL"),
        ]);
        assert!(matches!(
            claim_wave(&mut state, 16, true),
            Wave::Ingest(0, _, _)
        ));
    }

    #[test]
    fn claim_wave_interleaves_tenants_round_robin() {
        // Tenant A filled the lane first; tenant B's single query must not
        // wait behind all of A's. Round-robin: one per tenant per sweep.
        let mut state = queued_state(vec![
            tenant_query_kind("FATAL", "acme"),
            tenant_query_kind("INFO", "acme"),
            tenant_query_kind("KERNEL", "acme"),
            tenant_query_kind("ciod:", "beta"),
        ]);
        match claim_wave(&mut state, 2, true) {
            Wave::Queries(wave, None) => {
                let ids: Vec<JobId> = wave.iter().map(|(id, _)| *id).collect();
                assert_eq!(
                    ids,
                    vec![0, 3],
                    "the first sweep serves one query per tenant"
                );
            }
            _ => panic!("expected a query wave"),
        }
        // The rest of tenant A drains in FIFO order afterwards.
        match claim_wave(&mut state, 16, true) {
            Wave::Queries(wave, None) => {
                let ids: Vec<JobId> = wave.iter().map(|(id, _)| *id).collect();
                assert_eq!(ids, vec![1, 2]);
            }
            _ => panic!("expected the remaining queries"),
        }
        assert_eq!(state.queued, 0);
    }

    #[test]
    fn claim_wave_without_tenants_stays_strict_fifo() {
        let mut state = queued_state(vec![
            query_kind("FATAL"),
            query_kind("INFO"),
            query_kind("KERNEL"),
        ]);
        match claim_wave(&mut state, 2, true) {
            Wave::Queries(wave, None) => {
                let ids: Vec<JobId> = wave.iter().map(|(id, _)| *id).collect();
                assert_eq!(ids, vec![0, 1], "untagged claims are submission-ordered");
            }
            _ => panic!("expected a query wave"),
        }
    }

    #[test]
    fn tenant_cap_rejects_saturation_but_admits_other_tenants() {
        let config = ServiceConfig {
            tenant_max_queued: Some(2),
            max_queue: 64,
            ..ServiceConfig::default()
        };
        let service = service_with(&LOG.repeat(50), config);
        let handle = service.handle();
        // Tenant A floods: only the cap's worth is admitted at once.
        let mut flood_admitted = Vec::new();
        let mut flood_rejected = 0usize;
        for _ in 0..20 {
            match handle.submit_str_tagged("FATAL", Priority::Low, Some("flood")) {
                Ok(id) => flood_admitted.push(id),
                Err(SubmitError::Rejected {
                    queue_full,
                    capacity,
                    ..
                }) => {
                    assert!(!queue_full, "the tenant cap is not the shared queue bound");
                    assert_eq!(capacity, 2);
                    flood_rejected += 1;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(flood_rejected > 0, "a flooding tenant must hit its cap");
        // Another tenant (and untagged work) is still admitted and runs.
        let other = handle
            .submit_str_tagged("FATAL", Priority::Low, Some("steady"))
            .unwrap();
        let untagged = handle.submit_str("FATAL", Priority::Low).unwrap();
        assert!(!query_lines(handle.wait(other).unwrap()).is_empty());
        assert!(!query_lines(handle.wait(untagged).unwrap()).is_empty());
        for id in flood_admitted {
            let _ = handle.wait(id);
        }
        let tenants = handle.tenant_stats();
        assert_eq!(tenants["flood"].rejected, flood_rejected as u64);
        assert_eq!(tenants["steady"].completed, 1);
        assert!(tenants["steady"].lines_returned > 0);
        assert_eq!(tenants["flood"].queued, 0, "all settled");
        service.shutdown();
    }

    #[test]
    fn tenant_page_budget_applies_before_the_default() {
        let config = ServiceConfig {
            tenant_page_budget: Some(0),
            default_page_budget: None,
            ..ServiceConfig::default()
        };
        let service = service_with(&LOG.repeat(100), config);
        let handle = service.handle();
        let tagged = handle
            .submit_str_tagged("FATAL", Priority::Normal, Some("capped"))
            .unwrap();
        match handle.wait(tagged).unwrap() {
            JobOutput::Query { outcome, .. } => {
                assert_eq!(outcome.pages_scanned, 0);
                assert!(outcome.degraded.budget_clipped > 0);
            }
            other => panic!("expected a query output, got {other:?}"),
        }
        // An untagged query is not constrained by the tenant budget.
        let free = handle.submit_str("FATAL", Priority::Normal).unwrap();
        match handle.wait(free).unwrap() {
            JobOutput::Query { outcome, .. } => assert!(outcome.pages_scanned > 0),
            other => panic!("expected a query output, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shard_rows_are_published_for_a_solo_backend() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        let id = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let _ = handle.wait(id).unwrap();
        let rows = handle.shard_stats();
        assert_eq!(rows.len(), 1, "a solo device reports one row");
        assert_eq!(rows[0].shard, 0);
        assert_eq!(rows[0].lines, 5);
        service.shutdown();
    }

    #[test]
    fn overlapped_ingest_keeps_query_outcomes_byte_identical_to_solo_runs() {
        // The first (large) ingest occupies the scheduler while the query
        // and the second ingest queue up behind it; the next wave then
        // overlaps them. Each query outcome must equal a solo run against
        // either the pre- or post-ingest snapshot of a fresh replica —
        // never a torn in-between.
        let base = LOG.repeat(50);
        let busy_text = LOG.repeat(400);
        let extra = "EXTRA KERNEL FATAL overlapped line\n";
        // Replicas mirror the service's exact ingest order: base (at
        // spawn), the busy batch, then the overlapped line.
        let mut pre = MithriLog::new(SystemConfig::for_tests());
        pre.ingest(base.as_bytes()).unwrap();
        pre.ingest(busy_text.as_bytes()).unwrap();
        let solo_pre = pre.query_str("FATAL").unwrap().lines;
        let mut post = MithriLog::new(SystemConfig::for_tests());
        post.ingest(base.as_bytes()).unwrap();
        post.ingest(busy_text.as_bytes()).unwrap();
        post.ingest(extra.as_bytes()).unwrap();
        let solo_post = post.query_str("FATAL").unwrap().lines;
        assert_ne!(solo_pre, solo_post);

        let service = service_with(&base, ServiceConfig::default());
        let handle = service.handle();
        let busy = handle.ingest(busy_text.into_bytes()).unwrap();
        let query = handle.submit_str("FATAL", Priority::Normal).unwrap();
        let ingest = handle.ingest(extra.as_bytes().to_vec()).unwrap();
        let trailing = handle.submit_str("FATAL", Priority::Normal).unwrap();

        handle.wait(busy).unwrap();
        let observed = query_lines(handle.wait(query).unwrap());
        assert!(
            observed == solo_pre || observed == solo_post,
            "a service query must match a solo replica run exactly"
        );
        match handle.wait(ingest).unwrap() {
            JobOutput::Ingest(report) => assert_eq!(report.lines, 1),
            other => panic!("expected an ingest output, got {other:?}"),
        }
        // A query settled after the ingest observes the ingested line.
        let after = query_lines(handle.wait(trailing).unwrap());
        assert_eq!(after, solo_post);
        let stats = handle.stats();
        assert_eq!(stats.completed, 4);
        assert!(stats.ingests_overlapped <= 1);
        service.shutdown();
    }

    #[test]
    fn retention_config_drops_segments_as_ingests_land() {
        let config = ServiceConfig {
            retain_segments: Some(2),
            ..ServiceConfig::default()
        };
        let system = MithriLog::new(SystemConfig {
            segment_pages: 2,
            ..SystemConfig::for_tests()
        });
        let service = Service::spawn(system, config);
        let handle = service.handle();
        for round in 0..6 {
            let text = format!("round {round} line\n").repeat(400);
            let id = handle.ingest(text.into_bytes()).unwrap();
            handle.wait(id).unwrap();
        }
        let stats = handle.stats();
        assert!(stats.segments_sealed >= 3, "tiny segments must have sealed");
        assert!(
            stats.segments_dropped > 0,
            "retention must have dropped past the keep target"
        );
        assert!(stats.segments_dropped < stats.segments_sealed);
        service.shutdown();
    }

    #[test]
    fn wait_timeout_distinguishes_every_error_path() {
        let service = service_with(LOG, ServiceConfig::default());
        let handle = service.handle();
        assert!(matches!(
            handle.wait_timeout(9999, Duration::from_millis(1)),
            Err(WaitError::Unknown)
        ));
        // Occupy the scheduler so the probe jobs stay pending.
        let busy = handle.ingest(LOG.repeat(800).into_bytes()).unwrap();
        let timed = handle.submit_str("FATAL", Priority::Low).unwrap();
        assert!(matches!(
            handle.wait_timeout(timed, Duration::ZERO),
            Err(WaitError::TimedOut)
        ));
        let doomed = handle.submit_str("FATAL", Priority::Low).unwrap();
        assert!(handle.cancel(doomed));
        assert!(matches!(
            handle.wait_timeout(doomed, Duration::from_secs(5)),
            Err(WaitError::Cancelled)
        ));
        let _ = handle.wait(busy);
        let _ = handle.wait(timed);
        // Shutdown fails whatever is still pending; wait_timeout reports it.
        let orphan = handle.submit_str("FATAL", Priority::Low).unwrap();
        service.shutdown();
        match handle.wait_timeout(orphan, Duration::from_secs(5)) {
            Err(WaitError::Failed(reason)) => assert!(reason.contains("shut down")),
            // The scheduler may have raced the orphan to completion before
            // shutdown closed the queue — that is not an error path.
            Ok(_) => {}
            other => panic!("expected a failure, got {other:?}"),
        }
    }
}
