//! TCP front-end: serves the [`protocol`](crate::protocol) line protocol
//! over a listener, one thread per connection, all of them funneling into
//! one [`ServiceHandle`].
//!
//! The server borrows the service — it never owns it. `SHUTDOWN` stops the
//! accept loop (and acknowledges the client); the caller then shuts the
//! service itself down, so embedded users can also run the server as one of
//! several front-ends.
//!
//! Each connection is its own fault domain: a client that stalls
//! ([`CLIENT_READ_TIMEOUT`] / [`CLIENT_WRITE_TIMEOUT`]), sends an overlong
//! line ([`MAX_LINE_BYTES`]), or breaks its socket loses only that
//! connection — the service and every other client keep running.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{self, Request};
use crate::service::{ServiceHandle, WaitError};

/// How long a connection thread waits for the next request line before
/// dropping the connection. Generous — clients are interactive — but finite,
/// so an abandoned socket cannot pin a thread forever.
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// How long a blocked response write may stall before the connection is
/// dropped. A client that stops draining its socket only loses its own
/// connection.
pub const CLIENT_WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Upper bound on one request line. Anything longer is a protocol abuse (or
/// a runaway client); the server answers `ERR` and drops the connection
/// rather than buffering without bound.
pub const MAX_LINE_BYTES: u64 = 64 * 1024;

/// `WAIT` gives up after this long. Far beyond any legitimate wave, so a
/// wedged job cannot pin connection threads forever; the client gets an
/// `ERR` and can retry.
const WAIT_TIMEOUT: Duration = Duration::from_secs(600);

/// Serves the line protocol on `listener` until a client sends `SHUTDOWN`.
/// Blocks the calling thread; connection handlers run on their own threads.
///
/// # Errors
///
/// Propagates accept-loop I/O errors. Per-connection I/O errors only end
/// that connection.
pub fn serve(listener: TcpListener, handle: &ServiceHandle) -> std::io::Result<()> {
    let stopping = Arc::new(AtomicBool::new(false));
    let local = listener.local_addr()?;
    for conn in listener.incoming() {
        if stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        let handle = handle.clone();
        let stopping = Arc::clone(&stopping);
        std::thread::Builder::new()
            .name("mithrilog-conn".into())
            .spawn(move || {
                if handle_connection(stream, &handle, &stopping) {
                    // SHUTDOWN: wake the accept loop with a no-op connection
                    // so it observes the flag and exits.
                    let _ = TcpStream::connect(local);
                }
            })
            .expect("failed to spawn a connection thread");
    }
    Ok(())
}

/// Handles one connection; returns `true` when the client asked the whole
/// server to shut down.
fn handle_connection(stream: TcpStream, handle: &ServiceHandle, stopping: &AtomicBool) -> bool {
    // A stalled or hostile client loses its own connection, nothing more.
    if stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).is_err()
        || stream
            .set_write_timeout(Some(CLIENT_WRITE_TIMEOUT))
            .is_err()
    {
        return false;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return false,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // Bound the line buffer: a client streaming an endless "line" gets
        // an ERR and a dropped connection instead of unbounded memory.
        let read = match reader.by_ref().take(MAX_LINE_BYTES).read_line(&mut line) {
            Ok(0) | Err(_) => return false, // EOF, timeout, or broken pipe
            Ok(n) => n,
        };
        if read as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
            let _ = writer.write_all(
                protocol::render_error(&format!("request line exceeds {MAX_LINE_BYTES} bytes"))
                    .as_bytes(),
            );
            return false;
        }
        if line.trim().is_empty() {
            continue;
        }
        let response = match protocol::parse_request(&line) {
            Err(reason) => protocol::render_error(&reason),
            Ok(Request::Submit {
                query,
                priority,
                budget,
                range,
                deadline,
                tenant,
                explain,
            }) => match protocol::submit_to_request(&query, budget, range, deadline) {
                Err(reason) => protocol::render_error(&reason),
                Ok(request) if explain => {
                    protocol::render_submit(&handle.submit_explain(request, priority))
                }
                Ok(request) => protocol::render_submit(&handle.submit_tagged(
                    request,
                    priority,
                    tenant.as_deref(),
                )),
            },
            Ok(Request::Poll(id)) => protocol::render_status(handle.poll(id).as_ref()),
            Ok(Request::Wait(id)) => {
                // Block until the job settles (bounded so a wedged job cannot
                // pin this thread forever), then render whatever state it
                // settled into (or `unknown job` for an id never issued).
                match handle.wait_timeout(id, WAIT_TIMEOUT) {
                    Err(WaitError::TimedOut) => {
                        protocol::render_error("wait timed out; job still queued or running")
                    }
                    _ => protocol::render_status(handle.poll(id).as_ref()),
                }
            }
            Ok(Request::Cancel(id)) => protocol::render_cancel(handle.cancel(id)),
            Ok(Request::Scrub) => protocol::render_submit(&handle.submit_scrub()),
            Ok(Request::Stats) => protocol::render_stats(
                &handle.stats(),
                &handle.tenant_stats(),
                &handle.shard_stats(),
            ),
            Ok(Request::Quit) => {
                let _ = writer.write_all(protocol::render_bye().as_bytes());
                return false;
            }
            Ok(Request::Shutdown) => {
                stopping.store(true, Ordering::SeqCst);
                let _ = writer.write_all(protocol::render_bye().as_bytes());
                return true;
            }
        };
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            return false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Priority, Service, ServiceConfig};
    use mithrilog::{MithriLog, SystemConfig};

    /// Reads one dot-terminated response.
    fn read_response(reader: &mut BufReader<TcpStream>) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end_matches('\n').to_string();
            if line == protocol::TERMINATOR {
                return lines;
            }
            lines.push(line);
        }
    }

    #[test]
    fn tcp_roundtrip_submit_wait_stats_shutdown() {
        let mut system = MithriLog::new(SystemConfig::for_tests());
        system
            .ingest(b"RAS KERNEL FATAL data storage interrupt\nRAS KERNEL INFO ok\n")
            .unwrap();
        let service = Service::spawn(system, ServiceConfig::default());
        let handle = service.handle();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, &handle).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"SUBMIT pri=high q=FATAL\n").unwrap();
        let response = read_response(&mut reader);
        assert_eq!(response, vec!["OK id=0"]);

        writer.write_all(b"WAIT 0\n").unwrap();
        let response = read_response(&mut reader);
        assert!(
            response[0].starts_with("OK done kind=query lines=1"),
            "{response:?}"
        );
        assert_eq!(response[1], "L RAS KERNEL FATAL data storage interrupt");

        writer.write_all(b"POLL 99\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["ERR unknown job"]);

        writer.write_all(b"CANCEL 0\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK too-late"]);

        writer.write_all(b"STATS\n").unwrap();
        let stats = read_response(&mut reader);
        assert_eq!(stats[0], "OK stats");
        assert!(stats.contains(&"completed=1".to_string()), "{stats:?}");

        writer.write_all(b"NOT-A-VERB\n").unwrap();
        assert!(read_response(&mut reader)[0].starts_with("ERR "));

        writer.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK bye"]);
        server.join().unwrap();
        service.shutdown();

        // Further submissions are refused by the closed service.
        let service_handle_closed = Service::spawn(
            MithriLog::new(SystemConfig::for_tests()),
            ServiceConfig::default(),
        );
        let h = service_handle_closed.handle();
        service_handle_closed.shutdown();
        assert!(h.submit_str("x", Priority::Normal).is_err());
    }

    #[test]
    fn sharded_backend_serves_tenants_over_tcp() {
        use mithrilog_shard::{RouteMode, ShardOptions, ShardedLog};
        let mut sharded = ShardedLog::new(
            SystemConfig::for_tests(),
            ShardOptions {
                shards: 2,
                mode: RouteMode::LineHash,
                salt: 0x5eed,
            },
        );
        let corpus: String = (0..32)
            .map(|i| format!("node-{i:04} RAS KERNEL FATAL data storage interrupt\n"))
            .collect();
        sharded.ingest(corpus.as_bytes()).unwrap();
        let service = Service::spawn(sharded, ServiceConfig::default());
        let handle = service.handle();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, &handle).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        writer.write_all(b"SUBMIT tenant=acme q=FATAL\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK id=0"]);
        writer.write_all(b"WAIT 0\n").unwrap();
        let done = read_response(&mut reader);
        assert!(
            done[0].starts_with("OK done kind=query lines=32"),
            "{done:?}"
        );

        writer.write_all(b"STATS\n").unwrap();
        let stats = read_response(&mut reader);
        assert!(stats.contains(&"shards=2".to_string()), "{stats:?}");
        assert!(
            stats.iter().any(|l| l.starts_with("shard.0.lines=")),
            "{stats:?}"
        );
        assert!(
            stats.iter().any(|l| l.starts_with("shard.1.lines=")),
            "{stats:?}"
        );
        assert!(
            stats.contains(&"tenant.acme.completed=1".to_string()),
            "{stats:?}"
        );
        assert!(
            stats.contains(&"tenant.acme.lines_returned=32".to_string()),
            "{stats:?}"
        );

        writer.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK bye"]);
        server.join().unwrap();
        service.shutdown();
    }

    #[test]
    fn typoed_requests_fail_loudly_and_the_connection_survives() {
        let mut system = MithriLog::new(SystemConfig::for_tests());
        system
            .ingest(b"RAS KERNEL FATAL data storage interrupt\nRAS KERNEL INFO ok\n")
            .unwrap();
        let service = Service::spawn(system, ServiceConfig::default());
        let handle = service.handle();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, &handle).unwrap());

        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        // The fat-fingered deadline key must never silently submit the
        // query without its deadline.
        writer.write_all(b"SUBMIT dedline=2500 q=FATAL\n").unwrap();
        let response = read_response(&mut reader);
        assert!(response[0].starts_with("ERR "), "{response:?}");
        assert!(response[0].contains("unknown field"), "{response:?}");
        assert!(response[0].contains("dedline"), "{response:?}");

        // Argument-less verbs reject trailing text instead of guessing.
        for line in ["SCRUB now\n", "STATS -v\n", "SHUTDOWN 5\n"] {
            writer.write_all(line.as_bytes()).unwrap();
            let response = read_response(&mut reader);
            assert!(response[0].starts_with("ERR "), "{line:?}: {response:?}");
            assert!(
                response[0].contains("takes no arguments"),
                "{line:?}: {response:?}"
            );
        }

        // A parse error costs nothing but the request: the same connection
        // still serves well-formed traffic, and no job was ever admitted.
        writer.write_all(b"SUBMIT deadline=2500 q=FATAL\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK id=0"]);
        writer.write_all(b"STATS\n").unwrap();
        let stats = read_response(&mut reader);
        assert!(stats.contains(&"submitted=1".to_string()), "{stats:?}");

        writer.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK bye"]);
        server.join().unwrap();
        service.shutdown();
    }

    #[test]
    fn hostile_connections_lose_only_themselves() {
        let mut system = MithriLog::new(SystemConfig::for_tests());
        system
            .ingest(b"RAS KERNEL FATAL data storage interrupt\nRAS KERNEL INFO ok\n")
            .unwrap();
        let service = Service::spawn(system, ServiceConfig::default());
        let handle = service.handle();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || serve(listener, &handle).unwrap());

        // A client streaming an endless line gets an ERR and is dropped —
        // the server does not buffer without bound.
        {
            let stream = TcpStream::connect(addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let payload = vec![b'x'; MAX_LINE_BYTES as usize + 1024];
            let _ = writer.write_all(&payload); // may fail once dropped
            let _ = writer.flush();
            let mut reader = BufReader::new(stream);
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => {} // connection reset before we could read
                Ok(_) => assert!(line.starts_with("ERR "), "{line:?}"),
            }
        }

        // A well-behaved connection still works afterwards: the service
        // survived, and the new verbs round-trip.
        let stream = TcpStream::connect(addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"SUBMIT deadline=0 q=FATAL\n").unwrap();
        let response = read_response(&mut reader);
        assert_eq!(response, vec!["OK id=0"]);
        writer.write_all(b"WAIT 0\n").unwrap();
        let done = read_response(&mut reader);
        // A zero deadline clips the whole plan: well-formed, degraded, empty.
        assert!(done[0].contains("degraded=true"), "{done:?}");
        assert!(done[0].contains("lines=0"), "{done:?}");
        writer.write_all(b"SCRUB\n").unwrap();
        let response = read_response(&mut reader);
        assert_eq!(response, vec!["OK id=1"]);
        writer.write_all(b"WAIT 1\n").unwrap();
        let scrubbed = read_response(&mut reader);
        assert!(
            scrubbed[0].starts_with("OK done kind=scrub"),
            "{scrubbed:?}"
        );
        writer.write_all(b"STATS\n").unwrap();
        let stats = read_response(&mut reader);
        assert!(
            stats.iter().any(|l| l.starts_with("pages_scrubbed=")),
            "{stats:?}"
        );
        writer.write_all(b"SHUTDOWN\n").unwrap();
        assert_eq!(read_response(&mut reader), vec!["OK bye"]);
        server.join().unwrap();
        service.shutdown();
    }
}
