use mithrilog_query::Query;

use crate::bitmap::Bitmap;
use crate::error::QueryCompileError;
use crate::table::CuckooTable;

/// Hardware parameters of the filter (paper §4.2.2 prototype values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FilterParams {
    /// Hash table rows (prototype: 256; "trivial to make much larger").
    pub rows: usize,
    /// Flag pairs per entry = maximum intersection sets per query
    /// (prototype: 8).
    pub flag_pairs: usize,
    /// Datapath word width in bytes (prototype: 16).
    pub word_bytes: usize,
    /// Maximum table load accepted at compile time. Cuckoo placement is
    /// near-certain below 0.5; the prototype over-provisions accordingly.
    pub max_load: f64,
}

impl Default for FilterParams {
    fn default() -> Self {
        FilterParams {
            rows: 256,
            flag_pairs: 8,
            word_bytes: 16,
            max_load: 0.5,
        }
    }
}

/// A query compiled onto the cuckoo-hash filter: the populated table plus
/// one expected bitmap per intersection set (paper Figure 6).
///
/// # Example
///
/// ```
/// use mithrilog_filter::{CompiledQuery, FilterParams};
/// use mithrilog_query::parse;
///
/// let q = parse("alpha AND beta OR gamma")?;
/// let c = CompiledQuery::compile(&q, FilterParams::default())?;
/// assert_eq!(c.set_count(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    table: CuckooTable,
    expected: Vec<Bitmap>,
    params: FilterParams,
}

impl CompiledQuery {
    /// Compiles a union-of-intersections query into hash tables and bitmaps.
    ///
    /// Contradictory intersection sets (containing both `x` and `¬x`) can
    /// never match any line, and the hardware flag encoding cannot express
    /// them; they are dropped here, which preserves semantics exactly.
    ///
    /// # Errors
    ///
    /// * [`QueryCompileError::TooManySets`] — more sets than flag pairs.
    /// * [`QueryCompileError::TooManyTokens`] — distinct tokens exceed the
    ///   load limit.
    /// * [`QueryCompileError::PlacementFailed`] — cuckoo eviction looped.
    ///
    /// All of these mean "fall back to software evaluation", mirroring the
    /// paper.
    pub fn compile(query: &Query, params: FilterParams) -> Result<Self, QueryCompileError> {
        let sets: Vec<_> = query
            .sets()
            .iter()
            .filter(|s| !s.is_contradictory())
            .collect();
        if sets.len() > params.flag_pairs {
            return Err(QueryCompileError::TooManySets {
                got: sets.len(),
                max: params.flag_pairs,
            });
        }
        let distinct: std::collections::HashSet<&str> = sets
            .iter()
            .flat_map(|s| s.terms().iter().map(|t| t.token()))
            .collect();
        let max_tokens = (params.rows as f64 * params.max_load) as usize;
        if distinct.len() > max_tokens {
            return Err(QueryCompileError::TooManyTokens {
                got: distinct.len(),
                max: max_tokens,
            });
        }

        let mut table = CuckooTable::new(params.rows, params.word_bytes);
        for (i, set) in sets.iter().enumerate() {
            for term in set.terms() {
                table.insert(term.token().as_bytes(), i, term.is_negated())?;
            }
        }

        // Expected bitmaps are computed after all insertions because cuckoo
        // evictions may move rows; lookup returns the final placement.
        let mut expected = vec![Bitmap::new(params.rows); sets.len()];
        for (i, set) in sets.iter().enumerate() {
            for term in set.positive_terms() {
                let (row, _) = table
                    .lookup(term.token().as_bytes())
                    .expect("inserted token must be present");
                expected[i].set(row);
            }
        }

        Ok(CompiledQuery {
            table,
            expected,
            params,
        })
    }

    /// The populated cuckoo table.
    pub fn table(&self) -> &CuckooTable {
        &self.table
    }

    /// The expected bitmap of intersection set `i`.
    pub fn expected(&self, i: usize) -> &Bitmap {
        &self.expected[i]
    }

    /// Number of (non-contradictory) intersection sets compiled.
    pub fn set_count(&self) -> usize {
        self.expected.len()
    }

    /// The hardware parameters used for compilation.
    pub fn params(&self) -> &FilterParams {
        &self.params
    }

    /// Assembles a compiled query from a pre-populated table and expected
    /// bitmaps (used by the positional compiler).
    pub(crate) fn from_parts(
        table: CuckooTable,
        expected: Vec<Bitmap>,
        params: FilterParams,
    ) -> Self {
        CompiledQuery {
            table,
            expected,
            params,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::{parse, IntersectionSet, Term};

    #[test]
    fn compile_simple_query() {
        let q = parse("A AND B").unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.set_count(), 1);
        assert_eq!(c.table().occupied(), 2);
        assert_eq!(c.expected(0).count_ones(), 2);
    }

    #[test]
    fn negative_terms_not_in_expected_bitmap() {
        let q = parse("A AND NOT B").unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.expected(0).count_ones(), 1);
        assert_eq!(c.table().occupied(), 2, "negated token still stored");
    }

    #[test]
    fn too_many_sets_rejected() {
        let sets: Vec<IntersectionSet> = (0..9)
            .map(|i| IntersectionSet::of_tokens([format!("t{i}")]))
            .collect();
        let q = Query::try_new(sets).unwrap();
        match CompiledQuery::compile(&q, FilterParams::default()) {
            Err(QueryCompileError::TooManySets { got: 9, max: 8 }) => {}
            other => panic!("expected TooManySets, got {other:?}"),
        }
    }

    #[test]
    fn too_many_tokens_rejected() {
        let tokens: Vec<String> = (0..200).map(|i| format!("t{i}")).collect();
        let q = Query::all_of(tokens);
        match CompiledQuery::compile(&q, FilterParams::default()) {
            Err(QueryCompileError::TooManyTokens { got: 200, max: 128 }) => {}
            other => panic!("expected TooManyTokens, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_set_is_dropped() {
        let sets = vec![
            IntersectionSet::of_tokens(["x"]).with(Term::negative("x")),
            IntersectionSet::of_tokens(["y"]),
        ];
        let q = Query::try_new(sets).unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.set_count(), 1);
    }

    #[test]
    fn fully_contradictory_query_compiles_to_zero_sets() {
        let sets = vec![IntersectionSet::of_tokens(["x"]).with(Term::negative("x"))];
        let q = Query::try_new(sets).unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.set_count(), 0);
    }

    #[test]
    fn shared_token_across_sets_uses_one_row() {
        let q = parse("(A AND B) OR (A AND C)").unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.table().occupied(), 3);
        let (row_a, e) = c.table().lookup(b"A").unwrap();
        assert_eq!(e.valid_mask(), 0b11);
        assert!(c.expected(0).get(row_a));
        assert!(c.expected(1).get(row_a));
    }

    #[test]
    fn hundreds_of_terms_compile_on_default_table() {
        // "queries with hundreds of terms" (paper §1) — 120 distinct tokens
        // across 8 sets is within the 0.5-load budget of a 256-row table.
        let sets: Vec<IntersectionSet> = (0..8)
            .map(|s| {
                IntersectionSet::of_tokens((0..15).map(|i| format!("term-{s}-{i}")))
                    .with(Term::negative(format!("neg-{s}")))
            })
            .collect();
        let q = Query::try_new(sets).unwrap();
        let c = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert_eq!(c.set_count(), 8);
        assert_eq!(c.table().occupied(), 128);
    }

    use mithrilog_query::Query;
}
