use std::fmt;

/// A fixed-width bitmap with one bit per hash table row (paper §4.2.3).
///
/// The engine keeps one bitmap per intersection set per in-flight line; a
/// set is satisfied when its bitmap exactly equals the compiled query
/// bitmap. On the 256-row prototype this is a 256-bit register; we store
/// `u64` limbs.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    limbs: Vec<u64>,
    bits: usize,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `bits` width.
    pub fn new(bits: usize) -> Self {
        Bitmap {
            limbs: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Width in bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Sets bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.bits, "bit {idx} out of range {}", self.bits);
        self.limbs[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Tests bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= len()`.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.bits, "bit {idx} out of range {}", self.bits);
        self.limbs[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Clears all bits (per-line reset in the engine).
    #[inline]
    pub fn clear(&mut self) {
        self.limbs.fill(0);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.limbs.iter().map(|l| l.count_ones() as usize).sum()
    }

    /// Creates an all-ones bitmap of `bits` width (trailing bits of the
    /// last limb stay zero, so [`Bitmap::count_ones`] equals `bits`).
    pub fn filled(bits: usize) -> Self {
        let mut limbs = vec![u64::MAX; bits.div_ceil(64)];
        let tail = bits % 64;
        if tail != 0 {
            if let Some(last) = limbs.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        Bitmap { limbs, bits }
    }

    /// In-place intersection: `self &= other`, word-wise over the limbs.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ — combining bitmaps over different page
    /// or bucket universes is always a logic error, never a degradation.
    pub fn and_with(&mut self, other: &Bitmap) {
        assert_eq!(
            self.bits, other.bits,
            "bitmap width mismatch: {} vs {}",
            self.bits, other.bits
        );
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a &= b;
        }
    }

    /// In-place union: `self |= other`, word-wise over the limbs.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn or_with(&mut self, other: &Bitmap) {
        assert_eq!(
            self.bits, other.bits,
            "bitmap width mismatch: {} vs {}",
            self.bits, other.bits
        );
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a |= b;
        }
    }

    /// In-place difference: `self &= !other`, word-wise over the limbs.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn and_not(&mut self, other: &Bitmap) {
        assert_eq!(
            self.bits, other.bits,
            "bitmap width mismatch: {} vs {}",
            self.bits, other.bits
        );
        for (a, b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a &= !b;
        }
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[{} bits:", self.bits)?;
        let mut first = true;
        for i in 0..self.bits {
            if self.get(i) {
                if first {
                    write!(f, " {i}")?;
                    first = false;
                } else {
                    write!(f, ",{i}")?;
                }
            }
        }
        if first {
            write!(f, " empty")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_empty() {
        let b = Bitmap::new(256);
        assert!(b.is_empty());
        assert_eq!(b.len(), 256);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip_across_limbs() {
        let mut b = Bitmap::new(256);
        for idx in [0, 1, 63, 64, 127, 128, 200, 255] {
            b.set(idx);
            assert!(b.get(idx));
        }
        assert_eq!(b.count_ones(), 8);
        assert!(!b.get(2));
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = Bitmap::new(128);
        let mut b = Bitmap::new(128);
        a.set(5);
        assert_ne!(a, b);
        b.set(5);
        assert_eq!(a, b);
    }

    #[test]
    fn clear_resets() {
        let mut b = Bitmap::new(64);
        b.set(10);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn non_multiple_of_64_width_works() {
        let mut b = Bitmap::new(100);
        b.set(99);
        assert!(b.get(99));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        Bitmap::new(100).set(100);
    }

    #[test]
    fn filled_sets_exactly_bits_ones() {
        for width in [0, 1, 63, 64, 65, 100, 128, 256] {
            let b = Bitmap::filled(width);
            assert_eq!(b.count_ones(), width, "width {width}");
            for i in 0..width {
                assert!(b.get(i));
            }
        }
    }

    #[test]
    fn and_with_intersects_word_wise() {
        let mut a = Bitmap::new(130);
        let mut b = Bitmap::new(130);
        for i in [0, 5, 64, 129] {
            a.set(i);
        }
        for i in [5, 63, 64, 128] {
            b.set(i);
        }
        a.and_with(&b);
        assert!(a.get(5) && a.get(64));
        assert!(!a.get(0) && !a.get(63) && !a.get(128) && !a.get(129));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn or_with_unions_word_wise() {
        let mut a = Bitmap::new(130);
        let mut b = Bitmap::new(130);
        a.set(1);
        a.set(129);
        b.set(1);
        b.set(64);
        a.or_with(&b);
        assert_eq!(a.count_ones(), 3);
        assert!(a.get(1) && a.get(64) && a.get(129));
    }

    #[test]
    fn and_not_subtracts_word_wise() {
        let mut a = Bitmap::filled(130);
        let mut b = Bitmap::new(130);
        b.set(0);
        b.set(65);
        a.and_not(&b);
        assert_eq!(a.count_ones(), 128);
        assert!(!a.get(0) && !a.get(65));
        assert!(a.get(1) && a.get(64) && a.get(129));
    }

    #[test]
    fn combinators_preserve_trailing_zero_bits() {
        // Width 100 leaves 28 unused bits in the last limb; a filled
        // operand must never leak set bits past `len()`.
        let mut a = Bitmap::filled(100);
        let b = Bitmap::filled(100);
        a.or_with(&b);
        assert_eq!(a.count_ones(), 100);
        a.and_with(&b);
        assert_eq!(a.count_ones(), 100);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn and_with_rejects_width_mismatch() {
        Bitmap::new(64).and_with(&Bitmap::new(65));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn or_with_rejects_width_mismatch() {
        Bitmap::new(64).or_with(&Bitmap::new(128));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn and_not_rejects_width_mismatch() {
        Bitmap::new(10).and_not(&Bitmap::new(11));
    }

    #[test]
    fn debug_lists_set_bits() {
        let mut b = Bitmap::new(16);
        b.set(3);
        b.set(9);
        let s = format!("{b:?}");
        assert!(s.contains('3'));
        assert!(s.contains('9'));
    }
}
