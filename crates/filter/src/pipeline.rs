use mithrilog_query::Query;
use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};

use crate::compile::{CompiledQuery, FilterParams};
use crate::engine::HashFilter;
use crate::error::QueryCompileError;

/// A complete filter pipeline: tokenizer array + hash filter (paper
/// Figure 3, minus the decompressor, which lives in `mithrilog-compress`).
///
/// This is the functional unit callers use to filter raw text. The
/// prototype instantiates four of these; because the gather stage restores
/// line order, N pipelines are functionally identical to one, so the
/// multi-pipeline aspect only appears in the timing model
/// (`mithrilog-sim`).
#[derive(Debug, Clone)]
pub struct FilterPipeline {
    tokenizer: Tokenizer,
    compiled: CompiledQuery,
}

/// Counters of a filtering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Lines examined.
    pub lines_in: u64,
    /// Lines forwarded to the host.
    pub lines_kept: u64,
    /// Tokens processed.
    pub tokens: u64,
    /// Raw bytes examined (including newlines).
    pub bytes_in: u64,
}

impl FilterPipeline {
    /// Compiles a query with default (prototype) parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryCompileError`] from compilation; see
    /// [`CompiledQuery::compile`].
    pub fn compile(query: &Query) -> Result<Self, QueryCompileError> {
        Self::compile_with(query, FilterParams::default(), TokenizerConfig::default())
    }

    /// Compiles a query with explicit filter and tokenizer parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`QueryCompileError`] from compilation.
    pub fn compile_with(
        query: &Query,
        params: FilterParams,
        tokenizer: TokenizerConfig,
    ) -> Result<Self, QueryCompileError> {
        let compiled = CompiledQuery::compile(query, params)?;
        Ok(FilterPipeline {
            tokenizer: Tokenizer::new(tokenizer),
            compiled,
        })
    }

    /// The compiled query (table + bitmaps).
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }

    /// The tokenizer in use.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Evaluates a single line.
    pub fn matches_line(&self, line: &[u8]) -> bool {
        let mut filter = HashFilter::new(&self.compiled);
        filter.evaluate_line(self.tokenizer.tokens(line)).keep
    }

    /// Filters a text buffer, yielding the kept lines in order.
    pub fn filter_text<'a>(&'a self, text: &'a [u8]) -> KeptLines<'a> {
        KeptLines {
            pipeline: self,
            filter: HashFilter::new(&self.compiled),
            lines: text.split(|b| *b == b'\n'),
        }
    }

    /// Tags every line of a text buffer with the index of the first
    /// intersection set it satisfies, or `None` — the "tagging each log
    /// line with template IDs" capability the paper lists as future work
    /// (§8), which falls out of the bitmap datapath for free: each
    /// intersection set of a compiled multi-template query corresponds to
    /// one template.
    pub fn tag_text<'a>(&'a self, text: &'a [u8]) -> TaggedLines<'a> {
        fn is_newline(b: &u8) -> bool {
            *b == b'\n'
        }
        TaggedLines {
            pipeline: self,
            filter: HashFilter::new(&self.compiled),
            lines: text.split(is_newline as fn(&u8) -> bool),
        }
    }

    /// Filters a text buffer and collects statistics in one pass.
    pub fn filter_text_with_stats<'a>(&self, text: &'a [u8]) -> (Vec<&'a [u8]>, FilterStats) {
        let mut filter = HashFilter::new(&self.compiled);
        let mut ranges = Vec::new();
        let stats = self.filter_text_with_stats_into(text, &mut filter, &mut ranges);
        let kept = ranges.into_iter().map(|r| &text[r]).collect();
        (kept, stats)
    }

    /// The allocation-free core of [`FilterPipeline::filter_text_with_stats`]:
    /// filters `text` through a caller-owned `filter` (which must be bound to
    /// this pipeline's compiled query) into a caller-owned vector of kept
    /// byte ranges. Both are cleared and reused, so the steady-state page
    /// loop performs no heap allocation here.
    pub fn filter_text_with_stats_into(
        &self,
        text: &[u8],
        filter: &mut HashFilter<'_>,
        kept: &mut Vec<std::ops::Range<usize>>,
    ) -> FilterStats {
        kept.clear();
        filter.reset();
        let mut stats = FilterStats::default();
        let mut offset = 0usize;
        for line in text.split(|b| *b == b'\n') {
            let line_start = offset;
            offset += line.len() + 1;
            if line.is_empty() {
                continue;
            }
            stats.lines_in += 1;
            stats.bytes_in += line.len() as u64 + 1;
            let before = filter.tokens_processed();
            let verdict = filter.evaluate_line(self.tokenizer.tokens(line));
            stats.tokens += filter.tokens_processed() - before;
            if verdict.keep {
                stats.lines_kept += 1;
                kept.push(line_start..line_start + line.len());
            }
        }
        stats
    }
}

/// Iterator over lines kept by [`FilterPipeline::filter_text`].
#[derive(Debug)]
pub struct KeptLines<'a> {
    pipeline: &'a FilterPipeline,
    filter: HashFilter<'a>,
    lines: std::slice::Split<'a, u8, fn(&u8) -> bool>,
}

impl<'a> Iterator for KeptLines<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<Self::Item> {
        for line in self.lines.by_ref() {
            if line.is_empty() {
                continue;
            }
            let verdict = self
                .filter
                .evaluate_line(self.pipeline.tokenizer.tokens(line));
            if verdict.keep {
                return Some(line);
            }
        }
        None
    }
}

/// Iterator over `(line, matched set)` pairs from
/// [`FilterPipeline::tag_text`].
#[derive(Debug)]
pub struct TaggedLines<'a> {
    pipeline: &'a FilterPipeline,
    filter: HashFilter<'a>,
    lines: std::slice::Split<'a, u8, fn(&u8) -> bool>,
}

impl<'a> Iterator for TaggedLines<'a> {
    type Item = (&'a [u8], Option<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        for line in self.lines.by_ref() {
            if line.is_empty() {
                continue;
            }
            let verdict = self
                .filter
                .evaluate_line(self.pipeline.tokenizer.tokens(line));
            return Some((line, verdict.matched_set));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::parse;

    const TEXT: &[u8] = b"RAS KERNEL INFO instruction cache parity error corrected\n\
RAS KERNEL FATAL data storage interrupt\n\
RAS APP FATAL ciod: Error loading job\n\
pbs_mom: job 1234 started on node-17\n\
RAS KERNEL INFO generating core.2275\n";

    #[test]
    fn pipeline_is_shareable_across_scan_workers() {
        // The parallel query datapath hands one compiled pipeline to N
        // scoped worker threads by `&` and clones it for owned replicas;
        // this pins down the auto-traits that design depends on.
        fn assert_worker_safe<T: Send + Sync + Clone>() {}
        assert_worker_safe::<FilterPipeline>();
        assert_worker_safe::<FilterStats>();
    }

    #[test]
    fn filter_text_keeps_matching_lines_in_order() {
        let q = parse("RAS AND KERNEL AND INFO").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let kept: Vec<&[u8]> = p.filter_text(TEXT).collect();
        assert_eq!(kept.len(), 2);
        assert!(kept[0].ends_with(b"corrected"));
        assert!(kept[1].ends_with(b"core.2275"));
    }

    #[test]
    fn template2_style_query_with_negation() {
        // Template 2 of Figure 1: RAS, KERNEL, INFO but not FATAL.
        let q = parse("RAS AND KERNEL AND NOT FATAL").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let (kept, stats) = p.filter_text_with_stats(TEXT);
        assert_eq!(kept.len(), 2);
        assert_eq!(stats.lines_in, 5);
        assert_eq!(stats.lines_kept, 2);
        assert!(stats.tokens > 0);
        assert_eq!(stats.bytes_in, TEXT.len() as u64);
    }

    #[test]
    fn concurrent_queries_via_union() {
        let q = parse("pbs_mom: OR (ciod: AND FATAL)").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let kept: Vec<&[u8]> = p.filter_text(TEXT).collect();
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn matches_line_is_consistent_with_filter_text() {
        let q = parse("FATAL").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let via_iter: Vec<&[u8]> = p.filter_text(TEXT).collect();
        let via_single: Vec<&[u8]> = TEXT
            .split(|b| *b == b'\n')
            .filter(|l| !l.is_empty() && p.matches_line(l))
            .collect();
        assert_eq!(via_iter, via_single);
    }

    #[test]
    fn agrees_with_reference_on_random_queries() {
        // Cross-validate the hardware model against the reference evaluator
        // on every line/query combination.
        let queries = [
            "RAS",
            "RAS AND NOT FATAL",
            "NOT RAS",
            "(KERNEL AND INFO) OR (APP AND FATAL)",
            "pbs_mom: AND NOT ciod:",
            "NOT KERNEL AND NOT pbs_mom:",
        ];
        for qs in queries {
            let q = parse(qs).unwrap();
            let p = FilterPipeline::compile(&q).unwrap();
            for line in TEXT.split(|b| *b == b'\n').filter(|l| !l.is_empty()) {
                let line_str = std::str::from_utf8(line).unwrap();
                assert_eq!(
                    p.matches_line(line),
                    q.matches_line(line_str),
                    "divergence on query {qs:?} line {line_str:?}"
                );
            }
        }
    }

    #[test]
    fn stats_into_reuses_filter_and_ranges_across_calls() {
        let q = parse("RAS AND KERNEL AND NOT FATAL").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let mut filter = HashFilter::new(p.compiled());
        let mut ranges = Vec::new();
        for _ in 0..3 {
            let stats = p.filter_text_with_stats_into(TEXT, &mut filter, &mut ranges);
            let via_ranges: Vec<&[u8]> = ranges.iter().map(|r| &TEXT[r.clone()]).collect();
            let (kept, one_shot_stats) = p.filter_text_with_stats(TEXT);
            assert_eq!(via_ranges, kept);
            assert_eq!(
                stats, one_shot_stats,
                "per-call stats must match the one-shot path"
            );
        }
    }

    #[test]
    fn empty_text_yields_nothing() {
        let q = parse("x").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        assert_eq!(p.filter_text(b"").count(), 0);
    }

    #[test]
    fn tag_text_assigns_set_indices() {
        // Two "templates" joined as one query: set 0 = INFO lines,
        // set 1 = pbs_mom lines.
        let q = parse("(RAS AND INFO) OR pbs_mom:").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let tags: Vec<Option<usize>> = p.tag_text(TEXT).map(|(_, t)| t).collect();
        assert_eq!(tags, vec![Some(0), None, None, Some(1), Some(0)]);
    }

    #[test]
    fn tag_text_visits_every_line() {
        let q = parse("zzz-no-match").unwrap();
        let p = FilterPipeline::compile(&q).unwrap();
        let tagged: Vec<_> = p.tag_text(TEXT).collect();
        assert_eq!(tagged.len(), 5);
        assert!(tagged.iter().all(|(_, t)| t.is_none()));
    }
}
