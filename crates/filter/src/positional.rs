//! Positional (prefix-tree) queries — the paper's §4.3 extension: "to
//! support prefix trees, a small field is added to the hash table entry
//! specifying the column each token should appear at, and [the] tokenizer
//! modified to also emit an increasing column counter per token. This does
//! not change the performance datapath at all."
//!
//! A positional query is still a union of intersection sets, but each term
//! may carry an expected zero-based column. The natural source of such
//! queries is a prefix-tree template's column pattern
//! (`[Some("kernel:"), None, Some("at"), ...]`).

use crate::compile::{CompiledQuery, FilterParams};
use crate::error::QueryCompileError;
use crate::table::CuckooTable;
use crate::Bitmap;

/// One positional term: token, optional expected column, optional negation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionalTerm {
    token: String,
    column: Option<u32>,
    negated: bool,
}

impl PositionalTerm {
    /// A token required to appear at `column`.
    pub fn at(token: impl Into<String>, column: u32) -> Self {
        PositionalTerm {
            token: token.into(),
            column: Some(column),
            negated: false,
        }
    }

    /// A token required to appear anywhere in the line.
    pub fn anywhere(token: impl Into<String>) -> Self {
        PositionalTerm {
            token: token.into(),
            column: None,
            negated: false,
        }
    }

    /// A token that must not appear at `column` (or anywhere when `column`
    /// is `None`).
    pub fn negative(token: impl Into<String>, column: Option<u32>) -> Self {
        PositionalTerm {
            token: token.into(),
            column,
            negated: true,
        }
    }

    /// The token text.
    pub fn token(&self) -> &str {
        &self.token
    }

    /// The expected column, if constrained.
    pub fn column(&self) -> Option<u32> {
        self.column
    }

    /// Whether the term is negated.
    pub fn is_negated(&self) -> bool {
        self.negated
    }
}

/// A union of intersection sets of positional terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionalQuery {
    sets: Vec<Vec<PositionalTerm>>,
}

impl PositionalQuery {
    /// Builds a query from intersection sets.
    ///
    /// # Errors
    ///
    /// Returns [`QueryCompileError::TooManySets`]-style validation lazily at
    /// compile time; construction only rejects empty shapes.
    pub fn new(sets: Vec<Vec<PositionalTerm>>) -> Result<Self, PositionalFormError> {
        if sets.is_empty() {
            return Err(PositionalFormError::EmptyQuery);
        }
        if sets.iter().any(Vec::is_empty) {
            return Err(PositionalFormError::EmptySet);
        }
        Ok(PositionalQuery { sets })
    }

    /// Builds a single-set query from a prefix-tree template's column
    /// pattern: each fixed column becomes a column-constrained term,
    /// wildcards are skipped.
    ///
    /// Returns `None` when the pattern is all wildcards (nothing to match).
    pub fn from_columns(columns: &[Option<String>]) -> Option<Self> {
        let terms: Vec<PositionalTerm> = columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref()
                    .map(|tok| PositionalTerm::at(tok.clone(), i as u32))
            })
            .collect();
        if terms.is_empty() {
            None
        } else {
            Some(PositionalQuery { sets: vec![terms] })
        }
    }

    /// The intersection sets.
    pub fn sets(&self) -> &[Vec<PositionalTerm>] {
        &self.sets
    }

    /// Joins two positional queries with `OR`.
    #[must_use]
    pub fn or(mut self, other: PositionalQuery) -> PositionalQuery {
        self.sets.extend(other.sets);
        self
    }

    /// Reference evaluator over a whitespace-tokenized line.
    pub fn matches_line(&self, line: &str) -> bool {
        let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
        self.sets.iter().any(|set| {
            set.iter().all(|t| {
                let present = match t.column {
                    Some(c) => tokens.get(c as usize) == Some(&t.token.as_str()),
                    None => tokens.contains(&t.token.as_str()),
                };
                present != t.negated
            })
        })
    }
}

/// Structural error building a [`PositionalQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionalFormError {
    /// No intersection sets.
    EmptyQuery,
    /// An intersection set had no terms.
    EmptySet,
}

impl std::fmt::Display for PositionalFormError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PositionalFormError::EmptyQuery => write!(f, "positional query has no sets"),
            PositionalFormError::EmptySet => write!(f, "positional set has no terms"),
        }
    }
}

impl std::error::Error for PositionalFormError {}

impl CompiledQuery {
    /// Compiles a positional query onto the filter. Identical datapath to
    /// [`CompiledQuery::compile`]; entries additionally carry their
    /// expected column.
    ///
    /// # Errors
    ///
    /// Everything [`CompiledQuery::compile`] can return, plus
    /// [`QueryCompileError::ColumnConflict`] when one token is required at
    /// two different columns.
    pub fn compile_positional(
        query: &PositionalQuery,
        params: FilterParams,
    ) -> Result<Self, QueryCompileError> {
        if query.sets().len() > params.flag_pairs {
            return Err(QueryCompileError::TooManySets {
                got: query.sets().len(),
                max: params.flag_pairs,
            });
        }
        let distinct: std::collections::HashSet<&str> = query
            .sets()
            .iter()
            .flat_map(|s| s.iter().map(PositionalTerm::token))
            .collect();
        let max_tokens = (params.rows as f64 * params.max_load) as usize;
        if distinct.len() > max_tokens {
            return Err(QueryCompileError::TooManyTokens {
                got: distinct.len(),
                max: max_tokens,
            });
        }

        let mut table = CuckooTable::new(params.rows, params.word_bytes);
        for (i, set) in query.sets().iter().enumerate() {
            for term in set {
                table.insert_full(term.token().as_bytes(), i, term.is_negated(), term.column())?;
            }
        }
        let mut expected = vec![Bitmap::new(params.rows); query.sets().len()];
        for (i, set) in query.sets().iter().enumerate() {
            for term in set.iter().filter(|t| !t.is_negated()) {
                let (row, _) = table
                    .lookup(term.token().as_bytes())
                    .expect("inserted token must be present");
                expected[i].set(row);
            }
        }
        Ok(CompiledQuery::from_parts(table, expected, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HashFilter;

    fn eval(cq: &CompiledQuery, line: &str) -> bool {
        let mut f = HashFilter::new(cq);
        f.evaluate_line(line.split_ascii_whitespace().map(str::as_bytes))
            .keep
    }

    #[test]
    fn column_constrained_term_matches_only_at_its_column() {
        let q = PositionalQuery::new(vec![vec![PositionalTerm::at("kernel:", 0)]]).unwrap();
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        assert!(eval(&cq, "kernel: oops happened"));
        assert!(!eval(&cq, "daemon kernel: oops"));
    }

    #[test]
    fn from_columns_skips_wildcards() {
        let cols = vec![
            Some("sshd:".to_string()),
            None,
            Some("from".to_string()),
            None,
        ];
        let q = PositionalQuery::from_columns(&cols).unwrap();
        assert_eq!(q.sets()[0].len(), 2);
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        assert!(eval(&cq, "sshd: login from host-3"));
        assert!(!eval(&cq, "sshd: from login host-3"), "column mismatch");
        assert!(PositionalQuery::from_columns(&[None, None]).is_none());
    }

    #[test]
    fn anywhere_terms_mix_with_positional() {
        let q = PositionalQuery::new(vec![vec![
            PositionalTerm::at("pbs_mom:", 0),
            PositionalTerm::anywhere("terminated"),
        ]])
        .unwrap();
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        assert!(eval(&cq, "pbs_mom: task 3 terminated"));
        assert!(!eval(&cq, "pbs_mom: task 3 started"));
        assert!(!eval(&cq, "svc pbs_mom: terminated"));
    }

    #[test]
    fn negated_positional_term() {
        let q = PositionalQuery::new(vec![vec![
            PositionalTerm::anywhere("job"),
            PositionalTerm::negative("FAILED", Some(2)),
        ]])
        .unwrap();
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        assert!(eval(&cq, "job 17 ok"));
        assert!(!eval(&cq, "job 17 FAILED"));
        // FAILED at a different column does not poison the set.
        assert!(eval(&cq, "job FAILED retried"));
    }

    #[test]
    fn column_conflict_is_a_compile_error() {
        let q = PositionalQuery::new(vec![
            vec![PositionalTerm::at("x", 0)],
            vec![PositionalTerm::at("x", 3)],
        ])
        .unwrap();
        match CompiledQuery::compile_positional(&q, FilterParams::default()) {
            Err(QueryCompileError::ColumnConflict { token }) => assert_eq!(token, "x"),
            other => panic!("expected ColumnConflict, got {other:?}"),
        }
    }

    #[test]
    fn union_of_positional_sets() {
        let a = PositionalQuery::new(vec![vec![PositionalTerm::at("alpha", 0)]]).unwrap();
        let b = PositionalQuery::new(vec![vec![PositionalTerm::at("beta", 1)]]).unwrap();
        let q = a.or(b);
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        assert!(eval(&cq, "alpha anything"));
        assert!(eval(&cq, "x beta"));
        assert!(!eval(&cq, "beta x"));
    }

    #[test]
    fn reference_evaluator_agrees_with_hardware_model() {
        let q = PositionalQuery::new(vec![
            vec![
                PositionalTerm::at("svc", 0),
                PositionalTerm::anywhere("ok"),
                PositionalTerm::negative("test", None),
            ],
            vec![PositionalTerm::at("warn", 1)],
        ])
        .unwrap();
        let cq = CompiledQuery::compile_positional(&q, FilterParams::default()).unwrap();
        for line in [
            "svc up ok",
            "svc ok",
            "svc ok test",
            "node warn thing",
            "warn node",
            "svc down",
            "",
        ] {
            assert_eq!(eval(&cq, line), q.matches_line(line), "line {line:?}");
        }
    }

    #[test]
    fn empty_shapes_rejected() {
        assert_eq!(
            PositionalQuery::new(vec![]),
            Err(PositionalFormError::EmptyQuery)
        );
        assert_eq!(
            PositionalQuery::new(vec![vec![]]),
            Err(PositionalFormError::EmptySet)
        );
    }
}
