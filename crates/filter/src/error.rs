use std::error::Error;
use std::fmt;

/// Error compiling a query onto the hardware filter.
///
/// The paper notes that queries whose cuckoo placement fails "cannot be
/// offloaded to our accelerator and must fall back to conventional software
/// processing" — callers should treat these errors as a fallback signal, not
/// a fatal condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryCompileError {
    /// The query has more intersection sets than the table has flag pairs
    /// (prototype: 8).
    TooManySets {
        /// Sets in the query.
        got: usize,
        /// Flag pairs available.
        max: usize,
    },
    /// The query mentions more distinct tokens than the configured load
    /// limit allows (cuckoo hashing is reliable below ~0.5 load).
    TooManyTokens {
        /// Distinct tokens in the query.
        got: usize,
        /// Maximum insertable under the load limit.
        max: usize,
    },
    /// Cuckoo insertion entered an eviction loop; placement failed.
    PlacementFailed {
        /// The token whose insertion could not be placed.
        token: String,
    },
    /// A token exceeds the overflow table capacity.
    TokenTooLong {
        /// The oversized token (possibly truncated for display).
        token: String,
        /// Maximum representable token length in bytes.
        max_bytes: usize,
    },
    /// A positional query requires the same token at two different columns;
    /// the hash entry's single column field cannot encode that (§4.3).
    ColumnConflict {
        /// The token with conflicting column constraints.
        token: String,
    },
}

impl fmt::Display for QueryCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryCompileError::TooManySets { got, max } => {
                write!(
                    f,
                    "query has {got} intersection sets but the filter supports {max}"
                )
            }
            QueryCompileError::TooManyTokens { got, max } => {
                write!(
                    f,
                    "query has {got} distinct tokens but the filter supports {max}"
                )
            }
            QueryCompileError::PlacementFailed { token } => {
                write!(f, "cuckoo placement failed while inserting token {token:?}")
            }
            QueryCompileError::TokenTooLong { token, max_bytes } => {
                write!(
                    f,
                    "token {token:?} exceeds the maximum of {max_bytes} bytes"
                )
            }
            QueryCompileError::ColumnConflict { token } => {
                write!(f, "token {token:?} is constrained to two different columns")
            }
        }
    }
}

impl Error for QueryCompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = QueryCompileError::TooManySets { got: 9, max: 8 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('8'));
        let e = QueryCompileError::PlacementFailed {
            token: "abc".into(),
        };
        assert!(e.to_string().contains("abc"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + Error>() {}
        check::<QueryCompileError>();
    }
}
