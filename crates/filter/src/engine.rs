use mithrilog_tokenizer::TokenWord;

use crate::bitmap::Bitmap;
use crate::compile::CompiledQuery;

/// Verdict for one completed line (the boolean the hardware emits per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineVerdict {
    /// Whether the line satisfies the query and should be forwarded.
    pub keep: bool,
    /// Index of the first satisfied intersection set, if any — useful for
    /// template tagging (listed as future work in the paper, trivially
    /// available in this model).
    pub matched_set: Option<usize>,
}

/// The per-line evaluation state machine of one hash filter module
/// (paper §4.2.3, Figure 6).
///
/// Feed tokens (or datapath words) of one line, then call
/// [`HashFilter::end_of_line`] to obtain the verdict and reset for the next
/// line. Exactly mirrors the hardware: per-set bitmaps of table-row bits,
/// plus a per-set "negative term violated" poison flag.
///
/// # Example
///
/// ```
/// use mithrilog_filter::{CompiledQuery, FilterParams, HashFilter};
/// use mithrilog_query::parse;
///
/// let q = parse("ERROR AND NOT benign")?;
/// let cq = CompiledQuery::compile(&q, FilterParams::default())?;
/// let mut f = HashFilter::new(&cq);
/// f.accept_token(b"disk");
/// f.accept_token(b"ERROR");
/// assert!(f.end_of_line().keep);
/// f.accept_token(b"ERROR");
/// f.accept_token(b"benign");
/// assert!(!f.end_of_line().keep);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HashFilter<'a> {
    compiled: &'a CompiledQuery,
    bitmaps: Vec<Bitmap>,
    violated: u64,
    /// Assembly buffer for tokens arriving as multi-word fragments.
    pending: Vec<u8>,
    tokens_processed: u64,
    lookups: u64,
}

impl<'a> HashFilter<'a> {
    /// Creates a filter bound to a compiled query.
    pub fn new(compiled: &'a CompiledQuery) -> Self {
        let rows = compiled.params().rows;
        HashFilter {
            compiled,
            bitmaps: vec![Bitmap::new(rows); compiled.set_count()],
            violated: 0,
            pending: Vec::new(),
            tokens_processed: 0,
            lookups: 0,
        }
    }

    /// Processes one complete token of the current line, without a column
    /// constraint check. Correct for queries compiled from the standard
    /// (position-free) query language; positional queries must use
    /// [`HashFilter::accept_token_at`] or the word-stream interface.
    pub fn accept_token(&mut self, token: &[u8]) {
        self.accept_token_inner(token, None);
    }

    /// Processes one complete token observed at zero-based `column` of the
    /// current line (the prefix-tree extension, §4.3: the tokenizer "emits
    /// an increasing column counter per token").
    pub fn accept_token_at(&mut self, token: &[u8], column: u32) {
        self.accept_token_inner(token, Some(column));
    }

    fn accept_token_inner(&mut self, token: &[u8], column: Option<u32>) {
        if token.is_empty() {
            return;
        }
        self.tokens_processed += 1;
        self.lookups += 1;
        let Some((row, entry)) = self.compiled.table().lookup(token) else {
            // Token not mentioned by any query: ignore (paper: "this input
            // token can be ignored").
            return;
        };
        // Column-constrained entries only fire at their expected column.
        if let Some(expected) = entry.column() {
            if column != Some(expected) {
                return;
            }
        }
        let valid = entry.valid_mask();
        let negative = entry.negative_mask();
        // Sets where the token is a negative term: poison them.
        self.violated |= valid & negative;
        // Sets where the token is a positive term: record its row bit.
        let mut positive = valid & !negative;
        while positive != 0 {
            let set = positive.trailing_zeros() as usize;
            positive &= positive - 1;
            if set < self.bitmaps.len() {
                self.bitmaps[set].set(row);
            }
        }
    }

    /// Processes one datapath word from the tokenizer, assembling multi-word
    /// tokens; when the word carries `last_of_line`, returns the verdict.
    pub fn accept_word(&mut self, word: &TokenWord) -> Option<LineVerdict> {
        self.pending.extend_from_slice(word.token_bytes());
        if word.is_last_of_token() {
            let token = std::mem::take(&mut self.pending);
            self.accept_token_at(&token, word.column());
        }
        if word.is_last_of_line() {
            Some(self.end_of_line())
        } else {
            None
        }
    }

    /// Finishes the current line: computes the verdict and resets all
    /// per-line state.
    ///
    /// A set is satisfied iff it was not poisoned by a negative term and its
    /// bitmap exactly equals the compiled expected bitmap.
    pub fn end_of_line(&mut self) -> LineVerdict {
        debug_assert!(
            self.pending.is_empty(),
            "line ended mid-token; tokenizer must flag last_of_token"
        );
        let mut matched_set = None;
        for (i, bm) in self.bitmaps.iter().enumerate() {
            let poisoned = self.violated & (1 << i) != 0;
            if !poisoned && bm == self.compiled.expected(i) {
                matched_set = Some(i);
                break;
            }
        }
        for bm in &mut self.bitmaps {
            bm.clear();
        }
        self.violated = 0;
        self.pending.clear();
        LineVerdict {
            keep: matched_set.is_some(),
            matched_set,
        }
    }

    /// Convenience: evaluates a whole pre-tokenized line, supplying each
    /// token's column so positional queries evaluate correctly too.
    pub fn evaluate_line<'t, I>(&mut self, tokens: I) -> LineVerdict
    where
        I: IntoIterator<Item = &'t [u8]>,
    {
        for (col, t) in tokens.into_iter().enumerate() {
            self.accept_token_at(t, col as u32);
        }
        self.end_of_line()
    }

    /// Clears all per-line evaluation state (bitmaps, poison flags, the
    /// multi-word assembly buffer) without reallocating, so one filter can
    /// be reused across pages and scans instead of constructed per call.
    /// The cumulative [`HashFilter::tokens_processed`] and
    /// [`HashFilter::lookups`] counters are preserved; callers that need
    /// per-run stats take deltas around the run.
    pub fn reset(&mut self) {
        for bm in &mut self.bitmaps {
            bm.clear();
        }
        self.violated = 0;
        self.pending.clear();
    }

    /// Total tokens processed since construction.
    pub fn tokens_processed(&self) -> u64 {
        self.tokens_processed
    }

    /// Total hash table lookups performed (one per token in this model; the
    /// hardware probes both rows in parallel in one cycle).
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::FilterParams;
    use mithrilog_query::{parse, Query};
    use mithrilog_tokenizer::{Tokenizer, TokenizerConfig};

    fn compiled(q: &str) -> CompiledQuery {
        CompiledQuery::compile(&parse(q).unwrap(), FilterParams::default()).unwrap()
    }

    fn eval(cq: &CompiledQuery, line: &str) -> bool {
        let mut f = HashFilter::new(cq);
        f.evaluate_line(line.split_ascii_whitespace().map(str::as_bytes))
            .keep
    }

    #[test]
    fn positive_conjunction() {
        let cq = compiled("RAS AND KERNEL");
        assert!(eval(&cq, "RAS KERNEL INFO x y"));
        assert!(!eval(&cq, "RAS INFO"));
        assert!(!eval(&cq, "nothing"));
    }

    #[test]
    fn negative_term_poisons_set() {
        let cq = compiled("RAS AND NOT FATAL");
        assert!(eval(&cq, "RAS INFO"));
        assert!(!eval(&cq, "RAS FATAL"));
        assert!(!eval(&cq, "FATAL only"));
    }

    #[test]
    fn union_reports_first_matching_set() {
        let cq = compiled("alpha OR beta");
        let mut f = HashFilter::new(&cq);
        f.accept_token(b"beta");
        let v = f.end_of_line();
        assert!(v.keep);
        assert_eq!(v.matched_set, Some(1));
    }

    #[test]
    fn all_negative_set_matches_absence() {
        let cq = compiled("NOT FATAL AND NOT ERROR");
        assert!(eval(&cq, "healthy status line"));
        assert!(!eval(&cq, "an ERROR happened"));
    }

    #[test]
    fn repeated_tokens_do_not_break_exact_bitmap_match() {
        let cq = compiled("A AND B");
        assert!(eval(&cq, "A A B B A"));
    }

    #[test]
    fn state_resets_between_lines() {
        let cq = compiled("A AND B");
        let mut f = HashFilter::new(&cq);
        f.accept_token(b"A");
        assert!(!f.end_of_line().keep);
        // B from a previous line must not linger.
        f.accept_token(b"B");
        assert!(!f.end_of_line().keep);
        f.accept_token(b"A");
        f.accept_token(b"B");
        assert!(f.end_of_line().keep);
    }

    #[test]
    fn word_stream_interface_matches_token_interface() {
        let cq = compiled("supercalifragilisticexpialidocious AND short");
        let tok = Tokenizer::new(TokenizerConfig::default());
        let line = b"short supercalifragilisticexpialidocious tail";
        let mut f = HashFilter::new(&cq);
        let mut verdict = None;
        for w in tok.tokenize_line(line) {
            if let Some(v) = f.accept_word(&w) {
                verdict = Some(v);
            }
        }
        assert!(verdict.unwrap().keep);
    }

    #[test]
    fn agrees_with_reference_evaluator_on_eq1() {
        let q = parse("(B AND C AND NOT A) OR (F AND G AND NOT D AND NOT E)").unwrap();
        let cq = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        let lines = [
            "B C",
            "A B C",
            "F G",
            "F G E",
            "A F G",
            "B",
            "C F",
            "A B C F G",
            "D F G",
            "B C D E F G",
        ];
        for line in lines {
            assert_eq!(
                eval(&cq, line),
                q.matches_line(line),
                "divergence on {line:?}"
            );
        }
    }

    #[test]
    fn zero_set_query_rejects_everything() {
        use mithrilog_query::{IntersectionSet, Term};
        let q = Query::try_new(vec![
            IntersectionSet::of_tokens(["x"]).with(Term::negative("x"))
        ])
        .unwrap();
        let cq = CompiledQuery::compile(&q, FilterParams::default()).unwrap();
        assert!(!eval(&cq, "x"));
        assert!(!eval(&cq, "anything"));
    }

    #[test]
    fn counters_accumulate() {
        let cq = compiled("A");
        let mut f = HashFilter::new(&cq);
        f.evaluate_line(["a", "b", "c"].map(str::as_bytes));
        f.evaluate_line(["d"].map(str::as_bytes));
        assert_eq!(f.tokens_processed(), 4);
        assert_eq!(f.lookups(), 4);
    }
}
