//! The MithriLog token filtering engine (paper §4): a functional,
//! hardware-faithful model of the cuckoo-hash line filter.
//!
//! Queries in union-of-intersections form are *compiled* into a cuckoo hash
//! table whose entries carry per-intersection-set `(valid, negative)` flag
//! pairs, plus one expected bitmap per intersection set (paper Figures 5–6).
//! Filtering then proceeds line by line at a fixed cost per token:
//!
//! 1. each token is hashed with two hash functions and compared against at
//!    most two table rows (single-cycle Block-RAM lookups in hardware);
//! 2. a matching row's flag pairs update per-set state: a valid+negative
//!    flag poisons the set for this line, a valid+positive flag sets the
//!    row's bit in the set's bitmap;
//! 3. at end of line, the line is kept iff some set is unpoisoned and its
//!    bitmap exactly equals the compiled query bitmap.
//!
//! Tokens longer than the 16-byte datapath word spill into an *overflow
//! table* of contiguous word entries (paper Figure 5), which this model
//! reproduces exactly.
//!
//! # Example
//!
//! ```
//! use mithrilog_filter::FilterPipeline;
//! use mithrilog_query::parse;
//!
//! let query = parse(r#""FATAL" AND NOT "recovered""#)?;
//! let pipeline = FilterPipeline::compile(&query)?;
//! let text = b"RAS KERNEL FATAL data storage interrupt\n\
//!              RAS KERNEL FATAL recovered after retry\n\
//!              RAS KERNEL INFO all ok\n";
//! let kept: Vec<&[u8]> = pipeline.filter_text(text).collect();
//! assert_eq!(kept.len(), 1);
//! assert!(kept[0].starts_with(b"RAS KERNEL FATAL data"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod compile;
mod engine;
mod error;
mod hash;
mod pipeline;
mod positional;
mod table;

pub use bitmap::Bitmap;
pub use compile::{CompiledQuery, FilterParams};
pub use engine::{HashFilter, LineVerdict};
pub use error::QueryCompileError;
pub use hash::TokenHasher;
pub use pipeline::{FilterPipeline, FilterStats, KeptLines, TaggedLines};
pub use positional::{PositionalFormError, PositionalQuery, PositionalTerm};
pub use table::{CuckooTable, Slot, TableEntry};
