/// The two hash functions of the cuckoo filter (paper §4.2.1).
///
/// Hardware computes both hashes combinationally over the token bytes; we
/// model them with two independently-seeded FNV-1a–style mixes reduced to a
/// table row index. Both functions must be deterministic and identical
/// between compile time (placement) and query time (lookup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenHasher {
    rows: usize,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const BASIS_1: u64 = 0xCBF2_9CE4_8422_2325;
// A second, unrelated offset basis gives an independent second function.
const BASIS_2: u64 = 0x9AE1_6A3B_2F90_404F;

fn fnv1a(basis: u64, bytes: &[u8]) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche so the low bits used for row selection depend on all
    // input bytes even for short tokens.
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

impl TokenHasher {
    /// Creates a hasher producing row indices in `0..rows`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "hash table must have at least one row");
        TokenHasher { rows }
    }

    /// Number of rows indices are reduced into.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// First hash function: token bytes → row index.
    #[inline]
    pub fn h1(&self, token: &[u8]) -> usize {
        (fnv1a(BASIS_1, token) % self.rows as u64) as usize
    }

    /// Second hash function: token bytes → row index.
    #[inline]
    pub fn h2(&self, token: &[u8]) -> usize {
        (fnv1a(BASIS_2, token) % self.rows as u64) as usize
    }

    /// Both candidate rows for a token, in probe order.
    #[inline]
    pub fn candidates(&self, token: &[u8]) -> [usize; 2] {
        [self.h1(token), self.h2(token)]
    }

    /// Given one occupied row of a token, returns the alternate row (used by
    /// cuckoo eviction). If both hashes collide on the same row, the
    /// alternate equals the current row.
    pub fn alternate(&self, token: &[u8], current: usize) -> usize {
        let [a, b] = self.candidates(token);
        if current == a {
            b
        } else {
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let h = TokenHasher::new(256);
        assert_eq!(h.h1(b"FATAL"), h.h1(b"FATAL"));
        assert_eq!(h.h2(b"FATAL"), h.h2(b"FATAL"));
    }

    #[test]
    fn hashes_are_independent() {
        let h = TokenHasher::new(256);
        // Over many tokens the two functions should disagree nearly always.
        let mut same = 0;
        for i in 0..1000 {
            let t = format!("token-{i}");
            if h.h1(t.as_bytes()) == h.h2(t.as_bytes()) {
                same += 1;
            }
        }
        // Expected collisions ≈ 1000/256 ≈ 4.
        assert!(same < 20, "too many h1==h2 coincidences: {same}");
    }

    #[test]
    fn rows_bound_respected() {
        let h = TokenHasher::new(7);
        for i in 0..500 {
            let t = format!("t{i}");
            assert!(h.h1(t.as_bytes()) < 7);
            assert!(h.h2(t.as_bytes()) < 7);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let h = TokenHasher::new(64);
        let mut counts = [0usize; 64];
        for i in 0..6400 {
            counts[h.h1(format!("w{i}").as_bytes())] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Mean is 100; loose bounds catch catastrophic skew only.
        assert!(max < 180, "max bucket {max}");
        assert!(min > 40, "min bucket {min}");
    }

    #[test]
    fn alternate_flips_between_candidates() {
        let h = TokenHasher::new(256);
        let t = b"pbs_mom:";
        let [a, b] = h.candidates(t);
        assert_eq!(h.alternate(t, a), b);
        assert_eq!(h.alternate(t, b), a);
    }

    #[test]
    fn single_byte_tokens_spread() {
        let h = TokenHasher::new(256);
        let rows: std::collections::HashSet<usize> = (0u8..=255).map(|b| h.h1(&[b])).collect();
        assert!(rows.len() > 150, "only {} distinct rows", rows.len());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        TokenHasher::new(0);
    }
}
