use crate::error::QueryCompileError;
use crate::hash::TokenHasher;

/// Maximum cuckoo evictions before declaring a placement loop.
///
/// Hash-table theory puts the expected eviction chain length at O(1) below
/// 0.5 load; 128 kicks is far beyond any non-looping chain on a 256-row
/// table.
const MAX_KICKS: usize = 128;

/// One row of the cuckoo hash table (paper Figure 5).
///
/// Stores the first datapath word of the token inline, an optional offset
/// into the overflow table for longer tokens, and one `(valid, negative)`
/// flag pair per intersection set, packed as two bitmasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// First `word_bytes` of the token, zero padded.
    prefix: Vec<u8>,
    /// Total token length in bytes.
    total_len: usize,
    /// Offset of the first overflow word, if `total_len > word_bytes`.
    overflow: Option<usize>,
    /// Bit `i` set ⇒ this token participates in intersection set `i`.
    valid_mask: u64,
    /// Bit `i` set ⇒ the token is negated (`¬`) in intersection set `i`.
    negative_mask: u64,
    /// Prefix-tree extension (paper §4.3): if set, the token only counts
    /// when it appears at exactly this zero-based column of the line.
    column: Option<u32>,
}

impl TableEntry {
    /// The inline token prefix (zero padded to the datapath width).
    pub fn prefix(&self) -> &[u8] {
        &self.prefix
    }

    /// Full token length in bytes.
    pub fn total_len(&self) -> usize {
        self.total_len
    }

    /// Offset into the overflow table, if the token spills.
    pub fn overflow_offset(&self) -> Option<usize> {
        self.overflow
    }

    /// Per-set participation mask.
    pub fn valid_mask(&self) -> u64 {
        self.valid_mask
    }

    /// Per-set negation mask (subset of [`TableEntry::valid_mask`]).
    pub fn negative_mask(&self) -> u64 {
        self.negative_mask
    }

    /// Expected column for prefix-tree templates (`None` = any column).
    pub fn column(&self) -> Option<u32> {
        self.column
    }
}

/// One word of the overflow table, flagged if it terminates its token.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OverflowWord {
    bytes: Vec<u8>,
    len: usize,
    last: bool,
}

/// A slot of the table: empty or holding an entry.
pub type Slot = Option<TableEntry>;

/// The cuckoo hash table encoding one or more queries (paper §4.2.2).
///
/// # Example
///
/// ```
/// use mithrilog_filter::CuckooTable;
///
/// let mut t = CuckooTable::new(256, 16);
/// t.insert(b"FATAL", 0, false)?;
/// t.insert(b"recovered", 0, true)?;
/// let hit = t.lookup(b"FATAL").expect("present");
/// assert_eq!(hit.1.valid_mask(), 0b1);
/// assert_eq!(hit.1.negative_mask(), 0b0);
/// assert!(t.lookup(b"absent").is_none());
/// # Ok::<(), mithrilog_filter::QueryCompileError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CuckooTable {
    slots: Vec<Slot>,
    overflow: Vec<OverflowWord>,
    hasher: TokenHasher,
    word_bytes: usize,
    occupied: usize,
}

impl CuckooTable {
    /// Creates an empty table with `rows` slots and `word_bytes` wide words.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `word_bytes` is zero.
    pub fn new(rows: usize, word_bytes: usize) -> Self {
        assert!(word_bytes > 0, "word width must be positive");
        CuckooTable {
            slots: vec![None; rows],
            overflow: Vec::new(),
            hasher: TokenHasher::new(rows),
            word_bytes,
            occupied: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied rows.
    pub fn occupied(&self) -> usize {
        self.occupied
    }

    /// Load factor (occupied / rows).
    pub fn load(&self) -> f64 {
        self.occupied as f64 / self.slots.len() as f64
    }

    /// Number of words in the overflow table.
    pub fn overflow_words(&self) -> usize {
        self.overflow.len()
    }

    /// Datapath word width in bytes.
    pub fn word_bytes(&self) -> usize {
        self.word_bytes
    }

    /// The hasher used for placement and lookup.
    pub fn hasher(&self) -> &TokenHasher {
        &self.hasher
    }

    /// Returns the slot contents of `row` (for the engine's bitmap logic).
    pub fn slot(&self, row: usize) -> &Slot {
        &self.slots[row]
    }

    fn entry_matches(&self, entry: &TableEntry, token: &[u8]) -> bool {
        if entry.total_len != token.len() {
            return false;
        }
        let head = token.len().min(self.word_bytes);
        if entry.prefix[..head] != token[..head] {
            return false;
        }
        // The remainder must match the overflow chain word by word.
        if let Some(mut off) = entry.overflow {
            let mut pos = self.word_bytes;
            loop {
                let w = &self.overflow[off];
                if token[pos..pos + w.len] != w.bytes[..w.len] {
                    return false;
                }
                pos += w.len;
                if w.last {
                    break;
                }
                off += 1;
            }
            debug_assert_eq!(pos, token.len());
        }
        true
    }

    /// Reconstructs the full token bytes of an entry (needed when an entry
    /// is evicted and must be re-hashed to its alternate row).
    fn entry_token(&self, entry: &TableEntry) -> Vec<u8> {
        let mut out = entry.prefix[..entry.total_len.min(self.word_bytes)].to_vec();
        if let Some(mut off) = entry.overflow {
            loop {
                let w = &self.overflow[off];
                out.extend_from_slice(&w.bytes[..w.len]);
                if w.last {
                    break;
                }
                off += 1;
            }
        }
        out
    }

    /// Looks up a token, returning its row and entry if present.
    pub fn lookup(&self, token: &[u8]) -> Option<(usize, &TableEntry)> {
        for row in self.hasher.candidates(token) {
            if let Some(entry) = &self.slots[row] {
                if self.entry_matches(entry, token) {
                    return Some((row, entry));
                }
            }
        }
        None
    }

    fn build_entry(&mut self, token: &[u8]) -> TableEntry {
        let mut prefix = vec![0u8; self.word_bytes];
        let head = token.len().min(self.word_bytes);
        prefix[..head].copy_from_slice(&token[..head]);
        let overflow = if token.len() > self.word_bytes {
            let start = self.overflow.len();
            let chunks: Vec<&[u8]> = token[self.word_bytes..].chunks(self.word_bytes).collect();
            let n = chunks.len();
            for (i, chunk) in chunks.into_iter().enumerate() {
                let mut bytes = vec![0u8; self.word_bytes];
                bytes[..chunk.len()].copy_from_slice(chunk);
                self.overflow.push(OverflowWord {
                    bytes,
                    len: chunk.len(),
                    last: i == n - 1,
                });
            }
            Some(start)
        } else {
            None
        };
        TableEntry {
            prefix,
            total_len: token.len(),
            overflow,
            valid_mask: 0,
            negative_mask: 0,
            column: None,
        }
    }

    /// Inserts a token with its flags for one intersection set, merging with
    /// an existing entry for the same token if present.
    ///
    /// # Errors
    ///
    /// Returns [`QueryCompileError::PlacementFailed`] if cuckoo eviction
    /// loops — the query must then fall back to software evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `set >= 64` (mask width) or `token` is empty.
    pub fn insert(
        &mut self,
        token: &[u8],
        set: usize,
        negated: bool,
    ) -> Result<(), QueryCompileError> {
        self.insert_full(token, set, negated, None)
    }

    /// Like [`CuckooTable::insert`] but with an optional expected column —
    /// the prefix-tree template extension (§4.3). A token can only carry
    /// one column constraint per table; conflicting constraints are a
    /// compile error (fall back to software).
    ///
    /// # Errors
    ///
    /// [`QueryCompileError::PlacementFailed`] on a cuckoo loop;
    /// [`QueryCompileError::ColumnConflict`] if the token already has a
    /// different column constraint.
    ///
    /// # Panics
    ///
    /// Panics if `set >= 64` or `token` is empty.
    pub fn insert_full(
        &mut self,
        token: &[u8],
        set: usize,
        negated: bool,
        column: Option<u32>,
    ) -> Result<(), QueryCompileError> {
        assert!(!token.is_empty(), "cannot insert an empty token");
        assert!(set < 64, "set index {set} exceeds the 64-set mask width");
        // Merge into an existing entry if the token is already placed.
        if let Some((row, _)) = self.lookup(token) {
            let entry = self.slots[row].as_mut().expect("hit row is occupied");
            if entry.column != column {
                return Err(QueryCompileError::ColumnConflict {
                    token: String::from_utf8_lossy(token).into_owned(),
                });
            }
            entry.valid_mask |= 1 << set;
            if negated {
                entry.negative_mask |= 1 << set;
            }
            entry.column = column;
            return Ok(());
        }

        let mut entry = self.build_entry(token);
        entry.valid_mask = 1 << set;
        entry.column = column;
        if negated {
            entry.negative_mask = 1 << set;
        }

        // Standard cuckoo insertion with bounded eviction chain.
        let mut row = self.hasher.h1(token);
        if self.slots[row].is_some() {
            let alt = self.hasher.h2(token);
            if self.slots[alt].is_none() {
                row = alt;
            }
        }
        let mut carried = entry;
        for _ in 0..MAX_KICKS {
            match self.slots[row].take() {
                None => {
                    self.slots[row] = Some(carried);
                    self.occupied += 1;
                    return Ok(());
                }
                Some(victim) => {
                    self.slots[row] = Some(carried);
                    let victim_token = self.entry_token(&victim);
                    row = self.hasher.alternate(&victim_token, row);
                    carried = victim;
                }
            }
        }
        Err(QueryCompileError::PlacementFailed {
            token: String::from_utf8_lossy(&self.entry_token(&carried)).into_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_lookup_short_token() {
        let mut t = CuckooTable::new(256, 16);
        t.insert(b"KERNEL", 0, false).unwrap();
        let (row, e) = t.lookup(b"KERNEL").unwrap();
        assert!(row < 256);
        assert_eq!(e.total_len(), 6);
        assert_eq!(e.valid_mask(), 1);
        assert_eq!(e.negative_mask(), 0);
        assert_eq!(t.occupied(), 1);
        assert_eq!(t.overflow_words(), 0);
    }

    #[test]
    fn lookup_misses_absent_and_prefix_confusable() {
        let mut t = CuckooTable::new(256, 16);
        t.insert(b"KERNEL", 0, false).unwrap();
        assert!(t.lookup(b"KERNELS").is_none());
        assert!(t.lookup(b"KERNE").is_none());
        assert!(t.lookup(b"other").is_none());
    }

    #[test]
    fn long_token_uses_overflow_table() {
        let mut t = CuckooTable::new(256, 16);
        let long = b"a-very-long-token-spanning-multiple-datapath-words";
        assert!(long.len() > 32);
        t.insert(long, 2, true).unwrap();
        assert!(t.overflow_words() >= 2);
        let (_, e) = t.lookup(long).unwrap();
        assert_eq!(e.total_len(), long.len());
        assert!(e.overflow_offset().is_some());
        assert_eq!(e.valid_mask(), 0b100);
        assert_eq!(e.negative_mask(), 0b100);
    }

    #[test]
    fn long_tokens_differing_only_in_tail_are_distinct() {
        let mut t = CuckooTable::new(256, 16);
        let a = b"prefix-shared-0123456789-tail-AAAA";
        let b = b"prefix-shared-0123456789-tail-BBBB";
        t.insert(a, 0, false).unwrap();
        t.insert(b, 1, false).unwrap();
        assert_eq!(t.lookup(a).unwrap().1.valid_mask(), 0b01);
        assert_eq!(t.lookup(b).unwrap().1.valid_mask(), 0b10);
    }

    #[test]
    fn same_token_in_multiple_sets_merges_flags() {
        let mut t = CuckooTable::new(256, 16);
        t.insert(b"RAS", 0, false).unwrap();
        t.insert(b"RAS", 3, true).unwrap();
        let (_, e) = t.lookup(b"RAS").unwrap();
        assert_eq!(e.valid_mask(), 0b1001);
        assert_eq!(e.negative_mask(), 0b1000);
        assert_eq!(t.occupied(), 1, "merge must not allocate a second row");
    }

    #[test]
    fn half_load_placement_succeeds() {
        // Cuckoo hashing succeeds with high probability at load ≤ 0.5; the
        // prototype over-provisions for exactly this reason.
        let mut t = CuckooTable::new(256, 16);
        for i in 0..128 {
            t.insert(
                format!("token-number-{i}").as_bytes(),
                (i % 8) as usize,
                i % 3 == 0,
            )
            .unwrap();
        }
        assert_eq!(t.occupied(), 128);
        assert!((t.load() - 0.5).abs() < 1e-9);
        for i in 0..128 {
            assert!(t.lookup(format!("token-number-{i}").as_bytes()).is_some());
        }
    }

    #[test]
    fn tiny_table_eventually_fails_placement() {
        let mut t = CuckooTable::new(4, 16);
        let mut failed = false;
        for i in 0..16 {
            if t.insert(format!("x{i}").as_bytes(), 0, false).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "16 inserts into 4 rows must fail placement");
    }

    #[test]
    fn eviction_preserves_all_entries() {
        // Fill to a level where evictions certainly occur, then verify every
        // token is still findable (eviction must relocate, not lose).
        let mut t = CuckooTable::new(64, 16);
        let mut inserted = Vec::new();
        for i in 0..30 {
            let tok = format!("evict-test-{i}");
            t.insert(tok.as_bytes(), 0, false).unwrap();
            inserted.push(tok);
        }
        for tok in &inserted {
            assert!(t.lookup(tok.as_bytes()).is_some(), "lost {tok}");
        }
    }

    #[test]
    fn eviction_relocates_overflow_tokens_correctly() {
        let mut t = CuckooTable::new(32, 8);
        let mut inserted = Vec::new();
        for i in 0..14 {
            let tok = format!("long-overflowing-token-{i:04}");
            t.insert(tok.as_bytes(), 0, false).unwrap();
            inserted.push(tok);
        }
        for tok in &inserted {
            let (_, e) = t.lookup(tok.as_bytes()).expect("present after evictions");
            assert_eq!(e.total_len(), tok.len());
        }
    }

    #[test]
    #[should_panic(expected = "empty token")]
    fn empty_token_panics() {
        CuckooTable::new(16, 16).insert(b"", 0, false).unwrap();
    }

    #[test]
    #[should_panic(expected = "mask width")]
    fn set_out_of_mask_panics() {
        CuckooTable::new(16, 16).insert(b"a", 64, false).unwrap();
    }
}
