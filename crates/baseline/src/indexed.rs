use std::collections::HashMap;

use mithrilog_query::Query;

use crate::table::LogTable;

/// The Splunk-style engine: an exact in-memory inverted index over tokens,
/// with **single-threaded** query execution ("each search query is handled
/// by a single thread", §7.5).
///
/// Positive terms are resolved from posting lists; negative terms cannot be
/// pruned by the index, so candidate lines must be fetched and verified —
/// and an intersection set with *only* negative terms forces a scan over
/// every line, which is exactly the workload class where the paper observes
/// Splunk falling behind by orders of magnitude.
#[derive(Debug)]
pub struct IndexedEngine {
    /// token → sorted line ids.
    postings: HashMap<String, Vec<u32>>,
}

impl IndexedEngine {
    /// Builds the inverted index over a table (the "ingest" phase).
    pub fn build(table: &LogTable) -> Self {
        let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
        for i in 0..table.len() {
            if let Ok(line) = std::str::from_utf8(table.line(i)) {
                let mut seen: Vec<&str> = Vec::new();
                for tok in line.split_ascii_whitespace() {
                    if !seen.contains(&tok) {
                        seen.push(tok);
                        postings.entry(tok.to_string()).or_default().push(i as u32);
                    }
                }
            }
        }
        IndexedEngine { postings }
    }

    /// Posting list of a token (empty if absent).
    pub fn postings(&self, token: &str) -> &[u32] {
        self.postings.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct indexed tokens.
    pub fn distinct_tokens(&self) -> usize {
        self.postings.len()
    }

    /// Executes a query single-threaded, returning matching line ids
    /// (sorted) plus the fetch-and-verify work performed — the cost driver
    /// distinguishing indexed from scanned queries, and the input to the
    /// Splunk cost model.
    pub fn execute(&self, table: &LogTable, query: &Query) -> IndexedRun {
        let mut result: Vec<u32> = Vec::new();
        let mut fetched = 0u64;
        let mut fetched_bytes = 0u64;
        for set in query.sets() {
            let positives: Vec<&str> = set.positive_terms().map(|t| t.token()).collect();
            let negatives: Vec<&str> = set.negative_terms().map(|t| t.token()).collect();

            let candidates: Vec<u32> = if positives.is_empty() {
                // Negative-only set: the index cannot help; scan everything.
                (0..table.len() as u32).collect()
            } else {
                let mut lists: Vec<&[u32]> = positives.iter().map(|t| self.postings(t)).collect();
                lists.sort_by_key(|l| l.len());
                let mut acc: Vec<u32> = lists[0].to_vec();
                for other in &lists[1..] {
                    acc = intersect(&acc, other);
                    if acc.is_empty() {
                        break;
                    }
                }
                acc
            };

            // Verify negatives (and token semantics) against the raw lines.
            for &i in &candidates {
                fetched += 1;
                let line = table.line(i as usize);
                fetched_bytes += line.len() as u64 + 1;
                if negatives.is_empty() && !positives.is_empty() {
                    // Postings are exact for token presence: no fetch
                    // verification needed beyond negatives; still counted as
                    // a fetch because Splunk materializes events.
                    result.push(i);
                } else if verify_line(line, &positives, &negatives) {
                    result.push(i);
                }
            }
        }
        result.sort_unstable();
        result.dedup();
        IndexedRun {
            lines: result,
            fetched_lines: fetched,
            fetched_bytes,
        }
    }

    /// Convenience: number of matching lines.
    pub fn count_matches(&self, table: &LogTable, query: &Query) -> u64 {
        self.execute(table, query).lines.len() as u64
    }
}

/// Output of one [`IndexedEngine::execute`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexedRun {
    /// Matching line ids, sorted and deduplicated.
    pub lines: Vec<u32>,
    /// Lines fetched and verified (cost driver).
    pub fetched_lines: u64,
    /// Bytes of line text fetched (including notional newlines).
    pub fetched_bytes: u64,
}

impl IndexedRun {
    /// Number of matching lines.
    pub fn match_count(&self) -> u64 {
        self.lines.len() as u64
    }
}

fn verify_line(line: &[u8], positives: &[&str], negatives: &[&str]) -> bool {
    let Ok(s) = std::str::from_utf8(line) else {
        return false;
    };
    let tokens: std::collections::HashSet<&str> = s.split_ascii_whitespace().collect();
    positives.iter().all(|p| tokens.contains(p)) && !negatives.iter().any(|n| tokens.contains(n))
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::parse;

    fn table() -> LogTable {
        LogTable::from_text(
            b"RAS KERNEL INFO cache parity error corrected\n\
              RAS KERNEL FATAL data storage interrupt\n\
              RAS APP FATAL ciod: Error loading program\n\
              pbs_mom: job 1234 started\n",
        )
    }

    #[test]
    fn postings_are_exact_token_lists() {
        let t = table();
        let e = IndexedEngine::build(&t);
        assert_eq!(e.postings("RAS"), &[0, 1, 2]);
        assert_eq!(e.postings("pbs_mom:"), &[3]);
        assert_eq!(e.postings("absent"), &[] as &[u32]);
        assert!(e.distinct_tokens() > 10);
    }

    #[test]
    fn positive_query_uses_index() {
        let t = table();
        let e = IndexedEngine::build(&t);
        let q = parse("KERNEL AND FATAL").unwrap();
        let run = e.execute(&t, &q);
        assert_eq!(run.lines, vec![1]);
        // Only the intersection candidates were fetched, not all lines.
        assert_eq!(run.fetched_lines, 1);
        assert!(run.fetched_bytes > 0);
    }

    #[test]
    fn negative_terms_require_verification_but_not_full_scan() {
        let t = table();
        let e = IndexedEngine::build(&t);
        let q = parse("FATAL AND NOT ciod:").unwrap();
        let run = e.execute(&t, &q);
        assert_eq!(run.lines, vec![1]);
        assert_eq!(run.fetched_lines, 2, "both FATAL candidates verified");
    }

    #[test]
    fn negative_only_query_scans_everything() {
        let t = table();
        let e = IndexedEngine::build(&t);
        let q = parse("NOT RAS").unwrap();
        let run = e.execute(&t, &q);
        assert_eq!(run.lines, vec![3]);
        assert_eq!(run.fetched_lines, 4, "negative-only forces a full fetch");
        // Full-fetch bytes equal the whole table (plus notional newlines).
        assert_eq!(run.fetched_bytes, t.bytes() as u64 + 4);
    }

    #[test]
    fn agrees_with_reference_evaluator() {
        let text: Vec<u8> = (0..2000)
            .map(|i| {
                format!(
                    "host-{} svc-{} {} code-{}\n",
                    i % 17,
                    i % 5,
                    if i % 11 == 0 { "ERROR" } else { "ok" },
                    i % 23
                )
            })
            .collect::<String>()
            .into_bytes();
        let t = LogTable::from_text(&text);
        let e = IndexedEngine::build(&t);
        for qs in [
            "ERROR",
            "ERROR AND host-3",
            "ERROR AND NOT svc-2",
            "NOT ok",
            "(host-1 AND svc-1) OR (host-2 AND NOT ERROR)",
        ] {
            let q = parse(qs).unwrap();
            let got = e.count_matches(&t, &q);
            let want = t
                .iter()
                .filter(|l| q.matches_line(std::str::from_utf8(l).unwrap()))
                .count() as u64;
            assert_eq!(got, want, "query {qs:?}");
        }
    }

    #[test]
    fn union_deduplicates_lines() {
        let t = table();
        let e = IndexedEngine::build(&t);
        let q = parse("RAS OR KERNEL").unwrap();
        assert_eq!(e.execute(&t, &q).lines, vec![0, 1, 2]);
    }

    #[test]
    fn empty_table() {
        let t = LogTable::from_text(b"");
        let e = IndexedEngine::build(&t);
        let q = parse("x").unwrap();
        assert_eq!(e.count_matches(&t, &q), 0);
    }
}
