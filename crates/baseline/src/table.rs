/// A log corpus stored as one flat buffer plus line offsets — the layout of
/// a single-VARCHAR-column table (paper §7.4.2: "we store all lines for
/// each dataset in a table with a single VARCHAR column").
#[derive(Debug, Clone)]
pub struct LogTable {
    text: Vec<u8>,
    /// Byte offset of the start of each line; a final sentinel holds
    /// `text.len()`.
    offsets: Vec<usize>,
}

impl LogTable {
    /// Builds a table from raw log text (lines split on `\n`, empty lines
    /// dropped).
    pub fn from_text(text: &[u8]) -> Self {
        let mut offsets = Vec::new();
        let mut flat = Vec::with_capacity(text.len());
        for line in text.split(|b| *b == b'\n') {
            if line.is_empty() {
                continue;
            }
            offsets.push(flat.len());
            flat.extend_from_slice(line);
        }
        offsets.push(flat.len());
        LogTable {
            text: flat,
            offsets,
        }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the table has no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes of line text (excluding newlines).
    pub fn bytes(&self) -> usize {
        self.text.len()
    }

    /// Returns line `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn line(&self, i: usize) -> &[u8] {
        &self.text[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Iterates over all lines.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.len()).map(move |i| self.line(i))
    }

    /// Splits the line range into `n` near-equal chunks for parallel scans.
    pub fn chunks(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let n = n.max(1);
        let len = self.len();
        let per = len.div_ceil(n).max(1);
        (0..len)
            .step_by(per)
            .map(|start| start..(start + per).min(len))
            .collect()
    }
}

/// A log table stored as LZ4-compressed blocks, decompressed on the scan
/// path — modeling the column-store compression that let MonetDB "overcome
/// the PCIe bottleneck" in the paper's comparison (§7.4.2): scans trade
/// storage bandwidth for extra CPU work per block.
#[derive(Debug, Clone)]
pub struct CompressedLogTable {
    blocks: Vec<Vec<u8>>,
    raw_bytes: usize,
    lines: usize,
}

impl CompressedLogTable {
    /// Compresses `text` into blocks of roughly `block_bytes` of raw lines.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    pub fn from_text(text: &[u8], block_bytes: usize) -> Self {
        use mithrilog_compress::Codec;
        assert!(block_bytes > 0, "block size must be positive");
        let codec = mithrilog_compress::Lz4::new();
        let mut blocks = Vec::new();
        let mut current = Vec::with_capacity(block_bytes);
        let mut lines = 0usize;
        let mut raw_bytes = 0usize;
        for line in text.split_inclusive(|&b| b == b'\n') {
            if line == b"\n" {
                continue;
            }
            lines += 1;
            raw_bytes += line.len();
            current.extend_from_slice(line);
            if current.len() >= block_bytes {
                blocks.push(codec.compress(&current));
                current.clear();
            }
        }
        if !current.is_empty() {
            blocks.push(codec.compress(&current));
        }
        CompressedLogTable {
            blocks,
            raw_bytes,
            lines,
        }
    }

    /// Number of compressed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Lines stored.
    pub fn len(&self) -> usize {
        self.lines
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }

    /// Raw bytes stored (before compression).
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Compressed footprint in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Scans all blocks, decompressing each and invoking `visit` per line.
    /// Returns the number of lines for which `visit` returned true.
    ///
    /// # Panics
    ///
    /// Panics if a block fails to decompress (the table is in-memory and
    /// immutable, so that indicates a construction bug, not runtime input).
    pub fn scan_count(&self, mut visit: impl FnMut(&[u8]) -> bool) -> u64 {
        use mithrilog_compress::Codec;
        let codec = mithrilog_compress::Lz4::new();
        let mut n = 0u64;
        for block in &self.blocks {
            let raw = codec.decompress(block).expect("in-memory block is valid");
            for line in raw.split(|&b| b == b'\n') {
                if !line.is_empty() && visit(line) {
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_indexes_lines() {
        let t = LogTable::from_text(b"one two\nthree\n\nfour\n");
        assert_eq!(t.len(), 3);
        assert_eq!(t.line(0), b"one two");
        assert_eq!(t.line(1), b"three");
        assert_eq!(t.line(2), b"four");
        assert_eq!(t.bytes(), 7 + 5 + 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_text_is_empty_table() {
        let t = LogTable::from_text(b"");
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.iter().count(), 0);
    }

    #[test]
    fn iter_visits_all_lines_in_order() {
        let t = LogTable::from_text(b"a\nb\nc\n");
        let lines: Vec<&[u8]> = t.iter().collect();
        assert_eq!(lines, vec![b"a".as_slice(), b"b", b"c"]);
    }

    #[test]
    fn compressed_table_round_trips_lines() {
        let text: Vec<u8> = (0..500)
            .map(|i| format!("node-{} event {} status ok\n", i % 9, i))
            .collect::<String>()
            .into_bytes();
        let plain = LogTable::from_text(&text);
        let compressed = CompressedLogTable::from_text(&text, 4096);
        assert_eq!(compressed.len(), plain.len());
        assert!(compressed.block_count() > 1);
        assert!(compressed.compressed_bytes() < compressed.raw_bytes());
        // Scanning both representations yields identical counts.
        let needle = b"node-3";
        let want = plain
            .iter()
            .filter(|l| l.windows(needle.len()).any(|w| w == needle))
            .count() as u64;
        let got = compressed.scan_count(|l| l.windows(needle.len()).any(|w| w == needle));
        assert_eq!(got, want);
    }

    #[test]
    fn compressed_table_handles_empty_input() {
        let t = CompressedLogTable::from_text(b"", 1024);
        assert!(t.is_empty());
        assert_eq!(t.block_count(), 0);
        assert_eq!(t.scan_count(|_| true), 0);
    }

    #[test]
    fn chunks_cover_everything_without_overlap() {
        let t = LogTable::from_text(&b"x\n".repeat(100));
        for n in [1, 3, 7, 12, 100, 200] {
            let chunks = t.chunks(n);
            let total: usize = chunks.iter().map(|r| r.len()).sum();
            assert_eq!(total, 100, "n={n}");
            for w in chunks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }
}
