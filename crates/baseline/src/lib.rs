//! Software comparison engines for the MithriLog evaluation (paper §7.2,
//! §7.4.2, §7.5).
//!
//! The paper compares against two classes of off-the-shelf systems, both
//! substituted here with faithful from-scratch engines:
//!
//! * [`ScanEngine`] — "MonetDB with a single VARCHAR column": a columnar,
//!   multi-threaded **full-scan** engine whose per-line cost grows with the
//!   number of query terms, reproducing the CPU-bound throughput collapse
//!   on batched queries (Table 6, Figure 15). Terms match as substrings
//!   (`LIKE '%term%'`), exactly how the paper forces MonetDB to behave.
//! * [`IndexedEngine`] — "Splunk": an inverted-index engine that executes
//!   each query on a **single thread** (Splunk's per-search model), fast on
//!   positive terms and degraded by negative terms, which cannot be pruned
//!   by the index (Figure 16's left-edge cluster). The paper's ÷12
//!   hyper-thread amortization convention is provided by
//!   [`amortized`].
//! * [`grep_scan`] — a sequential substring scan, the simplest baseline the
//!   paper also tried.
//!
//! All engines operate on a shared [`LogTable`] (flat text + line offsets)
//! and agree with `mithrilog_query::Query::matches_line` on *token*
//! semantics where applicable; the scan engine intentionally uses substring
//! semantics, matching the paper's MonetDB setup.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod indexed;
mod measure;
mod scan;
mod table;

pub use indexed::{IndexedEngine, IndexedRun};
pub use measure::{amortized, effective_throughput_gbps, time_query, Measurement, SplunkCostModel};
pub use scan::{grep_scan, ScanEngine};
pub use table::{CompressedLogTable, LogTable};
