use mithrilog_query::Query;

use crate::table::LogTable;

/// The MonetDB-style full-scan engine: multi-threaded scan of a
/// single-VARCHAR-column table with substring (`LIKE '%term%'`) matching.
///
/// Matching cost is deliberately per-term — each term of each intersection
/// set performs its own substring search over the line, short-circuiting
/// like SQL's `AND`/`OR` — so larger query combinations cost more CPU per
/// byte, reproducing the paper's observation that MonetDB's effective
/// throughput falls as batched queries grow (Table 6).
#[derive(Debug, Clone)]
pub struct ScanEngine {
    threads: usize,
}

impl ScanEngine {
    /// Creates an engine using the comparison machine's 12 hyper-threads.
    pub fn new() -> Self {
        Self::with_threads(12)
    }

    /// Creates an engine with an explicit thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        ScanEngine { threads }
    }

    /// Thread count in use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Scans the whole table, returning the number of matching lines.
    pub fn count_matches(&self, table: &LogTable, query: &Query) -> u64 {
        let chunks = table.chunks(self.threads);
        if chunks.len() <= 1 {
            return chunks
                .first()
                .map(|r| scan_range(table, query, r.clone()))
                .unwrap_or(0);
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|r| s.spawn(move || scan_range(table, query, r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan worker panicked"))
                .sum()
        })
    }

    /// Scans and collects matching line indices (used by tests and the
    /// cross-engine consistency checks).
    pub fn matching_lines(&self, table: &LogTable, query: &Query) -> Vec<usize> {
        (0..table.len())
            .filter(|&i| line_matches_substring(table.line(i), query))
            .collect()
    }
}

impl Default for ScanEngine {
    fn default() -> Self {
        Self::new()
    }
}

fn scan_range(table: &LogTable, query: &Query, range: std::ops::Range<usize>) -> u64 {
    range
        .filter(|&i| line_matches_substring(table.line(i), query))
        .count() as u64
}

/// Substring semantics: `term` matches if it occurs anywhere in the line —
/// `WHERE col LIKE '%term%'`. Negated terms are `NOT LIKE`.
pub(crate) fn line_matches_substring(line: &[u8], query: &Query) -> bool {
    query.sets().iter().any(|set| {
        set.terms()
            .iter()
            .all(|t| contains(line, t.token().as_bytes()) != t.is_negated())
    })
}

/// Naive byte-level substring search — representative of a tuned but
/// general scan kernel.
fn contains(haystack: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return needle.is_empty();
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

/// The simplest baseline: a sequential grep-style scan counting lines that
/// match the query under substring semantics.
pub fn grep_scan(table: &LogTable, query: &Query) -> u64 {
    (0..table.len())
        .filter(|&i| line_matches_substring(table.line(i), query))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mithrilog_query::parse;

    fn table() -> LogTable {
        LogTable::from_text(
            b"RAS KERNEL INFO cache parity error corrected\n\
              RAS KERNEL FATAL data storage interrupt\n\
              RAS APP FATAL ciod: Error loading program\n\
              pbs_mom: job 1234 started\n",
        )
    }

    #[test]
    fn substring_conjunction() {
        let q = parse("KERNEL AND FATAL").unwrap();
        assert_eq!(ScanEngine::with_threads(1).count_matches(&table(), &q), 1);
    }

    #[test]
    fn substring_negation() {
        let q = parse("FATAL AND NOT ciod:").unwrap();
        assert_eq!(ScanEngine::with_threads(1).count_matches(&table(), &q), 1);
    }

    #[test]
    fn substring_matches_inside_tokens() {
        // This is the semantic difference to token matching: "KERN" matches
        // as a substring of "KERNEL".
        let q = parse("KERN").unwrap();
        assert_eq!(ScanEngine::with_threads(1).count_matches(&table(), &q), 2);
        assert!(!q.matches_line("RAS KERNEL INFO"), "token semantics differ");
    }

    #[test]
    fn multithreaded_matches_single_threaded() {
        let text: Vec<u8> = (0..5000)
            .map(|i| {
                format!(
                    "node-{} status {} seq {}\n",
                    i % 13,
                    if i % 7 == 0 { "FAIL" } else { "OK" },
                    i
                )
            })
            .collect::<String>()
            .into_bytes();
        let t = LogTable::from_text(&text);
        let q = parse("FAIL AND node-3").unwrap();
        let single = ScanEngine::with_threads(1).count_matches(&t, &q);
        let multi = ScanEngine::with_threads(12).count_matches(&t, &q);
        assert_eq!(single, multi);
        assert!(single > 0);
    }

    #[test]
    fn grep_scan_agrees_with_engine() {
        let q = parse("RAS AND NOT APP").unwrap();
        let t = table();
        assert_eq!(
            grep_scan(&t, &q),
            ScanEngine::with_threads(4).count_matches(&t, &q)
        );
    }

    #[test]
    fn matching_lines_returns_indices() {
        let q = parse("FATAL").unwrap();
        assert_eq!(ScanEngine::new().matching_lines(&table(), &q), vec![1, 2]);
    }

    #[test]
    fn union_semantics() {
        let q = parse("pbs_mom: OR ciod:").unwrap();
        assert_eq!(ScanEngine::with_threads(2).count_matches(&table(), &q), 2);
    }

    #[test]
    fn empty_table_zero_matches() {
        let q = parse("x").unwrap();
        assert_eq!(
            ScanEngine::new().count_matches(&LogTable::from_text(b""), &q),
            0
        );
    }
}
