use std::time::{Duration, Instant};

/// Result of timing one query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Matching lines reported by the engine.
    pub matches: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
}

/// Times a query execution closure returning a match count.
pub fn time_query(f: impl FnOnce() -> u64) -> Measurement {
    let start = Instant::now();
    let matches = f();
    Measurement {
        matches,
        elapsed: start.elapsed(),
    }
}

/// Effective throughput in GB/s: original dataset bytes divided by elapsed
/// time (paper §7.4.2 — "can exceed storage performance if compression or
/// indexing is used effectively").
pub fn effective_throughput_gbps(dataset_bytes: u64, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    dataset_bytes as f64 / elapsed.as_secs_f64() / 1e9
}

/// The paper's Splunk amortization convention (§7.5): a single-threaded
/// search's elapsed time divided by the machine's hyper-thread count,
/// giving the throughput upper bound of running that many searches
/// concurrently.
pub fn amortized(elapsed: Duration, threads: usize) -> Duration {
    elapsed / threads.max(1) as u32
}

/// Cost model of a Splunk-class indexed search platform, used to convert an
/// [`IndexedRun`](crate::IndexedEngine)'s fetch work into comparison-machine
/// time at any dataset scale.
///
/// Calibration comes from the paper's own worked example (§7.5): the query
/// `"failed" AND NOT "pbs_mom:"` forced Splunk through 22 GB of events in
/// 561 s on one thread — about 39 MB/s of single-thread event processing —
/// and "most of the queries finish in sub-second latency", implying a
/// per-search dispatch overhead in the hundreds of milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplunkCostModel {
    /// Fixed per-search overhead (dispatch, index probe, result assembly).
    pub per_query_overhead: Duration,
    /// Single-thread event fetch-and-verify rate in bytes/second.
    pub per_thread_rate: f64,
    /// Hyper-threads to amortize over (the paper's ÷12 convention).
    pub amortize_threads: usize,
}

impl SplunkCostModel {
    /// The paper-calibrated model.
    pub fn paper_calibrated() -> Self {
        SplunkCostModel {
            per_query_overhead: Duration::from_millis(200),
            per_thread_rate: 39.2e6,
            amortize_threads: 12,
        }
    }

    /// Modeled (amortized) time for a search that fetched `fetched_bytes`
    /// of events.
    pub fn modeled_time(&self, fetched_bytes: u64) -> Duration {
        let raw =
            self.per_query_overhead.as_secs_f64() + fetched_bytes as f64 / self.per_thread_rate;
        Duration::from_secs_f64(raw / self.amortize_threads.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_query_reports_count_and_duration() {
        let m = time_query(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(m.matches, 42);
        assert!(m.elapsed >= Duration::from_millis(5));
    }

    #[test]
    fn throughput_arithmetic() {
        let t = effective_throughput_gbps(2_000_000_000, Duration::from_secs(1));
        assert!((t - 2.0).abs() < 1e-9);
        let t = effective_throughput_gbps(1_000_000_000, Duration::from_millis(500));
        assert!((t - 2.0).abs() < 1e-9);
        assert!(effective_throughput_gbps(1, Duration::ZERO).is_infinite());
    }

    #[test]
    fn amortized_divides_by_threads() {
        assert_eq!(
            amortized(Duration::from_secs(12), 12),
            Duration::from_secs(1)
        );
        assert_eq!(amortized(Duration::from_secs(5), 0), Duration::from_secs(5));
    }

    #[test]
    fn splunk_model_reproduces_paper_example() {
        // 22 GB fetched → 561 s single-thread → ~46.8 s after ÷12.
        let m = SplunkCostModel::paper_calibrated();
        let t = m.modeled_time(22_000_000_000);
        assert!(
            (t.as_secs_f64() - 46.8).abs() < 1.0,
            "expected ~46.8 s, got {t:?}"
        );
    }

    #[test]
    fn splunk_model_overhead_floors_small_queries() {
        let m = SplunkCostModel::paper_calibrated();
        let t = m.modeled_time(1000);
        assert!(t >= Duration::from_millis(16), "{t:?}");
        assert!(t < Duration::from_millis(20), "{t:?}");
    }
}
