use std::collections::HashSet;
use std::fmt;

use crate::error::QueryFormError;
use crate::term::Term;

/// A conjunction (`∩`) of query terms, possibly negated.
///
/// A line satisfies an intersection set when every positive term's token is
/// present in the line and no negated term's token is present.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct IntersectionSet {
    terms: Vec<Term>,
}

impl IntersectionSet {
    /// Creates an empty intersection set.
    ///
    /// An empty set is satisfied by every line; [`Query::try_new`] rejects
    /// queries containing empty sets, so build sets up before assembling a
    /// query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from positive token texts.
    ///
    /// ```
    /// use mithrilog_query::IntersectionSet;
    /// let s = IntersectionSet::of_tokens(["a", "b"]);
    /// assert_eq!(s.terms().len(), 2);
    /// ```
    pub fn of_tokens<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        IntersectionSet {
            terms: tokens.into_iter().map(Term::positive).collect(),
        }
    }

    /// Adds a term to the conjunction.
    pub fn push(&mut self, term: Term) {
        self.terms.push(term);
    }

    /// Adds a term, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, term: Term) -> Self {
        self.push(term);
        self
    }

    /// The terms of this conjunction, in insertion order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Whether the set has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the positive (non-negated) terms.
    pub fn positive_terms(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter().filter(|t| !t.is_negated())
    }

    /// Iterates over the negated terms.
    pub fn negative_terms(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter().filter(|t| t.is_negated())
    }

    /// Evaluates this conjunction against a set of tokens from one line.
    pub fn matches_token_set(&self, tokens: &HashSet<&str>) -> bool {
        self.terms.iter().all(|t| {
            let present = tokens.contains(t.token());
            present != t.is_negated()
        })
    }

    /// Removes duplicate terms while preserving first-occurrence order.
    ///
    /// Contradictory pairs (`x` and `¬x`) are kept; such a set simply never
    /// matches, mirroring the hardware behaviour where the negative flag
    /// poisons the set.
    pub fn dedup(&mut self) {
        let mut seen = HashSet::new();
        self.terms.retain(|t| seen.insert(t.clone()));
    }

    /// Whether the set contains both `x` and `¬x` for some token, making it
    /// unsatisfiable.
    pub fn is_contradictory(&self) -> bool {
        let positives: HashSet<&str> = self.positive_terms().map(Term::token).collect();
        self.negative_terms().any(|t| positives.contains(t.token()))
    }
}

impl FromIterator<Term> for IntersectionSet {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        IntersectionSet {
            terms: iter.into_iter().collect(),
        }
    }
}

impl Extend<Term> for IntersectionSet {
    fn extend<I: IntoIterator<Item = Term>>(&mut self, iter: I) {
        self.terms.extend(iter);
    }
}

impl fmt::Display for IntersectionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A query in the offloadable *union of intersections* form (paper Eq. 1).
///
/// A line matches the query when it satisfies at least one of the
/// intersection sets. This struct is the canonical exchange format between
/// the query language, the FT-tree template translator, the software
/// baselines and the hardware filter model.
///
/// # Example
///
/// ```
/// use mithrilog_query::{IntersectionSet, Query, Term};
///
/// let q = Query::try_new(vec![
///     IntersectionSet::of_tokens(["A", "B"]),
///     IntersectionSet::of_tokens(["C"]).with(Term::negative("B")),
/// ])?;
/// assert!(q.matches(["A", "B"].into_iter()));
/// assert!(q.matches(["C", "Z"].into_iter()));
/// assert!(!q.matches(["C", "B"].into_iter()));
/// # Ok::<(), mithrilog_query::QueryFormError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    sets: Vec<IntersectionSet>,
}

impl Query {
    /// Creates a query from intersection sets.
    ///
    /// # Errors
    ///
    /// Returns [`QueryFormError::EmptyQuery`] if `sets` is empty and
    /// [`QueryFormError::EmptySet`] if any set has no terms — both forms
    /// would either match nothing or everything and are almost always bugs
    /// at the call site.
    pub fn try_new(sets: Vec<IntersectionSet>) -> Result<Self, QueryFormError> {
        if sets.is_empty() {
            return Err(QueryFormError::EmptyQuery);
        }
        if let Some(idx) = sets.iter().position(IntersectionSet::is_empty) {
            return Err(QueryFormError::EmptySet { index: idx });
        }
        Ok(Query { sets })
    }

    /// Convenience constructor for a single conjunction of positive tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn all_of<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let set = IntersectionSet::of_tokens(tokens);
        Query::try_new(vec![set]).expect("all_of requires at least one token")
    }

    /// Convenience constructor for a disjunction of single positive tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn any_of<I, S>(tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let sets: Vec<IntersectionSet> = tokens
            .into_iter()
            .map(|t| IntersectionSet::of_tokens([t]))
            .collect();
        Query::try_new(sets).expect("any_of requires at least one token")
    }

    /// The intersection sets forming the union.
    pub fn sets(&self) -> &[IntersectionSet] {
        &self.sets
    }

    /// Total number of terms across all sets (with duplicates).
    pub fn term_count(&self) -> usize {
        self.sets.iter().map(|s| s.terms().len()).sum()
    }

    /// The set of distinct tokens mentioned anywhere in the query.
    pub fn distinct_tokens(&self) -> HashSet<&str> {
        self.sets
            .iter()
            .flat_map(|s| s.terms().iter().map(Term::token))
            .collect()
    }

    /// Joins two queries with `OR`, concatenating their intersection sets.
    ///
    /// This is how the paper's evaluation builds batched queries: multiple
    /// template queries executed concurrently on one accelerator pass.
    #[must_use]
    pub fn or(mut self, other: Query) -> Query {
        self.sets.extend(other.sets);
        self
    }

    /// Reference evaluator: does a line containing exactly `tokens` match?
    ///
    /// This is the ground-truth oracle the hardware filter model is tested
    /// against. Token multiplicity is irrelevant (the engine only tracks
    /// presence), so duplicates in `tokens` are harmless.
    pub fn matches<'a, I>(&self, tokens: I) -> bool
    where
        I: Iterator<Item = &'a str>,
    {
        let set: HashSet<&str> = tokens.collect();
        self.matches_token_set(&set)
    }

    /// Like [`Query::matches`] but takes a pre-built token set, so callers
    /// evaluating many queries per line build the set once.
    pub fn matches_token_set(&self, tokens: &HashSet<&str>) -> bool {
        self.sets.iter().any(|s| s.matches_token_set(tokens))
    }

    /// Reference evaluator over a raw log line, splitting it on ASCII
    /// whitespace exactly like the hardware tokenizer's default delimiter
    /// configuration.
    pub fn matches_line(&self, line: &str) -> bool {
        self.matches(line.split_ascii_whitespace())
    }

    /// Removes duplicate terms inside each set and duplicate sets.
    pub fn normalize(&mut self) {
        for s in &mut self.sets {
            s.dedup();
        }
        let mut seen = HashSet::new();
        self.sets.retain(|s| seen.insert(s.clone()));
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(line: &str) -> HashSet<&str> {
        line.split_ascii_whitespace().collect()
    }

    #[test]
    fn empty_query_rejected() {
        assert_eq!(Query::try_new(vec![]), Err(QueryFormError::EmptyQuery));
    }

    #[test]
    fn empty_set_rejected_with_index() {
        let sets = vec![IntersectionSet::of_tokens(["a"]), IntersectionSet::new()];
        assert_eq!(
            Query::try_new(sets),
            Err(QueryFormError::EmptySet { index: 1 })
        );
    }

    #[test]
    fn single_positive_set_matches_superset_lines() {
        let q = Query::all_of(["RAS", "KERNEL"]);
        assert!(q.matches_token_set(&toks("RAS KERNEL INFO extra")));
        assert!(!q.matches_token_set(&toks("RAS INFO")));
    }

    #[test]
    fn negation_blocks_match() {
        let q = Query::try_new(vec![
            IntersectionSet::of_tokens(["RAS"]).with(Term::negative("FATAL"))
        ])
        .unwrap();
        assert!(q.matches_token_set(&toks("RAS INFO")));
        assert!(!q.matches_token_set(&toks("RAS FATAL")));
    }

    #[test]
    fn union_matches_when_any_set_matches() {
        let q = Query::any_of(["alpha", "beta"]);
        assert!(q.matches_token_set(&toks("nothing beta here")));
        assert!(q.matches_token_set(&toks("alpha")));
        assert!(!q.matches_token_set(&toks("gamma")));
    }

    #[test]
    fn paper_equation_one_semantics() {
        // (¬A ∩ B ∩ C) ∪ (¬D ∩ ¬E ∩ F ∩ G)
        let q = Query::try_new(vec![
            IntersectionSet::of_tokens(["B", "C"]).with(Term::negative("A")),
            IntersectionSet::of_tokens(["F", "G"])
                .with(Term::negative("D"))
                .with(Term::negative("E")),
        ])
        .unwrap();
        assert!(q.matches_token_set(&toks("B C x")));
        assert!(!q.matches_token_set(&toks("A B C")));
        assert!(q.matches_token_set(&toks("F G")));
        assert!(!q.matches_token_set(&toks("F G E")));
        // First set fails on ¬A, second matches.
        assert!(q.matches_token_set(&toks("A F G")));
    }

    #[test]
    fn or_concatenates_sets() {
        let q = Query::all_of(["a"]).or(Query::all_of(["b"]));
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches_token_set(&toks("b")));
    }

    #[test]
    fn distinct_tokens_deduplicates_across_sets() {
        let q = Query::all_of(["a", "b"]).or(Query::all_of(["b", "c"]));
        let d = q.distinct_tokens();
        assert_eq!(d.len(), 3);
        assert!(d.contains("b"));
    }

    #[test]
    fn contradictory_set_never_matches() {
        let s = IntersectionSet::of_tokens(["x"]).with(Term::negative("x"));
        assert!(s.is_contradictory());
        let q = Query::try_new(vec![s]).unwrap();
        assert!(!q.matches_token_set(&toks("x")));
        assert!(!q.matches_token_set(&toks("y")));
    }

    #[test]
    fn normalize_removes_duplicate_terms_and_sets() {
        let s = IntersectionSet::of_tokens(["a", "a", "b"]);
        let mut q = Query::try_new(vec![s.clone(), s]).unwrap();
        q.normalize();
        assert_eq!(q.sets().len(), 1);
        assert_eq!(q.sets()[0].terms().len(), 2);
    }

    #[test]
    fn matches_line_splits_on_whitespace() {
        let q = Query::all_of(["kernel:", "panic"]);
        assert!(q.matches_line("Jun 3 node-12 kernel: panic at 0xdeadbeef"));
        assert!(!q.matches_line("Jun 3 node-12 kernel panic"));
    }

    #[test]
    fn display_round_trips_shape() {
        let q = Query::try_new(vec![
            IntersectionSet::of_tokens(["B"]).with(Term::negative("A")),
            IntersectionSet::of_tokens(["C"]),
        ])
        .unwrap();
        assert_eq!(q.to_string(), "(\"B\" AND NOT \"A\") OR (\"C\")");
    }

    #[test]
    fn term_count_counts_all_terms() {
        let q = Query::all_of(["a", "b"]).or(Query::all_of(["c"]));
        assert_eq!(q.term_count(), 3);
    }
}
