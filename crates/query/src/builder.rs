//! Fluent construction of union-of-intersections queries.
//!
//! The text language ([`parse`](crate::parse)) is best for humans;
//! programmatic callers (template translators, benchmark generators)
//! compose queries more readably with the builder:
//!
//! ```
//! use mithrilog_query::QueryBuilder;
//!
//! let q = QueryBuilder::new()
//!     .set(|s| s.with("RAS").with("KERNEL").without("FATAL"))
//!     .set(|s| s.with("ciod:"))
//!     .build()?;
//! assert_eq!(q.sets().len(), 2);
//! assert!(q.matches_line("RAS KERNEL INFO ok"));
//! assert!(q.matches_line("APP ciod: error"));
//! # Ok::<(), mithrilog_query::QueryFormError>(())
//! ```

use crate::error::QueryFormError;
use crate::query::{IntersectionSet, Query};
use crate::term::Term;

/// Builder for one intersection set (a conjunction).
#[derive(Debug, Clone, Default)]
pub struct SetBuilder {
    terms: Vec<Term>,
}

impl SetBuilder {
    /// Requires `token` to be present.
    #[must_use]
    pub fn with(mut self, token: impl Into<String>) -> Self {
        self.terms.push(Term::positive(token));
        self
    }

    /// Requires `token` to be absent.
    #[must_use]
    pub fn without(mut self, token: impl Into<String>) -> Self {
        self.terms.push(Term::negative(token));
        self
    }

    /// Requires every token of `tokens` to be present.
    #[must_use]
    pub fn with_all<I, S>(mut self, tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.terms.extend(tokens.into_iter().map(Term::positive));
        self
    }

    /// Requires every token of `tokens` to be absent.
    #[must_use]
    pub fn without_any<I, S>(mut self, tokens: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.terms.extend(tokens.into_iter().map(Term::negative));
        self
    }

    fn into_set(self) -> IntersectionSet {
        self.terms.into_iter().collect()
    }
}

/// Builder for a whole query (a union of intersection sets).
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    sets: Vec<IntersectionSet>,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one intersection set, configured by `f`.
    #[must_use]
    pub fn set(mut self, f: impl FnOnce(SetBuilder) -> SetBuilder) -> Self {
        self.sets.push(f(SetBuilder::default()).into_set());
        self
    }

    /// Adds a pre-built intersection set (e.g. from a template).
    #[must_use]
    pub fn set_from(mut self, set: IntersectionSet) -> Self {
        self.sets.push(set);
        self
    }

    /// Adds every set of an existing query (OR-composition).
    #[must_use]
    pub fn union(mut self, query: &Query) -> Self {
        self.sets.extend(query.sets().iter().cloned());
        self
    }

    /// Finalizes the query, normalizing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`QueryFormError`] if no set was added or a set is empty.
    pub fn build(self) -> Result<Query, QueryFormError> {
        let mut q = Query::try_new(self.sets)?;
        q.normalize();
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn builder_matches_equivalent_parsed_query() {
        let built = QueryBuilder::new()
            .set(|s| s.with("A").with("B").without("C"))
            .set(|s| s.with("D"))
            .build()
            .unwrap();
        let parsed = parse("(A AND B AND NOT C) OR D").unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn bulk_helpers() {
        let q = QueryBuilder::new()
            .set(|s| s.with_all(["a", "b"]).without_any(["x", "y"]))
            .build()
            .unwrap();
        assert_eq!(q.sets()[0].terms().len(), 4);
        assert!(q.matches(["a", "b"].into_iter()));
        assert!(!q.matches(["a", "b", "x"].into_iter()));
    }

    #[test]
    fn union_composes_existing_queries() {
        let base = parse("alpha AND beta").unwrap();
        let q = QueryBuilder::new()
            .union(&base)
            .set(|s| s.with("gamma"))
            .build()
            .unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches(["gamma"].into_iter()));
    }

    #[test]
    fn set_from_accepts_prebuilt_sets() {
        let set = IntersectionSet::of_tokens(["x", "y"]);
        let q = QueryBuilder::new().set_from(set).build().unwrap();
        assert!(q.matches(["x", "y"].into_iter()));
    }

    #[test]
    fn empty_builder_errors() {
        assert_eq!(QueryBuilder::new().build(), Err(QueryFormError::EmptyQuery));
    }

    #[test]
    fn empty_set_errors() {
        assert_eq!(
            QueryBuilder::new().set(|s| s).build(),
            Err(QueryFormError::EmptySet { index: 0 })
        );
    }

    #[test]
    fn build_normalizes_duplicates() {
        let q = QueryBuilder::new()
            .set(|s| s.with("a").with("a"))
            .set(|s| s.with("a"))
            .set(|s| s.with("a"))
            .build()
            .unwrap();
        // Term dedup collapses {a, a} to {a}; set dedup then collapses the
        // three now-identical sets to one.
        assert_eq!(q.sets().len(), 1);
        assert_eq!(q.sets()[0].terms().len(), 1);
    }
}
