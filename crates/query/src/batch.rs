//! Batched query construction for the paper's evaluation methodology.
//!
//! §7.1: *"Batched queries include 100 random combinations of two query
//! pairs connected using OR, as well as 16 random combinations of eight
//! queries. The same set of randomly generated combinations were used for
//! all systems tested."* — so combinations must be deterministic given a
//! seed, and shared across every engine under test.
//!
//! Randomness uses an embedded SplitMix64 generator so this crate needs no
//! external dependency and batches are bit-reproducible everywhere.

use crate::query::Query;

/// Deterministic SplitMix64 pseudo-random generator.
///
/// Used for sampling query combinations; quality is far beyond what sampling
/// index combinations requires, and the implementation is 6 lines, which
/// beats pulling a crate dependency into this leaf crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniformly distributed in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for the small bounds
        // used in batching.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A batch specification: how many combinations of how many queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// Number of base queries OR-ed together per combination.
    pub arity: usize,
    /// Number of combinations to generate.
    pub count: usize,
}

impl BatchSpec {
    /// The paper's 2-query batch: 100 random pairs.
    pub const PAIRS: BatchSpec = BatchSpec {
        arity: 2,
        count: 100,
    };
    /// The paper's 8-query batch: 16 random eight-way combinations.
    pub const EIGHTS: BatchSpec = BatchSpec {
        arity: 8,
        count: 16,
    };
}

/// Draws `spec.count` combinations of `spec.arity` distinct indices from
/// `0..pool`, deterministically from `seed`.
///
/// Exposed separately from [`combine`] so different engines can map the same
/// index combinations onto their own query representations (the paper runs
/// identical combinations through MonetDB, Splunk and MithriLog).
///
/// # Panics
///
/// Panics if `pool < spec.arity` or `spec.arity == 0`.
pub fn combination_indices(pool: usize, spec: BatchSpec, seed: u64) -> Vec<Vec<usize>> {
    assert!(spec.arity > 0, "combination arity must be positive");
    assert!(
        pool >= spec.arity,
        "query pool of {pool} cannot supply {}-way combinations",
        spec.arity
    );
    let mut rng = SplitMix64::new(seed);
    let mut out = Vec::with_capacity(spec.count);
    for _ in 0..spec.count {
        let mut combo: Vec<usize> = Vec::with_capacity(spec.arity);
        while combo.len() < spec.arity {
            let idx = rng.next_below(pool);
            if !combo.contains(&idx) {
                combo.push(idx);
            }
        }
        out.push(combo);
    }
    out
}

/// Builds OR-combined queries from a pool according to `spec`.
///
/// Every combination's base queries are joined with [`Query::or`], which is
/// exactly how the accelerator executes multiple queries concurrently
/// (paper §4: a union set of multiple intersection sets).
///
/// # Panics
///
/// Panics under the same conditions as [`combination_indices`].
pub fn combine(pool: &[Query], spec: BatchSpec, seed: u64) -> Vec<Query> {
    combination_indices(pool.len(), spec, seed)
        .into_iter()
        .map(|combo| {
            let mut it = combo.into_iter();
            let first = pool[it.next().expect("arity >= 1")].clone();
            it.fold(first, |acc, idx| acc.or(pool[idx].clone()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn pool(n: usize) -> Vec<Query> {
        (0..n).map(|i| Query::all_of([format!("tok{i}")])).collect()
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_bound_respected() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn splitmix_zero_bound_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    fn indices_are_distinct_within_combo() {
        for combo in combination_indices(
            10,
            BatchSpec {
                arity: 8,
                count: 50,
            },
            9,
        ) {
            let mut sorted = combo.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), combo.len());
        }
    }

    #[test]
    fn same_seed_same_combinations() {
        let a = combination_indices(20, BatchSpec::PAIRS, 123);
        let b = combination_indices(20, BatchSpec::PAIRS, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a = combination_indices(20, BatchSpec::PAIRS, 1);
        let b = combination_indices(20, BatchSpec::PAIRS, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn paper_specs_have_expected_shape() {
        let pairs = combination_indices(50, BatchSpec::PAIRS, 0);
        assert_eq!(pairs.len(), 100);
        assert!(pairs.iter().all(|c| c.len() == 2));
        let eights = combination_indices(50, BatchSpec::EIGHTS, 0);
        assert_eq!(eights.len(), 16);
        assert!(eights.iter().all(|c| c.len() == 8));
    }

    #[test]
    fn combine_ors_the_right_number_of_sets() {
        let queries = combine(&pool(10), BatchSpec { arity: 3, count: 5 }, 77);
        assert_eq!(queries.len(), 5);
        for q in &queries {
            assert_eq!(q.sets().len(), 3);
        }
    }

    #[test]
    fn combined_query_matches_any_member() {
        let p = pool(4);
        let queries = combine(&p, BatchSpec { arity: 2, count: 1 }, 5);
        let q = &queries[0];
        let idxs = combination_indices(4, BatchSpec { arity: 2, count: 1 }, 5);
        for &i in &idxs[0] {
            assert!(q.matches([format!("tok{i}")].iter().map(String::as_str)));
        }
    }

    #[test]
    #[should_panic(expected = "cannot supply")]
    fn pool_smaller_than_arity_panics() {
        combination_indices(3, BatchSpec::EIGHTS, 0);
    }
}
