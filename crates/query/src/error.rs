use std::error::Error;
use std::fmt;

/// Error building a [`Query`](crate::Query) from intersection sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryFormError {
    /// The query contained no intersection sets, so it would match nothing.
    EmptyQuery,
    /// An intersection set contained no terms, so it would match everything.
    EmptySet {
        /// Position of the offending set in the input.
        index: usize,
    },
}

impl fmt::Display for QueryFormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryFormError::EmptyQuery => write!(f, "query has no intersection sets"),
            QueryFormError::EmptySet { index } => {
                write!(f, "intersection set {index} has no terms")
            }
        }
    }
}

impl Error for QueryFormError {}

/// Error parsing the text query language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseQueryError {
    /// Input was empty or all whitespace.
    Empty,
    /// An unexpected character was found outside any token.
    UnexpectedChar {
        /// Byte offset of the character in the input.
        offset: usize,
        /// The offending character.
        ch: char,
    },
    /// A quoted token was not terminated before end of input.
    UnterminatedQuote {
        /// Byte offset where the quote opened.
        offset: usize,
    },
    /// A closing parenthesis had no matching opener, or vice versa.
    UnbalancedParens,
    /// `NOT`, `AND` or `OR` appeared without the operand(s) it needs.
    DanglingOperator {
        /// The operator keyword as written.
        op: String,
    },
    /// The input ended where a token or group was expected.
    UnexpectedEnd,
    /// Two tokens appeared with no connective between them.
    MissingConnective {
        /// Byte offset of the second token.
        offset: usize,
    },
    /// A quoted token was empty (`""`), which can never match.
    EmptyToken {
        /// Byte offset of the empty token.
        offset: usize,
    },
    /// The parsed expression normalized to an invalid query form.
    Form(QueryFormError),
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseQueryError::Empty => write!(f, "query text is empty"),
            ParseQueryError::UnexpectedChar { offset, ch } => {
                write!(f, "unexpected character {ch:?} at byte {offset}")
            }
            ParseQueryError::UnterminatedQuote { offset } => {
                write!(f, "unterminated quote starting at byte {offset}")
            }
            ParseQueryError::UnbalancedParens => write!(f, "unbalanced parentheses"),
            ParseQueryError::DanglingOperator { op } => {
                write!(f, "operator {op} is missing an operand")
            }
            ParseQueryError::UnexpectedEnd => {
                write!(f, "unexpected end of input; expected a token or group")
            }
            ParseQueryError::MissingConnective { offset } => {
                write!(f, "expected AND/OR before token at byte {offset}")
            }
            ParseQueryError::EmptyToken { offset } => {
                write!(f, "empty quoted token at byte {offset}")
            }
            ParseQueryError::Form(e) => write!(f, "invalid query form: {e}"),
        }
    }
}

impl Error for ParseQueryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseQueryError::Form(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryFormError> for ParseQueryError {
    fn from(e: QueryFormError) -> Self {
        ParseQueryError::Form(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let msgs = [
            QueryFormError::EmptyQuery.to_string(),
            QueryFormError::EmptySet { index: 3 }.to_string(),
            ParseQueryError::Empty.to_string(),
            ParseQueryError::UnbalancedParens.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn form_error_wraps_with_source() {
        let e = ParseQueryError::from(QueryFormError::EmptyQuery);
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryFormError>();
        assert_send_sync::<ParseQueryError>();
    }
}
