//! Boolean expression tree and its normalization into the offloadable
//! union-of-intersections query form.
//!
//! The accelerator only executes queries in disjunctive normal form with
//! negation on literals (paper Eq. 1). The query language, however, allows
//! arbitrary nesting of `AND`, `OR`, `NOT` and parentheses; this module
//! performs the classical NNF + distribution rewrite to bridge the two.

use crate::error::QueryFormError;
use crate::query::{IntersectionSet, Query};
use crate::term::Term;

/// An arbitrary boolean expression over tokens.
///
/// # Example
///
/// ```
/// use mithrilog_query::ast::Expr;
///
/// // NOT (A OR B) AND C  ==>  (¬A ∩ ¬B ∩ C)
/// let e = Expr::and(
///     Expr::not(Expr::or(Expr::token("A"), Expr::token("B"))),
///     Expr::token("C"),
/// );
/// let q = e.to_query()?;
/// assert_eq!(q.sets().len(), 1);
/// assert_eq!(q.sets()[0].terms().len(), 3);
/// # Ok::<(), mithrilog_query::QueryFormError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A single token literal.
    Token(String),
    /// Logical negation of a sub-expression.
    Not(Box<Expr>),
    /// Conjunction of two or more sub-expressions.
    And(Vec<Expr>),
    /// Disjunction of two or more sub-expressions.
    Or(Vec<Expr>),
}

impl Expr {
    /// Creates a token literal.
    pub fn token(t: impl Into<String>) -> Expr {
        Expr::Token(t.into())
    }

    /// Negates an expression.
    // The name mirrors the query language's NOT keyword; it is an associated
    // constructor, not a method, so it cannot collide with `std::ops::Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// Conjunction of two expressions, flattening nested `And`s.
    pub fn and(a: Expr, b: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [a, b] {
            match e {
                Expr::And(v) => parts.extend(v),
                other => parts.push(other),
            }
        }
        Expr::And(parts)
    }

    /// Disjunction of two expressions, flattening nested `Or`s.
    pub fn or(a: Expr, b: Expr) -> Expr {
        let mut parts = Vec::new();
        for e in [a, b] {
            match e {
                Expr::Or(v) => parts.extend(v),
                other => parts.push(other),
            }
        }
        Expr::Or(parts)
    }

    /// Rewrites the expression into negation normal form: `Not` appears only
    /// directly above `Token`, via De Morgan's laws and double-negation
    /// elimination.
    // Consumes self: the rewrite rebuilds every node, so by-value avoids a
    // full clone (`to_` naming kept for symmetry with `to_query`).
    #[allow(clippy::wrong_self_convention)]
    fn to_nnf(self, negated: bool) -> Expr {
        match self {
            Expr::Token(t) => {
                if negated {
                    Expr::Not(Box::new(Expr::Token(t)))
                } else {
                    Expr::Token(t)
                }
            }
            Expr::Not(inner) => inner.to_nnf(!negated),
            Expr::And(parts) => {
                let parts: Vec<Expr> = parts.into_iter().map(|p| p.to_nnf(negated)).collect();
                if negated {
                    Expr::Or(parts)
                } else {
                    Expr::And(parts)
                }
            }
            Expr::Or(parts) => {
                let parts: Vec<Expr> = parts.into_iter().map(|p| p.to_nnf(negated)).collect();
                if negated {
                    Expr::And(parts)
                } else {
                    Expr::Or(parts)
                }
            }
        }
    }

    /// Distributes an NNF expression into a list of conjunctions of literals.
    fn distribute(expr: &Expr) -> Vec<Vec<Term>> {
        match expr {
            Expr::Token(t) => vec![vec![Term::positive(t.clone())]],
            Expr::Not(inner) => match inner.as_ref() {
                Expr::Token(t) => vec![vec![Term::negative(t.clone())]],
                _ => unreachable!("input must be in negation normal form"),
            },
            Expr::Or(parts) => parts.iter().flat_map(Self::distribute).collect(),
            Expr::And(parts) => {
                // Cartesian product of the sub-DNFs.
                let mut acc: Vec<Vec<Term>> = vec![vec![]];
                for p in parts {
                    let sub = Self::distribute(p);
                    let mut next = Vec::with_capacity(acc.len() * sub.len());
                    for a in &acc {
                        for s in &sub {
                            let mut clause = a.clone();
                            clause.extend(s.iter().cloned());
                            next.push(clause);
                        }
                    }
                    acc = next;
                }
                acc
            }
        }
    }

    /// Converts the expression into the offloadable union-of-intersections
    /// [`Query`] form via NNF + distribution, then normalizes (deduplicates
    /// terms and sets).
    ///
    /// # Errors
    ///
    /// Returns [`QueryFormError`] if the expression normalizes to an empty
    /// query (cannot happen for expressions built from at least one token).
    pub fn to_query(&self) -> Result<Query, QueryFormError> {
        let nnf = self.clone().to_nnf(false);
        let clauses = Self::distribute(&nnf);
        let sets: Vec<IntersectionSet> = clauses
            .into_iter()
            .map(|c| c.into_iter().collect())
            .collect();
        let mut q = Query::try_new(sets)?;
        q.normalize();
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn toks(line: &str) -> HashSet<&str> {
        line.split_ascii_whitespace().collect()
    }

    #[test]
    fn single_token_is_single_set() {
        let q = Expr::token("x").to_query().unwrap();
        assert_eq!(q.sets().len(), 1);
        assert_eq!(q.sets()[0].terms(), &[Term::positive("x")]);
    }

    #[test]
    fn de_morgan_over_or() {
        // ¬(A ∪ B) => ¬A ∩ ¬B
        let q = Expr::not(Expr::or(Expr::token("A"), Expr::token("B")))
            .to_query()
            .unwrap();
        assert_eq!(q.sets().len(), 1);
        assert!(q.matches_token_set(&toks("C")));
        assert!(!q.matches_token_set(&toks("A")));
        assert!(!q.matches_token_set(&toks("B C")));
    }

    #[test]
    fn de_morgan_over_and() {
        // ¬(A ∩ B) => ¬A ∪ ¬B
        let q = Expr::not(Expr::and(Expr::token("A"), Expr::token("B")))
            .to_query()
            .unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches_token_set(&toks("A")));
        assert!(!q.matches_token_set(&toks("A B")));
    }

    #[test]
    fn double_negation_eliminated() {
        let q = Expr::not(Expr::not(Expr::token("x"))).to_query().unwrap();
        assert_eq!(q.sets()[0].terms(), &[Term::positive("x")]);
    }

    #[test]
    fn and_over_or_distributes() {
        // A ∩ (B ∪ C) => (A∩B) ∪ (A∩C)
        let q = Expr::and(
            Expr::token("A"),
            Expr::or(Expr::token("B"), Expr::token("C")),
        )
        .to_query()
        .unwrap();
        assert_eq!(q.sets().len(), 2);
        assert!(q.matches_token_set(&toks("A C")));
        assert!(!q.matches_token_set(&toks("A")));
        assert!(!q.matches_token_set(&toks("B C")));
    }

    #[test]
    fn nested_expression_equivalence_spot_check() {
        // (A ∪ B) ∩ (C ∪ ¬D)
        let e = Expr::and(
            Expr::or(Expr::token("A"), Expr::token("B")),
            Expr::or(Expr::token("C"), Expr::not(Expr::token("D"))),
        );
        let q = e.to_query().unwrap();
        assert_eq!(q.sets().len(), 4);
        let lines = ["A C", "B", "A D", "B D C", "D", "A B D"];
        let reference = |s: &HashSet<&str>| {
            (s.contains("A") || s.contains("B")) && (s.contains("C") || !s.contains("D"))
        };
        for l in lines {
            let t = toks(l);
            assert_eq!(q.matches_token_set(&t), reference(&t), "line {l:?}");
        }
    }

    #[test]
    fn duplicate_clauses_are_normalized_away() {
        let q = Expr::or(Expr::token("x"), Expr::token("x"))
            .to_query()
            .unwrap();
        assert_eq!(q.sets().len(), 1);
    }

    #[test]
    fn and_or_constructors_flatten() {
        let e = Expr::and(
            Expr::and(Expr::token("a"), Expr::token("b")),
            Expr::token("c"),
        );
        match e {
            Expr::And(v) => assert_eq!(v.len(), 3),
            _ => panic!("expected flattened And"),
        }
        let e = Expr::or(
            Expr::or(Expr::token("a"), Expr::token("b")),
            Expr::token("c"),
        );
        match e {
            Expr::Or(v) => assert_eq!(v.len(), 3),
            _ => panic!("expected flattened Or"),
        }
    }
}
