use std::fmt;

/// A single query term: a token plus an optional negation.
///
/// A token is a textual word separated by delimiters in the log stream
/// (paper §1). A *negated* term (`¬token`) requires the token to be absent
/// from a line for the enclosing intersection set to be satisfied.
///
/// # Example
///
/// ```
/// use mithrilog_query::Term;
///
/// let t = Term::positive("FATAL");
/// assert!(!t.is_negated());
/// let n = Term::negative("FATAL");
/// assert!(n.is_negated());
/// assert_eq!(n.token(), "FATAL");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Term {
    token: String,
    negated: bool,
}

impl Term {
    /// Creates a term that requires `token` to be present in a line.
    pub fn positive(token: impl Into<String>) -> Self {
        Term {
            token: token.into(),
            negated: false,
        }
    }

    /// Creates a term that requires `token` to be absent from a line.
    pub fn negative(token: impl Into<String>) -> Self {
        Term {
            token: token.into(),
            negated: true,
        }
    }

    /// Creates a term with an explicit negation flag.
    pub fn new(token: impl Into<String>, negated: bool) -> Self {
        Term {
            token: token.into(),
            negated,
        }
    }

    /// The token text this term matches against.
    pub fn token(&self) -> &str {
        &self.token
    }

    /// Whether this term is negated (`¬token`).
    pub fn is_negated(&self) -> bool {
        self.negated
    }

    /// Returns the same token with the negation flag flipped.
    pub fn negate(&self) -> Term {
        Term {
            token: self.token.clone(),
            negated: !self.negated,
        }
    }

    /// Consumes the term, returning the owned token text.
    pub fn into_token(self) -> String {
        self.token
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "NOT \"{}\"", self.token)
        } else {
            write!(f, "\"{}\"", self.token)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_term_round_trips() {
        let t = Term::positive("alpha");
        assert_eq!(t.token(), "alpha");
        assert!(!t.is_negated());
        assert_eq!(t.to_string(), "\"alpha\"");
    }

    #[test]
    fn negative_term_displays_not() {
        let t = Term::negative("beta");
        assert!(t.is_negated());
        assert_eq!(t.to_string(), "NOT \"beta\"");
    }

    #[test]
    fn negate_flips_flag_only() {
        let t = Term::positive("x");
        let n = t.negate();
        assert_eq!(n.token(), "x");
        assert!(n.is_negated());
        assert_eq!(n.negate(), t);
    }

    #[test]
    fn new_matches_explicit_constructors() {
        assert_eq!(Term::new("a", false), Term::positive("a"));
        assert_eq!(Term::new("a", true), Term::negative("a"));
    }

    #[test]
    fn into_token_returns_owned_text() {
        assert_eq!(Term::negative("tok").into_token(), "tok");
    }

    #[test]
    fn terms_order_by_token_then_negation() {
        let mut v = [
            Term::negative("b"),
            Term::positive("a"),
            Term::positive("b"),
        ];
        v.sort();
        assert_eq!(v[0].token(), "a");
        assert_eq!(v[1], Term::positive("b"));
        assert_eq!(v[2], Term::negative("b"));
    }
}
